"""Legacy setup script.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` keeps working on offline machines whose
setuptools/pip combination cannot build PEP 660 editable wheels (no ``wheel``
package available).  In that situation use::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
