"""Legacy setup script.

The project is fully described by ``pyproject.toml``; this file additionally
declares the optional compiled relaxation kernel
(``repro.native._relaxation``) so ``python setup.py build_ext --inplace``
builds it ahead of time.  The extension is strictly optional: when it is
absent (or the build fails -- see the ``optional`` flag) the engines run on
the buffered Python tier with identical results, and
``repro.native.load_kernel`` can still auto-build it lazily at runtime.

On offline machines whose setuptools/pip combination cannot build PEP 660
editable wheels (no ``wheel`` package available) use::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import Extension, find_packages, setup

_relaxation = Extension(
    "repro.native._relaxation",
    sources=["src/repro/native/_relaxation.c"],
    extra_compile_args=["-O2", "-ffp-contract=off"],
    optional=True,
)

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    ext_modules=[_relaxation],
)
