"""Legacy setup script.

The project is fully described by ``pyproject.toml``; this file additionally
declares the optional compiled kernels (``repro.native._relaxation`` and
``repro.native._checkwork``) so ``python setup.py build_ext --inplace``
builds them ahead of time.  The extensions are strictly optional: when one
is absent (or the build fails -- see the ``optional`` flag) the engines and
checkers run on the buffered Python tiers with identical results, and
``repro.native.load_kernel`` / ``load_check_kernel`` can still auto-build
them lazily at runtime.

On offline machines whose setuptools/pip combination cannot build PEP 660
editable wheels (no ``wheel`` package available) use::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import Extension, find_packages, setup

_relaxation = Extension(
    "repro.native._relaxation",
    sources=["src/repro/native/_relaxation.c"],
    extra_compile_args=["-O2", "-ffp-contract=off"],
    optional=True,
)

_checkwork = Extension(
    "repro.native._checkwork",
    sources=["src/repro/native/_checkwork.c"],
    extra_compile_args=["-O2", "-ffp-contract=off"],
    optional=True,
)

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    ext_modules=[_relaxation, _checkwork],
)
