"""Routing-quality metrics shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.design import Design
from repro.dr.drc import DRCChecker
from repro.eval.ispd_score import IspdScoreWeights, ispd_score
from repro.gr.guide import GuideSet
from repro.grid import RoutingGrid, RoutingSolution
from repro.tpl.conflict import ConflictChecker


@dataclass
class EvaluationResult:
    """All quality numbers of one routed (and possibly colored) solution."""

    design_name: str
    router_name: str
    conflicts: int
    stitches: int
    wirelength: int
    vias: int
    shorts: int
    spacing_violations: int
    open_nets: int
    out_of_guide: int
    wrong_way: int
    uncolored_vertices: int
    score: float
    runtime_seconds: float
    iterations: int
    routed_nets: int
    failed_nets: int

    def as_dict(self) -> Dict[str, float]:
        """Return the metrics as a flat dictionary (for tables / JSON)."""
        return {
            "design": self.design_name,
            "router": self.router_name,
            "conflicts": self.conflicts,
            "stitches": self.stitches,
            "wirelength": self.wirelength,
            "vias": self.vias,
            "shorts": self.shorts,
            "spacing_violations": self.spacing_violations,
            "open_nets": self.open_nets,
            "out_of_guide": self.out_of_guide,
            "wrong_way": self.wrong_way,
            "uncolored_vertices": self.uncolored_vertices,
            "score": self.score,
            "runtime_seconds": self.runtime_seconds,
            "iterations": self.iterations,
            "routed_nets": self.routed_nets,
            "failed_nets": self.failed_nets,
        }


def evaluate_solution(
    design: Design,
    grid: RoutingGrid,
    solution: RoutingSolution,
    guides: Optional[GuideSet] = None,
    weights: Optional[IspdScoreWeights] = None,
) -> EvaluationResult:
    """Evaluate *solution* on *design*: conflicts, stitches, DRC, ISPD score.

    The conflict count follows the paper's definition (same-mask pairs of
    different nets within ``Dcolor`` plus hard spacing violations); the
    stitch count is recomputed from the final vertex colors so stale stitch
    records never leak into the tables.
    """
    conflict_checker = ConflictChecker(design, grid)
    conflict_report = conflict_checker.check(solution)

    for route in solution.routes.values():
        route.recount_stitches()
    stitches = solution.total_stitches()

    drc = DRCChecker(design, grid, guides)
    drc_summary = drc.summary(solution)

    wirelength = solution.total_wirelength()
    vias = solution.total_vias()
    score = ispd_score(
        wirelength=wirelength,
        vias=vias,
        out_of_guide=drc_summary["out_of_guide"],
        wrong_way=drc_summary["wrong_way"],
        shorts=drc_summary["shorts"],
        spacing_violations=drc_summary["spacing"],
        open_nets=drc_summary["opens"],
        pitch=grid.pitch,
        weights=weights,
    )
    return EvaluationResult(
        design_name=design.name,
        router_name=solution.router_name,
        conflicts=conflict_report.conflict_count,
        stitches=stitches,
        wirelength=wirelength,
        vias=vias,
        shorts=drc_summary["shorts"],
        spacing_violations=drc_summary["spacing"],
        open_nets=drc_summary["opens"],
        out_of_guide=drc_summary["out_of_guide"],
        wrong_way=drc_summary["wrong_way"],
        uncolored_vertices=conflict_report.uncolored_vertices,
        score=score,
        runtime_seconds=solution.runtime_seconds,
        iterations=solution.iterations,
        routed_nets=len(solution.routed_nets()),
        failed_nets=len(solution.failed_nets()),
    )
