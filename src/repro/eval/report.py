"""Plain-text table rendering for experiment results.

The benchmark scripts and examples print the same row structure the paper's
tables use; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]]) -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison_table(rows: Sequence[Dict[str, Cell]], columns: Sequence[str]) -> str:
    """Render dictionaries (e.g. ``Table2Row.as_dict()``) as a text table."""
    table_rows = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(columns, table_rows)


def format_percent(value: float) -> str:
    """Render a fraction as a percentage string (``0.8117`` -> ``"81.17%"``)."""
    return f"{value * 100:.2f}%"
