"""Experiment harnesses regenerating every table and figure of the paper.

* :func:`run_table2` -- Table II: Mr.TPL vs the DAC-2012 baseline on the
  ISPD-2018-like suite (conflicts, stitches, ISPD cost, runtime, speedup).
* :func:`run_table3` -- Table III: Mr.TPL vs routing-then-decomposition
  (plain detailed router + OpenMPL-like decomposer) on the ISPD-2019-like
  suite (conflicts, stitches).
* :func:`run_fig1_examples` -- the qualitative Fig. 1 scenarios.
* :func:`run_fig3_walkthrough` -- the Fig. 3 color-state walk-through.
* :func:`route_with_checkpoint` -- journal-backed resume-able routing: a
  campaign's grid mutations are journalled and checkpointed to disk; a
  rerun loads the checkpoint and rebuilds the exact grid + solution by
  journal replay instead of routing again.

Each harness returns plain dataclass rows so the benchmark scripts, the
examples and ``EXPERIMENTS.md`` all consume the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines import Dac2012Router, LayoutDecomposer
from repro.bench.micro import fig1_dense_cluster, fig1_multi_pin_net, fig3_walkthrough_design
from repro.bench.suites import SuiteCase, ispd18_suite, ispd19_suite
from repro.design import Design
from repro.dr import DetailedRouter
from repro.eval.metrics import EvaluationResult, evaluate_solution
from repro.gr import GlobalRouter, GuideSet
from repro.grid import RoutingGrid
from repro.tpl import MrTPLRouter
from repro.utils import get_logger

_LOG = get_logger("eval.experiments")


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

@dataclass
class Table2Row:
    """One case row of Table II (baseline [5] vs Mr.TPL)."""

    case: str
    baseline: EvaluationResult
    ours: EvaluationResult

    @property
    def conflict_improvement(self) -> float:
        """Return the relative conflict reduction (1.0 = all conflicts removed)."""
        return _improvement(self.baseline.conflicts, self.ours.conflicts)

    @property
    def stitch_improvement(self) -> float:
        """Return the relative stitch reduction."""
        return _improvement(self.baseline.stitches, self.ours.stitches)

    @property
    def cost_improvement(self) -> float:
        """Return the relative ISPD-score reduction."""
        return _improvement(self.baseline.score, self.ours.score)

    @property
    def speedup(self) -> float:
        """Return baseline runtime / Mr.TPL runtime."""
        if self.ours.runtime_seconds <= 0:
            return float("inf")
        return self.baseline.runtime_seconds / self.ours.runtime_seconds

    def as_dict(self) -> Dict[str, float]:
        """Return the row as a flat dictionary (benchmark / report friendly)."""
        return {
            "case": self.case,
            "baseline_conflicts": self.baseline.conflicts,
            "ours_conflicts": self.ours.conflicts,
            "conflict_improvement": self.conflict_improvement,
            "baseline_stitches": self.baseline.stitches,
            "ours_stitches": self.ours.stitches,
            "stitch_improvement": self.stitch_improvement,
            "baseline_cost": self.baseline.score,
            "ours_cost": self.ours.score,
            "cost_improvement": self.cost_improvement,
            "baseline_runtime": self.baseline.runtime_seconds,
            "ours_runtime": self.ours.runtime_seconds,
            "speedup": self.speedup,
        }


def run_table2_case(
    case: SuiteCase,
    max_iterations: Optional[int] = None,
    use_global_router: bool = True,
    parallelism: int = 1,
    batch_backend: str = "serial",
    min_fork_batch: Optional[int] = None,
    batch_margin: Optional[int] = None,
    autotune: Optional[str] = None,
) -> Table2Row:
    """Run the Table II comparison on a single suite case.

    Both routers receive identical, independently constructed grids and the
    same GR guides (built once and shared) so neither benefits from the
    other's routing state.  ``parallelism`` / ``batch_backend`` switch both
    routers onto the :mod:`repro.sched` batched rip-up loop (the default
    ``prefix`` policy keeps results bit-identical to the sequential loop).
    """
    design_for_baseline = case.build()
    design_for_ours = case.build()

    guides_baseline = GlobalRouter(design_for_baseline).route() if use_global_router else None
    guides_ours = GlobalRouter(design_for_ours).route() if use_global_router else None

    baseline_grid = RoutingGrid(design_for_baseline)
    baseline_router = Dac2012Router(
        design_for_baseline,
        grid=baseline_grid,
        guides=guides_baseline,
        use_global_router=False,
        max_iterations=max_iterations,
        parallelism=parallelism,
        batch_backend=batch_backend,
        min_fork_batch=min_fork_batch,
        batch_margin=batch_margin,
        autotune=autotune,
    )
    baseline_solution = baseline_router.run()
    baseline_eval = evaluate_solution(
        design_for_baseline, baseline_grid, baseline_solution, guides_baseline
    )

    ours_grid = RoutingGrid(design_for_ours)
    ours_router = MrTPLRouter(
        design_for_ours,
        grid=ours_grid,
        guides=guides_ours,
        use_global_router=False,
        max_iterations=max_iterations,
        parallelism=parallelism,
        batch_backend=batch_backend,
        min_fork_batch=min_fork_batch,
        batch_margin=batch_margin,
        autotune=autotune,
    )
    ours_solution = ours_router.run()
    ours_eval = evaluate_solution(design_for_ours, ours_grid, ours_solution, guides_ours)

    return Table2Row(case=case.name, baseline=baseline_eval, ours=ours_eval)


def run_table2(
    scale: float = 1.0,
    cases: Optional[Sequence[int]] = None,
    max_iterations: Optional[int] = None,
    parallelism: int = 1,
    batch_backend: str = "serial",
    min_fork_batch: Optional[int] = None,
    batch_margin: Optional[int] = None,
    autotune: Optional[str] = None,
) -> List[Table2Row]:
    """Run the full Table II experiment over the ISPD-2018-like suite."""
    suite = ispd18_suite(scale, cases=list(cases) if cases is not None else None)
    rows = []
    for case in suite:
        _LOG.info("Table II case %s", case.name)
        rows.append(
            run_table2_case(
                case,
                max_iterations=max_iterations,
                parallelism=parallelism,
                batch_backend=batch_backend,
                min_fork_batch=min_fork_batch,
                batch_margin=batch_margin,
                autotune=autotune,
            )
        )
    return rows


def summarize_table2(rows: Sequence[Table2Row]) -> Dict[str, float]:
    """Return the per-case-averaged improvements the paper's last row reports."""
    if not rows:
        return {
            "avg_conflict_improvement": 0.0,
            "avg_stitch_improvement": 0.0,
            "avg_cost_improvement": 0.0,
            "avg_speedup": 0.0,
            "max_speedup": 0.0,
        }
    return {
        "avg_conflict_improvement": _mean([row.conflict_improvement for row in rows]),
        "avg_stitch_improvement": _mean([row.stitch_improvement for row in rows]),
        "avg_cost_improvement": _mean([row.cost_improvement for row in rows]),
        "avg_speedup": _mean([row.speedup for row in rows if row.speedup != float("inf")]),
        "max_speedup": max(row.speedup for row in rows),
    }


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------

@dataclass
class Table3Row:
    """One case row of Table III (OpenMPL-like decomposition vs Mr.TPL)."""

    case: str
    decomposition_conflicts: int
    decomposition_stitches: int
    ours_conflicts: int
    ours_stitches: int
    decomposition_runtime: float = 0.0
    ours_runtime: float = 0.0

    @property
    def conflict_improvement(self) -> float:
        """Return the relative conflict reduction of Mr.TPL over decomposition."""
        return _improvement(self.decomposition_conflicts, self.ours_conflicts)

    @property
    def stitch_improvement(self) -> float:
        """Return the relative stitch reduction of Mr.TPL over decomposition."""
        return _improvement(self.decomposition_stitches, self.ours_stitches)

    def as_dict(self) -> Dict[str, float]:
        """Return the row as a flat dictionary."""
        return {
            "case": self.case,
            "decomposition_conflicts": self.decomposition_conflicts,
            "ours_conflicts": self.ours_conflicts,
            "conflict_improvement": self.conflict_improvement,
            "decomposition_stitches": self.decomposition_stitches,
            "ours_stitches": self.ours_stitches,
            "stitch_improvement": self.stitch_improvement,
        }


def run_table3_case(
    case: SuiteCase,
    max_iterations: Optional[int] = None,
    use_global_router: bool = True,
    parallelism: int = 1,
    batch_backend: str = "serial",
    min_fork_batch: Optional[int] = None,
    batch_margin: Optional[int] = None,
    autotune: Optional[str] = None,
) -> Table3Row:
    """Run the Table III comparison on a single suite case.

    The decomposition side first routes the design with the TPL-unaware
    detailed router (the stand-in for Dr.CU 2.0) and then colors the
    unchanged layout with the OpenMPL-like decomposer; the Mr.TPL side
    routes the identical design with color-state searching.
    """
    design_for_decomposition = case.build()
    design_for_ours = case.build()

    guides_decomp = (
        GlobalRouter(design_for_decomposition).route() if use_global_router else None
    )
    guides_ours = GlobalRouter(design_for_ours).route() if use_global_router else None

    decomp_grid = RoutingGrid(design_for_decomposition)
    plain_router = DetailedRouter(
        design_for_decomposition,
        grid=decomp_grid,
        guides=guides_decomp,
        max_iterations=max_iterations,
        parallelism=parallelism,
        batch_backend=batch_backend,
        min_fork_batch=min_fork_batch,
        batch_margin=batch_margin,
        autotune=autotune,
    )
    plain_solution = plain_router.run()
    decomposer = LayoutDecomposer(design_for_decomposition, decomp_grid)
    decomposition = decomposer.decompose(plain_solution)

    ours_grid = RoutingGrid(design_for_ours)
    ours_router = MrTPLRouter(
        design_for_ours,
        grid=ours_grid,
        guides=guides_ours,
        use_global_router=False,
        max_iterations=max_iterations,
        parallelism=parallelism,
        batch_backend=batch_backend,
        min_fork_batch=min_fork_batch,
        batch_margin=batch_margin,
        autotune=autotune,
    )
    ours_solution = ours_router.run()
    # Served from the router's incremental tallies (a delta refresh, not a
    # full re-scan); ConflictChecker remains the oracle the differential
    # tests compare against.
    ours_conflicts = ours_router.conflict_report(ours_solution)

    return Table3Row(
        case=case.name,
        decomposition_conflicts=decomposition.conflicts,
        decomposition_stitches=decomposition.stitches,
        ours_conflicts=ours_conflicts.conflict_count,
        ours_stitches=ours_solution.total_stitches(),
        decomposition_runtime=plain_solution.runtime_seconds + decomposition.runtime_seconds,
        ours_runtime=ours_solution.runtime_seconds,
    )


def run_table3(
    scale: float = 1.0,
    cases: Optional[Sequence[int]] = None,
    max_iterations: Optional[int] = None,
    parallelism: int = 1,
    batch_backend: str = "serial",
    min_fork_batch: Optional[int] = None,
    batch_margin: Optional[int] = None,
    autotune: Optional[str] = None,
) -> List[Table3Row]:
    """Run the full Table III experiment over the ISPD-2019-like suite."""
    suite = ispd19_suite(scale, cases=list(cases) if cases is not None else None)
    rows = []
    for case in suite:
        _LOG.info("Table III case %s", case.name)
        rows.append(
            run_table3_case(
                case,
                max_iterations=max_iterations,
                parallelism=parallelism,
                batch_backend=batch_backend,
                min_fork_batch=min_fork_batch,
                batch_margin=batch_margin,
                autotune=autotune,
            )
        )
    return rows


def summarize_table3(rows: Sequence[Table3Row]) -> Dict[str, float]:
    """Return the averaged improvements of the Table III comparison."""
    if not rows:
        return {"avg_conflict_improvement": 0.0, "avg_stitch_improvement": 0.0}
    return {
        "avg_conflict_improvement": _mean([row.conflict_improvement for row in rows]),
        "avg_stitch_improvement": _mean([row.stitch_improvement for row in rows]),
    }


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

@dataclass
class FigureResult:
    """Outcome of one qualitative figure scenario."""

    scenario: str
    metrics_by_router: Dict[str, EvaluationResult] = field(default_factory=dict)

    def conflicts(self, router: str) -> int:
        """Return the conflict count of *router* on this scenario."""
        return self.metrics_by_router[router].conflicts

    def stitches(self, router: str) -> int:
        """Return the stitch count of *router* on this scenario."""
        return self.metrics_by_router[router].stitches


def run_fig1_examples(max_iterations: Optional[int] = None) -> List[FigureResult]:
    """Run the Fig. 1 scenarios through all three approaches.

    Scenario (a)/(b): the dense 4-net cluster -- decomposition after plain
    routing versus Mr.TPL.  Scenario (c)/(d): the 4-pin net -- the 2-pin
    DAC-2012 baseline versus Mr.TPL.
    """
    results: List[FigureResult] = []

    cluster = FigureResult(scenario="fig1_dense_cluster")
    design_decomp = fig1_dense_cluster()
    grid_decomp = RoutingGrid(design_decomp)
    plain = DetailedRouter(design_decomp, grid=grid_decomp, max_iterations=max_iterations)
    plain_solution = plain.run()
    decomposition = LayoutDecomposer(design_decomp, grid_decomp).decompose(plain_solution)
    cluster.metrics_by_router["decomposition"] = evaluate_solution(
        design_decomp, grid_decomp, decomposition.solution
    )
    design_ours = fig1_dense_cluster()
    grid_ours = RoutingGrid(design_ours)
    ours = MrTPLRouter(design_ours, grid=grid_ours, use_global_router=False,
                       max_iterations=max_iterations)
    cluster.metrics_by_router["mr-tpl"] = evaluate_solution(
        design_ours, grid_ours, ours.run()
    )
    results.append(cluster)

    multi = FigureResult(scenario="fig1_multi_pin_net")
    design_baseline = fig1_multi_pin_net()
    grid_baseline = RoutingGrid(design_baseline)
    baseline = Dac2012Router(
        design_baseline, grid=grid_baseline, use_global_router=False,
        max_iterations=max_iterations,
    )
    multi.metrics_by_router["dac2012"] = evaluate_solution(
        design_baseline, grid_baseline, baseline.run()
    )
    design_ours2 = fig1_multi_pin_net()
    grid_ours2 = RoutingGrid(design_ours2)
    ours2 = MrTPLRouter(design_ours2, grid=grid_ours2, use_global_router=False,
                        max_iterations=max_iterations)
    multi.metrics_by_router["mr-tpl"] = evaluate_solution(
        design_ours2, grid_ours2, ours2.run()
    )
    results.append(multi)
    return results


@dataclass
class Fig3Result:
    """Outcome of the Fig. 3 walk-through."""

    evaluation: EvaluationResult
    colors_used: Dict[int, int]
    stitches: int
    conflicts: int


def run_fig3_walkthrough(max_iterations: Optional[int] = None) -> Fig3Result:
    """Route the Fig. 3 design with Mr.TPL and summarise the coloring."""
    design = fig3_walkthrough_design()
    grid = RoutingGrid(design)
    router = MrTPLRouter(design, grid=grid, use_global_router=False,
                         max_iterations=max_iterations)
    solution = router.run()
    evaluation = evaluate_solution(design, grid, solution)
    colors_used: Dict[int, int] = {0: 0, 1: 0, 2: 0}
    for route in solution.routes.values():
        for color in route.vertex_colors.values():
            colors_used[color] += 1
    return Fig3Result(
        evaluation=evaluation,
        colors_used=colors_used,
        stitches=evaluation.stitches,
        conflicts=evaluation.conflicts,
    )


# ----------------------------------------------------------------------
# Journal-backed checkpoint / resume
# ----------------------------------------------------------------------

def route_with_checkpoint(
    design: Design,
    router_cls,
    checkpoint_path: Union[str, Path],
    checkpoint_every: int = 1,
    on_checkpoint=None,
    checkpoint_keep: Optional[int] = None,
    **router_kwargs,
) -> Tuple["RoutingSolution", RoutingGrid, bool]:
    """Route *design* with *router_cls*, checkpointing **every iteration**.

    When *checkpoint_path* does not exist the design is routed with a
    :class:`~repro.journal.MutationJournal` attached to the grid, and the
    campaign is checkpointed after initial routing and after every
    *checkpoint_every*-th completed rip-up iteration (plus once more at the
    end): each save folds the journal into a grid snapshot
    (:meth:`MutationJournal.fold`, after catching up any live pool
    workers) and atomically writes a ``repro-checkpoint-v2`` document with
    the in-progress solution and the campaign cursor -- so checkpoint size
    and restore time stay bounded by the grid, not by campaign age.

    When the path exists, the campaign is **resumed**: the checkpoint is
    loaded, verified to describe the *same* design and router (a stale
    checkpoint for a different case/scale raises rather than silently
    returning the wrong campaign), and the grid rebuilt bit-identically
    (snapshot restore + journal suffix replay).  A finished campaign's
    solution is returned without routing anything; an **interrupted** one
    (the process died mid-campaign -- preemption, SIGKILL) re-enters the
    rip-up loop at its last completed iteration and finishes the campaign,
    producing a solution bit-identical to the uninterrupted run's.

    Fault tolerance: each save retains the previous *checkpoint_keep*
    generations (default: the ``REPRO_CHECKPOINT_KEEP`` env knob, 2) and
    resume falls back to the newest generation whose integrity checksum
    validates, so a torn or corrupted newest file costs at most one
    checkpoint interval, not the campaign.  The campaign's cumulative
    executor failure history (retries, timeouts, demotions, ...) is
    carried in the checkpoint and keeps accumulating across resumes.

    *on_checkpoint* (called with the :class:`~repro.campaign.CampaignState`
    after each save) exists for tests and progress streaming.  Returns
    ``(solution, grid, resumed)``.
    """
    from repro.campaign import CampaignState
    from repro.io.json_io import design_to_dict
    from repro.io.journal_io import (
        checkpoint_campaign,
        checkpoint_candidates,
        checkpoint_from_dict,
        load_checkpoint_document_with_fallback,
        save_checkpoint,
    )

    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    path = Path(checkpoint_path)
    campaign = None
    resumed = False
    used_fallback = False
    if any(candidate.exists() for candidate in checkpoint_candidates(path, checkpoint_keep)):
        _LOG.info("resuming campaign from checkpoint %s", path)
        document, used_path = load_checkpoint_document_with_fallback(
            path, checkpoint_keep
        )
        if used_path != path:
            used_fallback = True
            _LOG.warning(
                "checkpoint %s is corrupt; resuming from retained generation %s",
                path, used_path,
            )
        saved_design, grid, journal, solution = checkpoint_from_dict(document)
        if design_to_dict(saved_design) != design_to_dict(design):
            raise ValueError(
                f"checkpoint {path} was recorded for design "
                f"{saved_design.name!r}, which differs from the requested "
                f"design {design.name!r}; delete the checkpoint to reroute"
            )
        if solution is None:
            raise ValueError(f"checkpoint {path} holds no routing solution")
        expected_router = getattr(router_cls, "name", router_cls.__name__)
        if solution.router_name != expected_router:
            raise ValueError(
                f"checkpoint {path} holds a {solution.router_name!r} "
                f"campaign, not the requested {expected_router!r}; "
                "delete the checkpoint to reroute"
            )
        campaign = checkpoint_campaign(document, solution)
        if campaign is None or campaign.done:
            # v1 documents (no campaign section) were only written for
            # finished campaigns; v2 documents say so explicitly.
            return solution, grid, True
        if used_fallback:
            campaign.note_checkpoint_fallback()
        _LOG.info(
            "checkpoint holds an interrupted campaign; resuming at iteration %d",
            campaign.iteration,
        )
        resumed = True
    else:
        grid = RoutingGrid(design)
        journal = grid.attach_journal()
        campaign = CampaignState()
    router = router_cls(design, grid=grid, **router_kwargs)

    def _checkpoint(state) -> None:
        if state.iteration % checkpoint_every and not state.done:
            return
        executor = getattr(router, "batch_executor", None)
        if executor is not None:
            # Folding compacts the journal; every pool worker cursor must
            # be at the head first or the pool could never re-sync.
            executor.sync_pool_cursors()
        # Surface the executor's supervision counters (retries, timeouts,
        # replacements, demotions) into the persisted campaign state, on
        # top of whatever an earlier (preempted) life already recorded.
        state.update_executor_stats(executor)
        checkpoint_started = perf_counter()
        journal.fold(grid.snapshot_state())
        save_checkpoint(
            path, design, journal, state.solution, state, keep=checkpoint_keep
        )
        # The fold+save cost of this very checkpoint lands in the *next*
        # saved stats record (update_executor_stats ran above); the live
        # PhaseTimes record sees it immediately.
        phases = getattr(router, "phases", None)
        if phases is not None:
            phases.add("checkpoint", perf_counter() - checkpoint_started)
        if on_checkpoint is not None:
            on_checkpoint(state)

    solution = router.run(campaign=campaign, on_iteration=_checkpoint)
    # Final save: records done=True (and the best-iteration swap /
    # post-processing the routers apply after their loop).
    _checkpoint(campaign)
    return solution, grid, resumed


# ----------------------------------------------------------------------

def _improvement(baseline: float, ours: float) -> float:
    """Return the relative reduction of *ours* versus *baseline* in [~, 1]."""
    if baseline <= 0:
        return 0.0 if ours <= 0 else -1.0
    return (baseline - ours) / baseline


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
