"""An ISPD-2018-contest-style detailed routing cost score.

The contest score is a weighted sum of wirelength, via count, out-of-guide
wiring, wrong-way wiring, and violation penalties (shorts, spacing, opens).
The exact contest evaluator also scores off-track wiring and minimum-area
violations, which do not arise on this repository's fully on-track grid; the
remaining structure and the relative weighting follow the published contest
documentation so the "cost" column of Table II has the same shape: dominated
by wirelength and vias, nudged by guide adherence, and punished hard for
violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IspdScoreWeights:
    """Weights of the contest-style score."""

    wirelength: float = 0.5
    via: float = 4.0
    out_of_guide: float = 1.0
    wrong_way: float = 1.0
    short: float = 500.0
    spacing: float = 500.0
    open_net: float = 500.0


def ispd_score(
    wirelength: int,
    vias: int,
    out_of_guide: int,
    wrong_way: int,
    shorts: int,
    spacing_violations: int,
    open_nets: int,
    pitch: int = 1,
    weights: Optional[IspdScoreWeights] = None,
) -> float:
    """Return the contest-style routing score (lower is better).

    ``wirelength`` is given in grid edges and converted to DBU with *pitch*
    so the score scales like the contest's (which measures microns); the
    remaining terms are counts.
    """
    w = weights or IspdScoreWeights()
    score = 0.0
    score += w.wirelength * wirelength * max(pitch, 1)
    score += w.via * vias
    score += w.out_of_guide * out_of_guide
    score += w.wrong_way * wrong_way
    score += w.short * shorts
    score += w.spacing * spacing_violations
    score += w.open_net * open_nets
    return score
