"""Evaluation: metrics, the ISPD-style cost score, and experiment harnesses.

The evaluation code is shared by every router and baseline so the
comparisons of Tables II and III are computed identically for all of them.
:mod:`repro.eval.experiments` contains the runnable harnesses that
regenerate each table/figure of the paper; the benchmark scripts under
``benchmarks/`` and the entries in ``EXPERIMENTS.md`` are thin wrappers over
those harnesses.
"""

from repro.eval.metrics import EvaluationResult, evaluate_solution
from repro.eval.ispd_score import IspdScoreWeights, ispd_score
from repro.eval.report import format_table, format_comparison_table
from repro.eval.experiments import (
    Table2Row,
    Table3Row,
    run_table2,
    run_table3,
    run_table2_case,
    run_table3_case,
    run_fig1_examples,
    run_fig3_walkthrough,
    summarize_table2,
    summarize_table3,
)

__all__ = [
    "EvaluationResult",
    "evaluate_solution",
    "IspdScoreWeights",
    "ispd_score",
    "format_table",
    "format_comparison_table",
    "Table2Row",
    "Table3Row",
    "run_table2",
    "run_table3",
    "run_table2_case",
    "run_table3_case",
    "run_fig1_examples",
    "run_fig3_walkthrough",
    "summarize_table2",
    "summarize_table3",
]
