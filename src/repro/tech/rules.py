"""Design rules, including the triple-patterning color spacing.

The rule set follows the structure of the ISPD 2018/2019 initial detailed
routing contests (minimum width / spacing, via costs, off-track and
off-guide penalties) plus the TPL-specific ``Dcolor`` same-mask spacing
used by the paper's problem formulation:

    "when the distance between patterns on a layout falls below a predefined
     threshold, these patterns must be assigned to separate masks"

Two shapes closer than ``spacing`` are a short/spacing violation regardless
of mask; two shapes whose distance is in ``[spacing, color_spacing)`` are
legal only if they sit on different masks; at or beyond ``color_spacing``
they never interact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Number of masks in triple patterning lithography.
TPL_MASK_COUNT = 3


@dataclass
class DesignRules:
    """Container for the routing and coloring rules used by all routers.

    The cost weights ``alpha`` / ``beta`` / ``gamma`` are the weighting
    factors of the paper's Eq. (1):

        ``Cost(e) = alpha*Cost_trad(e) + beta*Cost_stitch(e) + gamma*Cost_color(e)``
    """

    #: Same-mask spacing threshold ``Dcolor`` in DBU: patterns closer than
    #: this must be on different masks.
    color_spacing: int = 3

    #: Hard minimum spacing in DBU below which shapes conflict on any mask.
    min_spacing: int = 1

    #: Default wire width in DBU (the grid routers use centre-line geometry,
    #: so this mainly affects exported shapes and scoring).
    wire_width: int = 1

    #: Weight of the traditional routing cost (wirelength, vias, congestion).
    alpha: float = 1.0

    #: Weight of the stitch cost.
    beta: float = 4.0

    #: Weight of the color conflict cost.
    gamma: float = 12.0

    #: Cost of one via (layer change) in units of planar edge cost.
    via_cost: float = 4.0

    #: Multiplier applied to edges running against the layer's preferred
    #: direction.
    wrong_way_penalty: float = 3.0

    #: Cost added for routing outside the net's global-routing guide.
    out_of_guide_penalty: float = 2.0

    #: Cost added per unit of accumulated history (negotiated congestion).
    history_weight: float = 1.5

    #: PathFinder-style multiplicative decay applied to every history entry
    #: once per rip-up-and-reroute iteration, so stale congestion evidence
    #: fades instead of pinning nets to detours forever.
    history_decay: float = 0.9

    #: Cost of using a vertex already occupied by another net (soft short);
    #: kept finite so rip-up & reroute can negotiate, as in PathFinder/Dr.CU,
    #: but high enough that a short is never preferred over a color conflict.
    occupancy_penalty: float = 200.0

    #: Stitch cost used *inside* the color-state search (Algorithm 2's
    #: ``stitchCost``); expressed in traditional-cost units before the beta
    #: weighting.
    stitch_cost: float = 1.0

    #: Conflict cost used inside the search when a candidate color collides
    #: with a neighbouring shape of another net within ``color_spacing``.
    conflict_cost: float = 6.0

    #: Maximum rip-up-and-reroute iterations of the outer loop (paper Fig. 2
    #: "Max Iteration").
    max_ripup_iterations: int = 4

    #: Per-layer overrides of ``color_spacing`` (layer index -> DBU), used by
    #: the ISPD-2019-like suite where lower layers have tighter rules.
    color_spacing_per_layer: Dict[int, int] = field(default_factory=dict)

    def color_spacing_on(self, layer_index: int) -> int:
        """Return ``Dcolor`` for *layer_index* (honouring per-layer overrides)."""
        return self.color_spacing_per_layer.get(layer_index, self.color_spacing)

    def requires_different_mask(self, distance: int, layer_index: int = 0) -> bool:
        """Return ``True`` when two shapes at *distance* must use different masks."""
        return distance < self.color_spacing_on(layer_index)

    def is_spacing_violation(self, distance: int) -> bool:
        """Return ``True`` when two shapes of different nets are illegally close."""
        return distance < self.min_spacing

    def scaled(self, **overrides: float) -> "DesignRules":
        """Return a copy with selected fields overridden (for ablation sweeps)."""
        from dataclasses import replace

        return replace(self, **overrides)
