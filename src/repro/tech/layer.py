"""Routing layer description."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LayerDirection(Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def other(self) -> "LayerDirection":
        """Return the perpendicular direction."""
        if self is LayerDirection.HORIZONTAL:
            return LayerDirection.VERTICAL
        return LayerDirection.HORIZONTAL


@dataclass(frozen=True)
class Layer:
    """A single routing (metal) layer.

    Attributes
    ----------
    index:
        Zero-based position in the routing stack (0 is the lowest routing
        layer, typically the cell-pin layer).
    name:
        Human-readable name, e.g. ``"Metal1"``.
    direction:
        Preferred routing direction.  Wires may still run in the
        non-preferred direction at a cost penalty, mirroring how Dr.CU and
        the ISPD contest score off-direction wiring.
    pitch:
        Track-to-track distance in DBU.
    width:
        Default (minimum) wire width in DBU.
    spacing:
        Minimum same-layer spacing between shapes of *different* nets in DBU.
    offset:
        Coordinate of track 0 in DBU.
    tpl:
        ``True`` when the layer is printed with triple patterning and thus
        subject to the color spacing rule.  Upper, relaxed-pitch layers are
        usually single-patterned.
    """

    index: int
    name: str
    direction: LayerDirection
    pitch: int
    width: int
    spacing: int
    offset: int = 0
    tpl: bool = True

    @property
    def is_horizontal(self) -> bool:
        """Return ``True`` for horizontal preferred direction."""
        return self.direction is LayerDirection.HORIZONTAL

    @property
    def is_vertical(self) -> bool:
        """Return ``True`` for vertical preferred direction."""
        return self.direction is LayerDirection.VERTICAL

    def track_coordinate(self, track_index: int) -> int:
        """Return the DBU coordinate of track *track_index* on this layer.

        For a horizontal layer the coordinate is a ``y`` value (tracks run
        left-right); for a vertical layer it is an ``x`` value.
        """
        return self.offset + track_index * self.pitch

    def nearest_track(self, coordinate: int) -> int:
        """Return the index of the track nearest to *coordinate*."""
        return round((coordinate - self.offset) / self.pitch)
