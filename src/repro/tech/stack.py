"""The technology stack: an ordered list of routing layers plus rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.tech.layer import Layer, LayerDirection
from repro.tech.rules import DesignRules


@dataclass
class TechStack:
    """An ordered routing layer stack with the associated design rules.

    Layer 0 is the lowest routing layer.  Adjacent layers are connected by
    vias (modelled as unit-cost layer-change edges scaled by
    :attr:`DesignRules.via_cost`).
    """

    layers: List[Layer]
    rules: DesignRules = field(default_factory=DesignRules)
    name: str = "tech"

    def __post_init__(self) -> None:
        for expected, layer in enumerate(self.layers):
            if layer.index != expected:
                raise ValueError(
                    f"layer {layer.name!r} has index {layer.index}, expected {expected}"
                )

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    @property
    def num_layers(self) -> int:
        """Return the number of routing layers."""
        return len(self.layers)

    def layer_by_name(self, name: str) -> Layer:
        """Return the layer called *name* (raises ``KeyError`` if unknown)."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def tpl_layers(self) -> List[Layer]:
        """Return the layers subject to triple patterning."""
        return [layer for layer in self.layers if layer.tpl]

    def above(self, layer: Layer) -> Optional[Layer]:
        """Return the layer directly above *layer*, or ``None`` at the top."""
        if layer.index + 1 < len(self.layers):
            return self.layers[layer.index + 1]
        return None

    def below(self, layer: Layer) -> Optional[Layer]:
        """Return the layer directly below *layer*, or ``None`` at the bottom."""
        if layer.index - 1 >= 0:
            return self.layers[layer.index - 1]
        return None


def make_default_tech(
    num_layers: int = 4,
    pitch: int = 4,
    width: int = 1,
    spacing: int = 1,
    color_spacing: int = 8,
    tpl_layer_count: Optional[int] = None,
    rules: Optional[DesignRules] = None,
) -> TechStack:
    """Build a contest-style alternating H/V layer stack.

    Parameters
    ----------
    num_layers:
        Number of routing layers.  Layer 0 is horizontal, layer 1 vertical,
        and so on, matching the M1-up convention of the ISPD benchmarks.
    pitch / width / spacing:
        Per-layer track pitch, default wire width and minimum spacing (DBU).
    color_spacing:
        The TPL same-mask spacing ``Dcolor`` (DBU).
    tpl_layer_count:
        How many of the lowest layers are triple-patterned.  Defaults to all
        layers; upper layers in real designs are usually single-patterned, so
        the benchmark suites restrict TPL to the lower two or three layers.
    rules:
        Optional pre-built :class:`DesignRules`; a default-consistent set is
        created otherwise.
    """
    if num_layers < 2:
        raise ValueError("a routable stack needs at least two layers")
    if tpl_layer_count is None:
        tpl_layer_count = num_layers
    layers = []
    for index in range(num_layers):
        direction = LayerDirection.HORIZONTAL if index % 2 == 0 else LayerDirection.VERTICAL
        layers.append(
            Layer(
                index=index,
                name=f"Metal{index + 1}",
                direction=direction,
                pitch=pitch,
                width=width,
                spacing=spacing,
                offset=0,
                tpl=index < tpl_layer_count,
            )
        )
    if rules is None:
        rules = DesignRules(
            color_spacing=color_spacing,
            min_spacing=spacing,
            wire_width=width,
        )
    return TechStack(layers=layers, rules=rules)
