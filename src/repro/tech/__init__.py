"""Technology model: routing layers, design rules, and the layer stack.

The technology captures everything the routers need to know about the
process: layer directions and pitches, minimum width and spacing, via costs,
and -- central to this paper -- the same-mask color spacing ``Dcolor`` that
defines when two shapes on the same triple-patterning mask conflict.
"""

from repro.tech.layer import Layer, LayerDirection
from repro.tech.rules import DesignRules, TPL_MASK_COUNT
from repro.tech.stack import TechStack, make_default_tech

__all__ = [
    "Layer",
    "LayerDirection",
    "DesignRules",
    "TechStack",
    "make_default_tech",
    "TPL_MASK_COUNT",
]
