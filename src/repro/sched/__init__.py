"""Disjoint-batch scheduling and batched execution of net routing.

PRs 1-3 made single-net searches and per-net re-validation cheap; this
package converts the remaining serial outer loop into batched throughput:

* :class:`BatchScheduler` partitions a pending-net queue into batches of
  nets whose interaction-radius-expanded windows are pairwise disjoint
  (order-preserving ``prefix`` policy, or ``greedy`` first-fit coloring);
* :class:`BatchExecutor` routes each batch through a deterministic serial
  backend (bit-identical to the sequential loop -- the parity oracle) or a
  speculative ``thread`` / fork-based ``process`` backend that routes the
  whole batch against a frozen snapshot with per-worker search engines,
  validates every result's explored region against batch-mates' committed
  deltas, replays accepted commit logs through the grid's delta hooks (so
  the incremental DRC/conflict checkers re-validate only the merged batch)
  and falls back to live routing when regions touch.

All three rip-up loops (``dr/router``, ``tpl/mr_tpl``,
``baselines/dac2012``) wire in through their ``parallelism`` /
``batch_size`` / ``batch_backend`` constructor knobs.
"""

from repro.sched.batches import BatchScheduler, CellWindow, windows_overlap
from repro.sched.commit import GridSink, RecordingSink, apply_route_ops
from repro.sched.executor import BACKENDS, BatchExecutor, ExecutorStats, make_batch_executor

__all__ = [
    "BACKENDS",
    "BatchExecutor",
    "BatchScheduler",
    "CellWindow",
    "ExecutorStats",
    "GridSink",
    "make_batch_executor",
    "RecordingSink",
    "apply_route_ops",
    "windows_overlap",
]
