"""Disjoint-batch scheduling and batched execution of net routing.

PRs 1-3 made single-net searches and per-net re-validation cheap; this
package converts the remaining serial outer loop into batched throughput:

* :class:`BatchScheduler` partitions a pending-net queue into batches of
  nets whose interaction-radius-expanded windows are pairwise disjoint
  (order-preserving ``prefix`` policy, or ``greedy`` first-fit coloring);
* :class:`BatchExecutor` routes each batch through a deterministic serial
  backend (bit-identical to the sequential loop -- the parity oracle) or a
  speculative ``thread`` / fork-per-batch ``process`` / persistent ``pool``
  backend that routes the whole batch against a frozen snapshot with
  per-worker search engines, validates every result's explored region
  against batch-mates' committed deltas, replays accepted commit logs
  (plain :mod:`repro.journal` ops) through the grid's ``apply_op`` choke
  point (so the attached journal and the incremental DRC/conflict checkers
  see the merged batch) and falls back to live routing when regions touch.
  The ``pool`` backend's workers fork **once** and re-synchronise between
  batches by replaying the grid journal suffix past their cursor -- no
  re-fork, no snapshot serialisation.

All three rip-up loops (``dr/router``, ``tpl/mr_tpl``,
``baselines/dac2012``) wire in through their ``parallelism`` /
``batch_size`` / ``batch_backend`` constructor knobs, plus the
``min_fork_batch`` / ``batch_margin`` tuning knobs (also settable through
the ``REPRO_MIN_FORK_BATCH`` / ``REPRO_BATCH_MARGIN`` environment).

Execution is **supervised** (:mod:`repro.sched.supervisor`): per-batch
wall-clock deadlines, pool-worker heartbeats, classified failures with
bounded exponential-backoff retry and single-worker replacement, and a
graceful-degradation ladder (pool -> process -> thread -> serial) that
demotes the backend after consecutive failures -- serial being the
always-correct floor, every recovery path stays bit-identical to the
fault-free sequential run.

Execution is also **self-tuning** (:mod:`repro.sched.autotune`): a
one-shot per-process calibration probe (:func:`calibrate` ->
:class:`HardwareProfile`) measures usable cores, fork/pipe/thread costs
and the active kernel tier; ``batch_backend="auto"`` resolves the
starting backend from it, and ``REPRO_AUTOTUNE=full`` engages the
seeded, deterministic :class:`AutotuneController`, which re-picks the
backend and adapts the batch knobs per rip-up iteration from the
executor's own counters -- never outside what the degradation ladder
still allows, and never affecting results.
"""

from repro.sched.autotune import (
    AUTOTUNE_MODES,
    AutotuneController,
    Decision,
    HardwareProfile,
    calibrate,
    recommend_backend,
    reset_calibration_cache,
    resolve_autotune_mode,
    usable_cpu_count,
)
from repro.sched.batches import BatchScheduler, CellWindow, windows_overlap
from repro.sched.commit import GridSink, RecordingSink, apply_route_ops
from repro.sched.executor import (
    BACKENDS,
    BatchExecutor,
    ExecutorStats,
    PersistentWorkerPool,
    make_batch_executor,
    resolve_batch_margin,
    resolve_min_fork_batch,
    resolve_pool_bootstrap,
    resolve_pool_snapshot_ops,
)
from repro.sched.supervisor import (
    FailureDetail,
    SupervisorConfig,
    WorkerFailure,
    classify_exception,
    classify_worker_payload,
    degradation_ladder,
)

__all__ = [
    "AUTOTUNE_MODES",
    "AutotuneController",
    "BACKENDS",
    "BatchExecutor",
    "BatchScheduler",
    "CellWindow",
    "Decision",
    "ExecutorStats",
    "HardwareProfile",
    "calibrate",
    "recommend_backend",
    "reset_calibration_cache",
    "resolve_autotune_mode",
    "usable_cpu_count",
    "FailureDetail",
    "GridSink",
    "PersistentWorkerPool",
    "SupervisorConfig",
    "WorkerFailure",
    "classify_exception",
    "classify_worker_payload",
    "degradation_ladder",
    "make_batch_executor",
    "RecordingSink",
    "apply_route_ops",
    "resolve_batch_margin",
    "resolve_min_fork_batch",
    "resolve_pool_bootstrap",
    "resolve_pool_snapshot_ops",
    "windows_overlap",
]
