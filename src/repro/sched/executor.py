"""Batch execution of disjoint net batches over a shared routing grid.

The executor routes the batches a :class:`~repro.sched.batches.BatchScheduler`
plans, through one of three backends:

``"serial"`` (default, the parity oracle)
    Routes every batch member with the router's own ``route_net`` --
    immediate grid commits, identical call sequence to the sequential loop.
    With the scheduler's order-preserving ``prefix`` policy this *is* the
    sequential loop, so results are bit-identical by construction.

``"thread"`` / ``"process"`` / ``"pool"`` (speculative snapshot routing)
    All nets of a batch are routed concurrently against the grid state at
    batch start ("the snapshot"): workers call the router's
    ``compute_route`` with a :class:`~repro.sched.commit.RecordingSink`
    (reads only, commits recorded) and a per-worker search engine, so the
    epoch-stamped label buffers of concurrent searches never collide.  The
    thread backend shares the live buffers under the GIL; the process
    backend forks per batch, giving each worker a copy-on-write snapshot
    for free (fork keeps the batch state exact with no serialisation).

    The ``pool`` backend keeps **persistent journal-replicated workers**:
    processes fork *once* (attaching a :class:`repro.journal
    .MutationJournal` to the grid first, so every later mutation is
    logged), and between batches each worker catches up by replaying only
    the journal suffix past its cursor through ``RoutingGrid.apply_op`` --
    no re-fork, no snapshot serialisation.  Because replay is
    bit-identical (the journal replay guarantee), a caught-up worker's
    grid is byte-for-byte the parent's, and the same explored-region
    validation + live-reroute fallback applies unchanged.

    Commits are then applied **serially in batch order** with a speculative
    validation step: a snapshot-computed route is exact iff the search
    never read a vertex whose state an earlier batch-mate's commit could
    have changed.  Every read of mutable grid state happens at a vertex the
    search labelled (:meth:`CoreResult.labelled_planar_box`), and a commit
    influences at most its own vertices plus the interaction reach around
    them (color pressure), so the executor accepts the speculative route
    when the explored box is disjoint from every committed influence box --
    and otherwise **falls back to routing the net live**, which reproduces
    the sequential result exactly.  Accepted logs replay through the normal
    grid hooks, so the incremental DRC/conflict checkers see the same delta
    stream either way.

Determinism caveat shared by both speculative backends: deferring a net's
own mid-route color commits is bit-neutral only because pressure values are
sums of ``conflict_cost`` increments (exact in IEEE-754 for the default
rule values); the differential suite in ``tests/test_batch_sched.py``
asserts the end-to-end guarantee per backend.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.accel import get_native_kernel
from repro.design import Net
from repro.grid import RoutingSolution
from repro.profiling import PhaseTimes
from repro.sched.autotune import (
    AutotuneController,
    Decision,
    HardwareProfile,
    calibrate,
    recommend_backend,
    resolve_autotune_mode,
)
from repro.sched.batches import BatchScheduler, CellWindow, windows_overlap
from repro.sched.commit import CommitOp, RecordingSink, apply_route_ops
from repro.sched.supervisor import (
    LADDER,
    FailureDetail,
    SupervisorConfig,
    WorkerFailure,
    await_worker_reply,
    classify_exception,
    classify_worker_payload,
    degradation_ladder,
)
from repro.utils.env import env_int, env_str

#: Backends accepted by :class:`BatchExecutor` (``"auto"`` additionally
#: accepted by :func:`make_batch_executor`, which resolves it from the
#: calibration profile before the executor is built).
BACKENDS = ("serial", "thread", "process", "pool")

#: Environment knobs (overridden by explicit arguments): the smallest batch
#: worth forking for, and the scheduler's extra window margin in cells.
MIN_FORK_BATCH_ENV = "REPRO_MIN_FORK_BATCH"
BATCH_MARGIN_ENV = "REPRO_BATCH_MARGIN"

#: How pool workers come to hold the parent's grid state: ``fork`` (inherit
#: through the fork itself), ``snapshot`` (rebuild from a pickled design +
#: grid snapshot + journal suffix -- the distributed-worker bootstrap path,
#: and the only one available without the fork start method), or ``auto``
#: (fork when available, snapshot otherwise).
POOL_BOOTSTRAP_ENV = "REPRO_POOL_BOOTSTRAP"
#: Snapshot-mode payload refresh threshold: once the journal head has moved
#: this many ops past the cached bootstrap snapshot, the next worker start
#: re-snapshots the grid instead of shipping an ever-longer suffix.
POOL_SNAPSHOT_OPS_ENV = "REPRO_POOL_SNAPSHOT_OPS"

#: Built-in defaults behind the env knobs.
DEFAULT_MIN_FORK_BATCH = 3
DEFAULT_BATCH_MARGIN = 0
DEFAULT_POOL_BOOTSTRAP = "auto"
DEFAULT_POOL_SNAPSHOT_OPS = 4096

#: Bootstrap modes accepted by :func:`resolve_pool_bootstrap`.
POOL_BOOTSTRAPS = ("auto", "fork", "snapshot")


def resolve_min_fork_batch(explicit: Optional[int] = None) -> int:
    """Return the effective ``min_fork_batch`` knob (arg > env > default)."""
    if explicit is not None:
        return explicit
    return env_int(MIN_FORK_BATCH_ENV, DEFAULT_MIN_FORK_BATCH)


def resolve_batch_margin(explicit: Optional[int] = None) -> int:
    """Return the effective scheduler window margin in cells (arg > env > default)."""
    if explicit is not None:
        return explicit
    return env_int(BATCH_MARGIN_ENV, DEFAULT_BATCH_MARGIN)


def resolve_pool_bootstrap(explicit: Optional[str] = None) -> str:
    """Return the effective pool bootstrap mode (arg > env > ``auto``)."""
    mode = explicit if explicit is not None else env_str(
        POOL_BOOTSTRAP_ENV, DEFAULT_POOL_BOOTSTRAP
    )
    if mode not in POOL_BOOTSTRAPS:
        raise ValueError(
            f"unknown pool bootstrap {mode!r}; expected one of {POOL_BOOTSTRAPS}"
        )
    return mode


def resolve_pool_snapshot_ops(explicit: Optional[int] = None) -> int:
    """Return the snapshot-payload refresh threshold (arg > env > default)."""
    if explicit is not None:
        return explicit
    return env_int(POOL_SNAPSHOT_OPS_ENV, DEFAULT_POOL_SNAPSHOT_OPS)


@dataclass
class ExecutorStats:
    """Counters describing one or more :meth:`BatchExecutor.route_nets` calls."""

    nets_routed: int = 0
    batches: int = 0
    parallel_batches: int = 0
    largest_batch: int = 0
    speculative_accepted: int = 0
    speculative_fallbacks: int = 0
    worker_errors: int = 0
    #: Processes forked over the executor's lifetime (pool backend: forked
    #: once per pool creation; the whole point is that this stays small).
    pool_forks: int = 0
    #: Journal ops shipped to pool workers as catch-up suffixes.
    replayed_ops: int = 0
    #: Pool workers that ignored the shutdown message and had to be
    #: terminated/killed at close (hung-worker escalation).
    worker_kills: int = 0
    #: Pool workers that rebuilt their grid from a snapshot payload instead
    #: of inheriting it through fork (``snapshot`` bootstrap mode).
    snapshot_bootstraps: int = 0
    #: Failed parallel batches retried on the same backend tier (bounded by
    #: ``REPRO_BATCH_RETRIES``, exponential backoff between attempts).
    retries: int = 0
    #: Worker failures classified as deadline/heartbeat timeouts.
    deadline_timeouts: int = 0
    #: Failed pool workers removed and replaced individually (the pool
    #: survives; only the broken worker restarts).
    worker_replacements: int = 0
    #: Backend demotions down the degradation ladder (pool -> process ->
    #: thread -> serial) after consecutive retry-exhausted failures.
    demotions: int = 0
    #: Snapshot-bootstrap decode failures recovered by falling back to the
    #: fork bootstrap path for that worker slot.
    bootstrap_fallbacks: int = 0
    #: Heartbeat messages received from pool workers (liveness evidence).
    heartbeats: int = 0
    #: Autotune controller decisions applied (one per route_nets round).
    autotune_decisions: int = 0
    #: Coalesced journal-suffix catch-up messages actually shipped to pool
    #: workers (one framed message per worker per batch).
    suffix_messages: int = 0
    #: Distinct suffix serialisations performed (cache misses); the gap to
    #: :attr:`suffix_messages` is work the frame cache saved.
    suffix_pickles: int = 0
    #: Total suffix payload bytes shipped down worker pipes.
    suffix_bytes: int = 0
    #: Suffix payload bytes *not* re-serialised thanks to the shared frame
    #: cache (same-cursor workers reuse one pickled frame).
    suffix_bytes_saved: int = 0
    #: Catch-up sends elided outright because the worker was already at the
    #: journal head (``None`` sentinel instead of a pickled empty suffix).
    suffix_elisions: int = 0
    #: Calibration profile of the host this executor ran on (``None`` until
    #: a probe ran).  Not a counter: excluded from :meth:`as_dict` so the
    #: campaign's additive stats merge stays numeric.
    profile: Optional[Dict[str, object]] = None
    #: Per-phase wall-clock accounting (plan/search/commit/check/ipc/
    #: checkpoint).  The owning router shares this record, so executor-side
    #: phases (plan, search, ipc, commit) and router-side phases (check,
    #: checkpoint) land in one place.  Appears in :meth:`as_dict` as the
    #: nested ``phase_seconds`` entry, which the campaign merge adds
    #: phase-by-phase.
    phases: PhaseTimes = field(default_factory=PhaseTimes)

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a plain dict (benchmark JSON friendly)."""
        return {
            "phase_seconds": self.phases.as_dict(),
            "nets_routed": self.nets_routed,
            "batches": self.batches,
            "parallel_batches": self.parallel_batches,
            "largest_batch": self.largest_batch,
            "speculative_accepted": self.speculative_accepted,
            "speculative_fallbacks": self.speculative_fallbacks,
            "worker_errors": self.worker_errors,
            "pool_forks": self.pool_forks,
            "replayed_ops": self.replayed_ops,
            "worker_kills": self.worker_kills,
            "snapshot_bootstraps": self.snapshot_bootstraps,
            "retries": self.retries,
            "deadline_timeouts": self.deadline_timeouts,
            "worker_replacements": self.worker_replacements,
            "demotions": self.demotions,
            "bootstrap_fallbacks": self.bootstrap_fallbacks,
            "heartbeats": self.heartbeats,
            "autotune_decisions": self.autotune_decisions,
            "suffix_messages": self.suffix_messages,
            "suffix_pickles": self.suffix_pickles,
            "suffix_bytes": self.suffix_bytes,
            "suffix_bytes_saved": self.suffix_bytes_saved,
            "suffix_elisions": self.suffix_elisions,
        }


class ExploredTracker:
    """Accumulates the planar bounding box of every vertex a net's searches
    labelled, via :attr:`SearchCore.on_result`."""

    __slots__ = ("plane_size", "num_rows", "node_stride", "box")

    def __init__(self, grid, node_stride: int = 1) -> None:
        self.plane_size = grid.plane_size
        self.num_rows = grid.num_rows
        self.node_stride = node_stride
        self.box: Optional[CellWindow] = None

    def __call__(self, result) -> None:
        box = result.labelled_planar_box(self.plane_size, self.num_rows, self.node_stride)
        if box is None:
            return
        if self.box is None:
            self.box = box
        else:
            mine = self.box
            self.box = (
                min(mine[0], box[0]),
                min(mine[1], box[1]),
                max(mine[2], box[2]),
                max(mine[3], box[3]),
            )


@dataclass
class SpeculativeRoute:
    """One worker's snapshot-computed result for a net."""

    route: object
    ops: List[CommitOp]
    explored_box: Optional[CellWindow]


# -- fork-backend plumbing ---------------------------------------------------
#
# The fork backend inherits the parent state through ``fork`` itself: the
# task tuple is published in a module global immediately before the pool is
# created, so the children are born holding the exact batch snapshot and
# only the (small) results travel back through pickling.

_FORK_TASK: Optional[Tuple[object, Sequence[Net]]] = None
_FORK_ENGINE: Optional[object] = None


def _fork_worker(index: int) -> Tuple[object, List[CommitOp], Optional[CellWindow]]:
    global _FORK_ENGINE
    router, nets = _FORK_TASK
    if _FORK_ENGINE is None:
        _FORK_ENGINE = router.make_search_engine()
    spec = _compute_speculative(router, nets[index], _FORK_ENGINE)
    return (spec.route, spec.ops, spec.explored_box)


# -- pool-backend plumbing ---------------------------------------------------
#
# Persistent journal-replicated workers: each process forks once holding the
# parent's grid state at fork time, then re-synchronises before every batch
# by replaying the parent's journal suffix through the grid's apply_op choke
# point -- bit-identical to the parent by the journal replay guarantee.  The
# router is published in a module global immediately before the fork (same
# trick as the per-batch fork backend); afterwards only small messages --
# (journal suffix, net names) down, (route, ops, explored box) up -- cross
# the pipe.

_POOL_ROUTER: Optional[object] = None


def _serve_pool_worker(conn, router, engine, worker_index: int = 0) -> None:
    """Run a pool worker's serve loop until shutdown or pipe close.

    Shared by both bootstrap paths (fork-inherited and snapshot-rebuilt
    workers); by the time it runs the worker's grid must be byte-identical
    to the parent's at some journal cursor, with no journal attached and no
    delta listeners registered.

    Protocol: the worker interleaves ``("hb", ops_seen)`` heartbeat
    messages (after catch-up replay, and after each routed net) with the
    terminal ``("ok", payload)`` / ``("error", detail)`` reply, so the
    parent's supervised receive loop can tell "slow but alive" from
    "hung".  Errors are structured dicts carrying the failure kind
    (``replay`` vs ``compute``), the worker index, the cumulative
    replayed-op count and the failing net -- the classification the
    supervisor's retry policy runs on.
    """
    from repro.journal import replay_ops

    grid = router.grid
    design = router.design
    ops_seen = 0
    faults.set_context(worker=worker_index)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            suffix_payload, net_names = message
            try:
                if faults.ARMED:
                    faults.fire("reply.delay", worker=worker_index)
                try:
                    # The suffix arrives pre-pickled: the parent serialises
                    # each distinct catch-up suffix once, not once per
                    # worker.  ``None`` means "already at the head" -- no
                    # payload at all rides the pipe for an in-sync worker.
                    if suffix_payload is not None:
                        ops = pickle.loads(suffix_payload)
                        replay_ops(grid, ops)
                        ops_seen += len(ops)
                except Exception as exc:
                    conn.send(("error", {
                        "kind": "replay", "error": repr(exc),
                        "ops_seen": ops_seen, "worker": worker_index,
                    }))
                    continue
                if faults.ARMED:
                    faults.fire("worker.crash", worker=worker_index, ops_seen=ops_seen)
                # Liveness: catch-up replay done, compute starting.
                conn.send(("hb", ops_seen))
                payload = []
                failed = None
                for name in net_names:
                    if faults.ARMED:
                        faults.fire("worker.crash", worker=worker_index, ops_seen=ops_seen)
                    try:
                        spec = _compute_speculative(
                            router, design.net_by_name(name), engine
                        )
                    except Exception as exc:
                        failed = {
                            "kind": "compute", "error": repr(exc),
                            "ops_seen": ops_seen, "net": name,
                            "worker": worker_index,
                        }
                        break
                    payload.append((spec.route, spec.ops, spec.explored_box))
                    conn.send(("hb", ops_seen))
                if faults.ARMED and failed is None:
                    faults.fire("pipe.drop", worker=worker_index)
                if failed is not None:
                    conn.send(("error", failed))
                else:
                    conn.send(("ok", payload))
            except faults.PipeDropFault:
                break
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


def _strip_worker_grid(grid) -> None:
    """Drop per-process grid attachments a worker must not carry.

    The journal: a worker's copy would only duplicate what the parent
    already holds, and suffix replay must not be re-recorded in the child.
    The incremental-checker delta listeners: nobody ever drains them in a
    worker, so their dirty-set bookkeeping per replayed op would be pure
    waste (and unbounded memory).
    """
    grid.detach_journal()
    for listener in list(grid._delta_listeners):
        grid.remove_delta_listener(listener)


def _pool_worker_main(conn, worker_index: int = 0) -> None:
    """Entry point of a fork-bootstrapped worker (state inherited by fork)."""
    router = _POOL_ROUTER
    _strip_worker_grid(router.grid)
    engine = router.make_search_engine()
    _serve_pool_worker(conn, router, engine, worker_index)


def _snapshot_worker_main(conn, worker_index: int = 0) -> None:
    """Entry point of a snapshot-bootstrapped worker.

    The worker inherits nothing: its first message is the pickled
    ``(design, router_cls, kwargs, snapshot)`` bootstrap payload plus the
    journal suffix past the snapshot's cursor.  It rebuilds the grid by
    snapshot-restore + suffix replay -- bit-identical to the parent's by
    the snapshot/replay guarantees, at O(grid + suffix) cost regardless of
    campaign age -- then enters the normal serve loop.  This is the
    bootstrap path remote (non-fork) workers will use.

    Bootstrap errors report which stage failed -- ``decode`` (unpickling
    the payload: possibly a transient serialisation problem, worth one
    fork-bootstrap fallback) vs ``rebuild`` (snapshot restore / replay /
    router construction: the payload itself is bad).
    """
    from repro.grid import RoutingGrid
    from repro.journal import replay_ops

    stage = "recv"
    try:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message is None:
            return
        payload_bytes, suffix_bytes = message
        stage = "decode"
        if faults.ARMED:
            faults.fire("bootstrap.fail", worker=worker_index)
        design, router_cls, kwargs, snapshot = pickle.loads(payload_bytes)
        stage = "rebuild"
        grid = RoutingGrid(design)
        grid.restore_state(snapshot)
        replay_ops(grid, pickle.loads(suffix_bytes))
        router = router_cls(design, grid=grid, **kwargs)
        _strip_worker_grid(grid)
        engine = router.make_search_engine()
    except Exception as exc:
        try:
            conn.send(("error", {
                "kind": "bootstrap", "stage": stage,
                "error": repr(exc), "worker": worker_index,
            }))
        except (BrokenPipeError, OSError):
            pass
        conn.close()
        return
    try:
        conn.send(("ok", None))  # bootstrap handshake
    except (BrokenPipeError, OSError):
        conn.close()
        return
    _serve_pool_worker(conn, router, engine, worker_index)


def _shutdown_workers(
    workers: Sequence["_PoolWorker"],
    join_timeout: float = 5.0,
    escalate_timeout: float = 1.0,
) -> int:
    """Join worker processes, escalating to terminate/kill on timeout.

    Returns how many workers had to be forcibly stopped.  A worker stuck in
    an uninterruptible loop (or one that ignores SIGTERM) must not outlive
    the executor -- a leaked process pins the forked grid memory and, under
    pytest, hangs the whole run at interpreter exit.
    """
    killed = 0
    for worker in workers:
        process = worker.process
        process.join(timeout=join_timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=escalate_timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=escalate_timeout)
            killed += 1
        worker.conn.close()
    return killed


class _PoolWorker:
    """One persistent worker: its process, pipe, journal cursor and index.

    The index is a pool-lifetime-unique identity (monotonically assigned,
    never reused by a replacement) so failure details and ``worker=K``
    fault-plan targeting name a specific incarnation.
    """

    __slots__ = ("process", "conn", "cursor", "index")

    def __init__(self, process, conn, cursor: int, index: int = 0) -> None:
        self.process = process
        self.conn = conn
        self.cursor = cursor
        self.index = index


class PersistentWorkerPool:
    """A set of persistent worker processes kept in sync by journal replay.

    Workers come to hold the parent's grid state exactly once each --
    **lazily**, as batches actually demand them, so a campaign whose
    batches never grow past two nets only ever starts two workers.  Two
    bootstrap modes:

    ``fork``
        The worker inherits the parent's full state through ``fork``
        itself; a late-forked worker needs no catch-up (born holding the
        current state, cursor at the journal head).

    ``snapshot``
        The worker inherits nothing and rebuilds its grid from a pickled
        ``(design, router_cls, kwargs, snapshot)`` payload plus the journal
        suffix past the snapshot cursor -- O(grid + suffix) regardless of
        campaign age.  The payload is cached across worker starts and
        re-snapshotted once the head moves *snapshot_refresh_ops* past it,
        so a late-joining worker never replays more than one refresh
        window.  This path works without the fork start method and is the
        stepping stone to workers on other machines.

    Either way, the parent tracks one journal cursor per worker and, before
    assigning a batch slice, ships the suffix of ops the worker has not yet
    seen.  Only workers that participate in a batch catch up -- idle
    workers simply accumulate a longer suffix for next time.
    """

    def __init__(
        self,
        context,
        router,
        size: int,
        bootstrap: str = "fork",
        snapshot_refresh_ops: Optional[int] = None,
        config: Optional[SupervisorConfig] = None,
        fork_ok: bool = False,
    ) -> None:
        if router.grid.journal is None:
            raise RuntimeError("pool workers require a journal attached to the grid")
        if bootstrap not in ("fork", "snapshot"):
            raise ValueError(
                f"unknown pool bootstrap {bootstrap!r}; expected 'fork' or 'snapshot'"
            )
        self.context = context
        self.router = router
        self.size = max(1, size)
        self.bootstrap = bootstrap
        self.snapshot_refresh_ops = resolve_pool_snapshot_ops(snapshot_refresh_ops)
        self.config = config if config is not None else SupervisorConfig.from_env()
        #: Whether :attr:`context` forks (fork-bootstrap fallback possible).
        self.fork_ok = fork_ok or bootstrap == "fork"
        self.journal = router.grid.journal
        self.workers: List[_PoolWorker] = []
        #: Processes started over this pool's lifetime (stats accounting).
        self.total_forks = 0
        #: Workers bootstrapped from a snapshot payload (stats accounting).
        self.total_snapshot_bootstraps = 0
        #: Workers that had to be terminated/killed (close or replacement).
        self.total_kills = 0
        #: Failed workers removed individually (the pool survived them).
        self.total_replacements = 0
        #: Snapshot-decode bootstrap failures recovered via fork bootstrap.
        self.total_bootstrap_fallbacks = 0
        #: Heartbeat messages received across all supervised receives.
        self.total_heartbeats = 0
        #: Journal ops shipped as catch-up suffixes, counted **at send
        #: time** so a later WorkerFailure in the same batch cannot lose
        #: them (the executor drains this as deltas, like every other pool
        #: counter, instead of trusting a return value that a raise eats).
        self.total_replayed_ops = 0
        #: Suffix-frame accounting (suffix-message batching): messages
        #: shipped, distinct serialisations, bytes shipped, bytes the
        #: shared frame cache saved, and sends elided for in-sync workers.
        self.total_suffix_messages = 0
        self.total_suffix_pickles = 0
        self.total_suffix_bytes = 0
        self.total_suffix_bytes_saved = 0
        self.total_suffix_elisions = 0
        # Pool-lifetime-unique worker index (replacements get fresh ones).
        self._next_index = 0
        # Cached snapshot-mode bootstrap payload and the journal cursor the
        # snapshot inside it was taken at.
        self._payload: Optional[bytes] = None
        self._payload_cursor: Optional[int] = None

    def __len__(self) -> int:
        return len(self.workers)

    def min_cursor(self) -> int:
        """Return the oldest journal cursor the pool still needs.

        Ops before it can never be shipped again: existing workers are
        past them, future fork-mode workers fork from the live parent
        (needing no ops at all), and future snapshot-mode workers replay
        from the cached payload's cursor -- which therefore pins it.  With
        nothing to pin, that is the journal head.
        """
        cursors = [worker.cursor for worker in self.workers]
        if self._payload_cursor is not None:
            cursors.append(self._payload_cursor)
        if not cursors:
            return self.journal.cursor
        return min(cursors)

    def _bootstrap_payload(self) -> Tuple[bytes, bytes, int]:
        """Return ``(payload, suffix, cursor)`` for one snapshot-mode start.

        The payload (design + router spec + grid snapshot) is the expensive
        part; it is cached and reused until the journal head has moved
        :attr:`snapshot_refresh_ops` past it (or the journal was folded
        past its cursor), then refreshed.  The suffix covers payload cursor
        to head, so the started worker is exactly at *cursor* == head.
        """
        head = self.journal.cursor
        stale = (
            self._payload is None
            or self._payload_cursor < self.journal.base
            or head - self._payload_cursor > self.snapshot_refresh_ops
        )
        if stale:
            router_cls, kwargs = self.router.worker_spec()
            self._payload = pickle.dumps(
                (self.router.design, router_cls, kwargs, self.router.grid.snapshot_state())
            )
            self._payload_cursor = head
        suffix = pickle.dumps(self.journal.suffix(self._payload_cursor))
        return self._payload, suffix, head

    def _suffix_frame(
        self, cursor: int, head: int, cache: Dict[int, Tuple[Optional[bytes], int]]
    ) -> Tuple[Optional[bytes], int]:
        """Return ``(frame, op_count)`` catching a worker up from *cursor*.

        One framed message per worker per batch: the whole suffix is
        serialised as a single payload (never per-op pipe writes), the
        pickled frame is cached per distinct cursor so same-cursor workers
        share one serialisation, and a worker already at *head* gets the
        ``None`` sentinel -- no suffix bytes ride the pipe at all.  Every
        path updates the pool's suffix counters, which the executor drains
        into :class:`ExecutorStats` (bytes/messages saved are part of the
        bench record).
        """
        if cursor >= head:
            self.total_suffix_elisions += 1
            return None, 0
        cached = cache.get(cursor)
        if cached is None:
            suffix = self.journal.suffix(cursor)
            cached = (pickle.dumps(suffix), len(suffix))
            cache[cursor] = cached
            self.total_suffix_pickles += 1
        else:
            self.total_suffix_bytes_saved += len(cached[0])
        self.total_suffix_messages += 1
        self.total_suffix_bytes += len(cached[0])
        return cached

    def _start_worker(self, bootstrap: str) -> None:
        """Start and register one worker via *bootstrap* (fork or snapshot).

        Raises :class:`WorkerFailure` (kind ``bootstrap``) when a
        snapshot-mode handshake fails; the broken worker is reaped first,
        so the pool stays consistent for a fallback or retry.
        """
        index = self._next_index
        self._next_index += 1
        parent_conn, child_conn = self.context.Pipe()
        if bootstrap == "fork":
            global _POOL_ROUTER
            _POOL_ROUTER = self.router
            try:
                process = self.context.Process(
                    target=_pool_worker_main, args=(child_conn, index), daemon=True
                )
                process.start()
            except Exception:
                parent_conn.close()
                child_conn.close()
                raise
            finally:
                _POOL_ROUTER = None
            child_conn.close()
            # Born in sync: the child holds the parent's state as of now.
            self.workers.append(
                _PoolWorker(process, parent_conn, self.journal.cursor, index)
            )
            self.total_forks += 1
            return
        try:
            process = self.context.Process(
                target=_snapshot_worker_main, args=(child_conn, index), daemon=True
            )
            process.start()
        except Exception:
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        # Register before the handshake: a bootstrap failure must still
        # leave the started process reapable.
        worker = _PoolWorker(process, parent_conn, 0, index)
        self.workers.append(worker)
        self.total_forks += 1
        payload, suffix, cursor = self._bootstrap_payload()
        parent_conn.send((payload, suffix))
        # Synchronous handshake: a worker that failed to rebuild its grid
        # must never be handed a batch.
        try:
            status, detail = parent_conn.recv()
        except EOFError:
            status, detail = "error", "worker pipe closed during bootstrap"
        if status != "ok":
            failure = classify_worker_payload(detail, index, None)
            if failure.kind not in ("bootstrap", "crash"):
                failure.kind = "bootstrap"
            self.workers.remove(worker)
            self.total_kills += _shutdown_workers(
                [worker], join_timeout=0.2, escalate_timeout=0.5
            )
            raise WorkerFailure([failure], context="pool worker bootstrap")
        worker.cursor = cursor
        self.total_snapshot_bootstraps += 1

    def _ensure_workers(self, needed: int) -> None:
        """Start workers up to ``min(needed, size)``, one at a time.

        A snapshot bootstrap whose *decode* stage failed falls back to the
        fork bootstrap path for that slot (once per failure) before giving
        up: a payload the parent pickled but the child cannot unpickle is
        an environment problem fork sidesteps entirely, while a *rebuild*
        failure means the state itself is bad and fork would inherit it.
        """
        target = min(needed, self.size)
        while len(self.workers) < target:
            if self.bootstrap == "fork":
                self._start_worker("fork")
                continue
            try:
                self._start_worker("snapshot")
            except WorkerFailure as failure:
                detail = failure.details[0]
                if detail.stage == "decode" and self.fork_ok:
                    self.total_bootstrap_fallbacks += 1
                    self._start_worker("fork")
                    continue
                raise

    def remove_workers(self, failed: Sequence[_PoolWorker]) -> None:
        """Remove and reap *failed* workers; the rest of the pool survives.

        Single-worker replacement instead of whole-pool discard: the
        surviving workers completed their replies, so their grids are in
        sync and keep serving; the next :meth:`compute` lazily starts
        replacements (fresh index, current parent state) on demand.
        """
        if not failed:
            return
        for worker in failed:
            if worker in self.workers:
                self.workers.remove(worker)
        self.total_kills += _shutdown_workers(
            failed, join_timeout=0.2, escalate_timeout=0.5
        )
        self.total_replacements += len(failed)

    def compute(
        self, net_names: Sequence[str], deadline: Optional[float] = None
    ) -> Tuple[List[Tuple], int]:
        """Compute speculative routes for *net_names* across the workers.

        Nets are dealt round-robin over the workers actually needed; the
        result list is reassembled in input order.  Returns ``(results,
        replayed_ops)`` where each result is the worker's ``(route, ops,
        explored_box)`` tuple.

        The receive phase is supervised: *deadline* bounds the whole batch
        in wall-clock seconds, the config's heartbeat grace bounds any
        single worker's silence, and a dead process is detected without
        waiting for either.  On failure, **every** active worker is still
        drained (survivors' replies must not leak into the next batch),
        the failed workers are removed and reaped
        (:meth:`remove_workers`), and a :class:`WorkerFailure` aggregating
        *all* per-worker details -- index, journal cursor, classified kind
        -- is raised; the caller may then simply retry on the surviving
        (still in-sync) pool.
        """
        self._ensure_workers(len(net_names))
        head = self.journal.cursor
        count = min(len(self.workers), len(net_names))
        active = self.workers[:count]
        # Rotate so a campaign of small batches still cycles through every
        # worker: otherwise trailing workers would idle forever with frozen
        # cursors, pinning min_cursor() and defeating journal compaction.
        self.workers = self.workers[count:] + active
        stride = len(active)
        replayed = 0
        failures: List[FailureDetail] = []
        failed_workers: List[_PoolWorker] = []
        sent: List[Tuple[int, _PoolWorker]] = []
        # Workers that were active together share a cursor, so the common
        # case serialises one suffix once and ships the same bytes to all.
        payload_cache: Dict[int, Tuple[Optional[bytes], int]] = {}
        for slot, worker in enumerate(active):
            # suffix() honours the compaction base; nothing mutates the
            # grid between the head snapshot and these sends, so the
            # suffix past each worker's cursor ends exactly at `head`.
            frame, op_count = self._suffix_frame(worker.cursor, head, payload_cache)
            try:
                worker.conn.send((frame, list(net_names[slot::stride])))
            except (BrokenPipeError, OSError) as exc:
                failures.append(FailureDetail(
                    worker=worker.index, kind="crash", cursor=worker.cursor,
                    message=f"send to worker failed: {exc!r}",
                ))
                failed_workers.append(worker)
                continue
            worker.cursor = head
            # Counted at send time on the pool itself: a WorkerFailure
            # raised below must not lose ops that were actually shipped.
            self.total_replayed_ops += op_count
            replayed += op_count
            sent.append((slot, worker))
        deadline_at = time.monotonic() + deadline if deadline else None
        results: List[Optional[Tuple]] = [None] * len(net_names)
        for slot, worker in sent:
            outcome = await_worker_reply(
                worker.conn, worker.process, worker.index, worker.cursor,
                deadline_at, self.config.heartbeat_grace,
            )
            self.total_heartbeats += outcome.heartbeats
            if outcome.failure is not None:
                failures.append(outcome.failure)
                # A worker that *replied* with a classified compute error
                # is alive and in sync (it replayed the suffix before the
                # net failed) -- keep it for the retry.  Crashed, hung and
                # replay-failed workers are gone or out of sync: remove.
                if outcome.failure.kind != "compute":
                    failed_workers.append(worker)
                continue
            results[slot::stride] = outcome.payload
        if failures:
            self.remove_workers(failed_workers)
            raise WorkerFailure(failures, context="pool batch")
        return results, replayed

    def catch_up_all(self, deadline: Optional[float] = None) -> int:
        """Replay every worker up to the current journal head; return ops shipped.

        Run this before :meth:`MutationJournal.fold` / ``compact`` on the
        pool's journal: folding drops ops before the fold cursor, and a
        worker whose cursor still pointed below it could never be
        re-synchronised (its next ``suffix()`` would raise).  Supervised
        like :meth:`compute`: failed workers are removed and reaped, the
        survivors (all at the head afterwards) keep the pool alive, and a
        :class:`WorkerFailure` aggregating every detail is raised.
        """
        head = self.journal.cursor
        payload_cache: Dict[int, Tuple[Optional[bytes], int]] = {}
        pending: List[_PoolWorker] = []
        failures: List[FailureDetail] = []
        failed_workers: List[_PoolWorker] = []
        replayed = 0
        for worker in self.workers:
            if worker.cursor >= head:
                continue
            frame, op_count = self._suffix_frame(worker.cursor, head, payload_cache)
            # An empty net list makes this a pure catch-up round trip.
            try:
                worker.conn.send((frame, []))
            except (BrokenPipeError, OSError) as exc:
                failures.append(FailureDetail(
                    worker=worker.index, kind="crash", cursor=worker.cursor,
                    message=f"send to worker failed: {exc!r}",
                ))
                failed_workers.append(worker)
                continue
            worker.cursor = head
            self.total_replayed_ops += op_count
            replayed += op_count
            pending.append(worker)
        deadline_at = time.monotonic() + deadline if deadline else None
        for worker in pending:
            outcome = await_worker_reply(
                worker.conn, worker.process, worker.index, worker.cursor,
                deadline_at, self.config.heartbeat_grace,
            )
            self.total_heartbeats += outcome.heartbeats
            if outcome.failure is not None:
                failures.append(outcome.failure)
                failed_workers.append(worker)
        if failures:
            self.remove_workers(failed_workers)
            raise WorkerFailure(failures, context="pool catch-up")
        return replayed

    def close(self) -> int:
        """Shut every worker down (idempotent); return how many were killed.

        Cooperative shutdown first (the ``None`` message), then
        :func:`_shutdown_workers` joins with terminate/kill escalation so a
        hung worker cannot outlive the executor.
        """
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        killed = _shutdown_workers(self.workers)
        self.total_kills += killed
        self.workers = []
        return killed


def _compute_speculative(router, net: Net, engine) -> SpeculativeRoute:
    """Route *net* against the current grid state without mutating it."""
    if faults.ARMED:
        # These sites live here so every speculative backend -- thread,
        # per-batch fork, persistent pool -- exercises the same hang and
        # compute-error paths.  The serial oracle never calls this.  The
        # crash site only fires inside a subprocess: an ``os._exit`` on a
        # thread-backend hit would take the whole campaign process down.
        if multiprocessing.parent_process() is not None:
            faults.fire("worker.crash", net=net.name)
        faults.fire("worker.hang", net=net.name)
        faults.fire("compute.error", net=net.name)
    tracker = ExploredTracker(router.grid, getattr(engine, "node_stride", 1))
    core = getattr(engine, "core", None)
    if core is not None:
        core.on_result = tracker
    sink = RecordingSink(router.grid, net.name)
    try:
        route = router.compute_route(net, engine=engine, sink=sink)
    finally:
        if core is not None:
            core.on_result = None
    return SpeculativeRoute(route=route, ops=sink.ops, explored_box=tracker.box)


def make_batch_executor(
    router,
    parallelism: int = 1,
    batch_size: Optional[int] = None,
    backend: str = "serial",
    policy: str = "prefix",
    min_fork_batch: Optional[int] = None,
    margin_cells: Optional[int] = None,
    autotune: Optional[str] = None,
) -> Optional["BatchExecutor"]:
    """Build a router's executor from its constructor knobs.

    Batching engages when any knob leaves its default (``parallelism > 1``,
    an explicit ``batch_size``, a non-serial backend, or
    ``REPRO_AUTOTUNE=full``); otherwise ``None`` is returned and the router
    keeps its plain sequential loop.  ``min_fork_batch`` and
    ``margin_cells`` fall back to the ``REPRO_MIN_FORK_BATCH`` /
    ``REPRO_BATCH_MARGIN`` environment knobs so multi-core hosts can tune
    them without touching call sites.

    Self-tuning (:mod:`repro.sched.autotune`): *autotune* (arg >
    ``REPRO_AUTOTUNE`` env > ``off``) selects ``probe`` (run the one-shot
    hardware calibration and record the :class:`HardwareProfile` in
    ``stats.profile``) or ``full`` (probe + the per-iteration online
    controller).  ``backend="auto"`` resolves the starting backend -- and,
    when ``parallelism`` was left at 1, the worker count -- from the
    profile; it implies at least ``probe``.
    """
    mode = resolve_autotune_mode(autotune)
    if backend == "auto" and mode == "off":
        mode = "probe"  # auto resolution needs the profile
    profile: Optional[HardwareProfile] = None
    if mode != "off":
        profile = calibrate()
    if backend == "auto":
        if parallelism <= 1:
            parallelism = profile.cpu_count
        backend = recommend_backend(profile, parallelism)
        # Even when the profile says "serial" (1-core host), keep the
        # executor: the run still records the profile and, under ``full``,
        # the controller's decision log -- the hardware truth the bench
        # JSON wants.
        engaged = True
    else:
        engaged = (
            parallelism > 1 or batch_size is not None
            or backend != "serial" or mode == "full"
        )
    if not engaged:
        return None
    parallelism = max(1, parallelism)
    max_batch = batch_size if batch_size is not None else 4 * parallelism
    scheduler = BatchScheduler(
        router.grid,
        policy=policy,
        max_batch=max_batch,
        margin_cells=resolve_batch_margin(margin_cells),
    )
    resolved_min_fork = resolve_min_fork_batch(min_fork_batch)
    controller: Optional[AutotuneController] = None
    if mode == "full":
        controller = AutotuneController(
            profile,
            backend=backend,
            parallelism=parallelism,
            max_batch=max_batch,
            min_fork_batch=resolved_min_fork,
            margin_cells=scheduler.margin_cells,
        )
    executor = BatchExecutor(
        router,
        backend=backend,
        parallelism=parallelism,
        scheduler=scheduler,
        min_fork_batch=resolved_min_fork,
        autotune=controller,
    )
    if profile is not None:
        executor.stats.profile = profile.as_dict()
    return executor


class BatchExecutor:
    """Routes scheduler-planned batches for one router.

    Parameters
    ----------
    router:
        Any of the three routers; must expose ``grid``, ``route_net``,
        ``compute_route(net, engine=..., sink=...)`` and
        ``make_search_engine()``.
    backend:
        ``"serial"`` (deterministic default), ``"thread"``, ``"process"``
        (fork per batch) or ``"pool"`` (persistent journal-replicated
        workers: fork once, catch up by journal-suffix replay).
    parallelism:
        Worker count for the concurrent backends (also the default
        scheduler batch cap when *scheduler* is not supplied).
    scheduler:
        Optional pre-configured :class:`BatchScheduler`; by default an
        order-preserving prefix scheduler capped at ``4 * parallelism``
        nets per batch.
    min_fork_batch:
        Smallest batch worth forking for.  The per-batch ``process``
        backend routes smaller batches serially (fork setup would
        dominate); the ``pool`` backend applies it only to pool *creation*
        -- once forked, workers serve every parallel batch.
    pool_bootstrap:
        How pool workers obtain the parent's grid state: ``"fork"``,
        ``"snapshot"`` or ``"auto"`` (default: the ``REPRO_POOL_BOOTSTRAP``
        env knob, falling back to ``auto`` = fork when available).
    autotune:
        Optional :class:`~repro.sched.autotune.AutotuneController`.  When
        present the executor consults it once per :meth:`route_nets` round
        (backend + batch knobs for that iteration) and feeds it per-batch
        wall times; the degradation ladder widens to the full
        pool->process->thread->serial range so the controller may pick any
        tier -- but a supervisor demotion still narrows the allowed set,
        overriding the controller for the rest of the campaign.
    """

    def __init__(
        self,
        router,
        backend: str = "serial",
        parallelism: int = 1,
        scheduler: Optional[BatchScheduler] = None,
        min_fork_batch: int = DEFAULT_MIN_FORK_BATCH,
        pool_bootstrap: Optional[str] = None,
        supervisor: Optional[SupervisorConfig] = None,
        autotune: Optional[AutotuneController] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown batch backend {backend!r}; expected one of {BACKENDS}")
        self.router = router
        self.backend = backend
        self.parallelism = max(1, parallelism)
        self.scheduler = scheduler if scheduler is not None else BatchScheduler(
            router.grid, policy="prefix", max_batch=4 * self.parallelism
        )
        self.min_fork_batch = max(2, min_fork_batch)
        self.stats = ExecutorStats()
        # Supervision: deadlines/retries/backoff policy plus the graceful-
        # degradation ladder.  `backend` stays the *configured* tier;
        # `active_backend` is the current (possibly demoted) one.
        self.supervisor = (
            supervisor if supervisor is not None else SupervisorConfig.from_env()
        )
        self.autotune = autotune
        # With a controller the ladder spans every tier (the controller
        # may pick any backend at or below its recommendation); the
        # per-iteration override starts at the configured backend.
        self._ladder = LADDER if autotune is not None else degradation_ladder(backend)
        self._tier_index = 0
        self._backend_override: Optional[str] = backend if autotune is not None else None
        self._consecutive_failures = 0
        # Thread pools retired after a deadline timeout: their hung threads
        # cannot be killed, only abandoned (fresh pool + fresh engines) and
        # shut down without waiting at close.
        self._stale_thread_pools: List[ThreadPoolExecutor] = []
        # Influence reach: a committed vertex can change costs at most this
        # many cells away (color-pressure spread at the interaction radius).
        grid = router.grid
        self._influence_reach = grid.interaction_reach_cells(grid.interaction_radius())
        self._plane_size = grid.plane_size
        self._num_rows = grid.num_rows
        # Lazily built per-worker engines (thread backend).
        self._engine_queue: Optional[SimpleQueue] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        # Persistent worker pool (pool backend) and the journal the
        # executor attached for it (detached again when the pool closes).
        self._pool: Optional[PersistentWorkerPool] = None
        self._owned_journal = None
        self._pool_bootstrap = resolve_pool_bootstrap(pool_bootstrap)
        # Last-seen pool counters, so stats deltas survive any exit path.
        self._pool_seen: Dict[str, int] = {}
        self._fork_context = None
        if backend in ("process", "pool") or autotune is not None:
            # The controller may promote a thread/serial recommendation to
            # the forked tiers mid-campaign, so the context must exist.
            methods = multiprocessing.get_all_start_methods()
            self._fork_context = (
                multiprocessing.get_context("fork") if "fork" in methods else None
            )
        if backend != "serial" or autotune is not None:
            # Warm the native kernel in the parent before any worker
            # exists: threads share the loaded module outright, and forked
            # workers (per-batch or persistent pool) inherit the mapped
            # .so through fork -- no per-worker build attempt, no N
            # compilers racing on first use.  A no-op when the tier is
            # gated off or the extension cannot be built.
            get_native_kernel()

    # ------------------------------------------------------------------

    @property
    def active_backend(self) -> str:
        """The backend tier currently in use (after any ladder demotions).

        An autotune override applies only while the degradation ladder
        still allows that tier: a demotion narrows the allowed suffix, and
        an override outside it falls back to the demoted tier -- the
        supervisor always wins over the controller.
        """
        if self._backend_override is not None:
            if self._backend_override in self._ladder[self._tier_index:]:
                return self._backend_override
        return self._ladder[self._tier_index]

    def allowed_backends(self) -> Tuple[str, ...]:
        """The degradation-ladder suffix demotions have not yet removed."""
        return tuple(self._ladder[self._tier_index:])

    def close(self) -> None:
        """Release worker pools (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        for stale in self._stale_thread_pools:
            # Hung threads cannot be joined without blocking close (and,
            # under a real hang, forever); abandon them.  Tests that
            # inject thread-tier hangs use bounded sleeps so interpreter
            # exit still completes.
            stale.shutdown(wait=False)
        self._stale_thread_pools = []
        self._discard_pool()

    def route_nets(self, nets: Sequence[Net], solution: RoutingSolution) -> None:
        """Route *nets* batch by batch, adding every route to *solution*.

        The scheduler plans the batches; each batch is routed with the
        configured backend and committed in batch order, so the overall
        commit order is deterministic for a given plan.
        """
        nets = list(nets)
        if not nets:
            return
        grid = self.router.grid
        # Pre-intern every scheduled net so id assignment stays independent
        # of worker timing (ids never change results, but deterministic
        # internals make debugging sane).
        for net in nets:
            grid.net_id(net.name)
        if self.autotune is not None:
            decision = self.autotune.begin_iteration(
                len(nets), self.stats, self.allowed_backends()
            )
            self._apply_decision(decision)
            if decision.backend == "serial" and self.scheduler.policy == "prefix":
                # The controller chose the serial floor: prefix batches
                # concatenate back to the input order whatever the
                # partition, so window planning is pure overhead here --
                # route the queue directly as one serial batch (and feed
                # its wall time back so serial stays ranked).
                self.stats.batches += 1
                self.stats.nets_routed += len(nets)
                self.stats.largest_batch = max(self.stats.largest_batch, len(nets))
                started = time.perf_counter()
                self._run_batch_serial(nets, solution)
                self.autotune.observe_batch(
                    "serial", len(nets), time.perf_counter() - started
                )
                return
        plan_started = time.perf_counter()
        batches = self.scheduler.plan(nets)
        self.stats.phases.add("plan", time.perf_counter() - plan_started)
        for batch in batches:
            self.stats.batches += 1
            self.stats.nets_routed += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            started = time.perf_counter()
            used = self._run_batch_parallel(batch, solution)
            if used is None:
                self._run_batch_serial(batch, solution)
                used = "serial"
            if self.autotune is not None:
                self.autotune.observe_batch(
                    used, len(batch), time.perf_counter() - started
                )

    def _apply_decision(self, decision: Decision) -> None:
        """Adopt an autotune :class:`~repro.sched.autotune.Decision`.

        Backend choice and ``min_fork_batch`` are always results-neutral
        (every backend commits through the explored-region validation).
        The scheduler's partitioning knobs are adopted only under the
        order-preserving ``prefix`` policy: prefix batches concatenate
        back to the input order whatever the partition, while ``greedy``
        *permutes* the queue, so resizing its batches mid-campaign would
        silently change which permutation a run produces.
        """
        self._backend_override = decision.backend
        self.min_fork_batch = max(2, decision.min_fork_batch)
        if self.scheduler.policy == "prefix":
            self.scheduler.max_batch = decision.max_batch
            self.scheduler.margin_cells = decision.margin_cells
        self.stats.autotune_decisions += 1

    # ------------------------------------------------------------------

    def _run_batch_serial(self, batch: Sequence[Net], solution: RoutingSolution) -> None:
        started = time.perf_counter()
        for net in batch:
            solution.add_route(self.router.route_net(net))
        self.stats.phases.add("search", time.perf_counter() - started)

    def _run_batch_parallel(
        self, batch: Sequence[Net], solution: RoutingSolution
    ) -> Optional[str]:
        """Try the speculative backend on *batch*.

        Returns the backend name that actually computed the batch, or
        ``None`` to let the caller route it serially instead (the autotune
        controller's timing feed needs to know which tier each wall-clock
        measurement belongs to).

        Supervised: a failed attempt is retried up to
        ``supervisor.max_retries`` times with exponential backoff
        (:meth:`_compute_batch_with_retry`); once retries are exhausted the
        batch falls back to serial, and after ``supervisor.demote_after``
        *consecutive* exhausted batches the executor demotes itself down
        the degradation ladder (pool -> process -> thread -> serial) for
        the remainder of the campaign and re-attempts the batch at the
        lower tier.  Serial is the floor: always available, bit-identical
        by construction.  Every outcome is deterministic in *route terms*
        -- retry, fallback and demotion all recompute from the same
        authoritative parent grid state.
        """
        while True:
            backend = self.active_backend
            if backend == "serial" or len(batch) < 2:
                return None
            if backend == "process" and (
                self._fork_context is None or len(batch) < self.min_fork_batch
            ):
                return None
            if backend == "pool" and (
                self._pool is None and len(batch) < self.min_fork_batch
            ):
                # Don't pay the one-time worker start for a campaign of tiny
                # batches; once the pool exists it serves every parallel batch.
                # (Whether a pool is even possible -- fork availability,
                # worker_spec support -- is _ensure_pool's call.)
                return None
            # Pool batches spend their wall time in worker traffic (suffix
            # shipping + result receive): account them as ipc; in-process
            # backends (thread/process) are concurrent search.
            compute_phase = "ipc" if backend == "pool" else "search"
            compute_started = time.perf_counter()
            try:
                results = self._compute_batch_with_retry(backend, batch)
            except Exception:
                self.stats.phases.add(
                    compute_phase, time.perf_counter() - compute_started
                )
                self._consecutive_failures += 1
                if (
                    self._consecutive_failures >= self.supervisor.demote_after
                    and self._ladder.index(backend) + 1 < len(self._ladder)
                ):
                    self._demote()
                    continue  # re-attempt this batch at the lower tier
                return None
            self.stats.phases.add(compute_phase, time.perf_counter() - compute_started)
            if results is None:
                return None
            self._consecutive_failures = 0
            self.stats.parallel_batches += 1
            self._commit_batch(batch, results, solution)
            return backend

    def _compute_batch_with_retry(
        self, backend: str, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        """Run one batch on *backend* with classified, bounded retry.

        Retryable failures (crash/timeout/bootstrap/replay/compute) are
        retried after exponential backoff -- the pool's surgical worker
        removal means a retry runs on the surviving workers plus lazily
        started replacements.  Fatal (design-error) failures and exhausted
        retries re-raise to the ladder logic above.
        """
        attempt = 0
        while True:
            try:
                if backend == "thread":
                    return self._compute_batch_threaded(batch)
                if backend == "pool":
                    return self._compute_batch_pooled(batch)
                return self._compute_batch_forked(batch)
            except Exception as exc:
                self.stats.worker_errors += 1
                if isinstance(exc, WorkerFailure):
                    retryable = exc.retryable
                    self.stats.deadline_timeouts += sum(
                        1 for detail in exc.details if detail.kind == "timeout"
                    )
                else:
                    kind = classify_exception(exc)
                    retryable = kind != "fatal"
                    if kind == "timeout":
                        self.stats.deadline_timeouts += 1
                if not retryable or attempt >= self.supervisor.max_retries:
                    raise
                attempt += 1
                self.stats.retries += 1
                backoff = self.supervisor.backoff_seconds(attempt)
                if backoff > 0:
                    time.sleep(backoff)

    def _demote(self) -> None:
        """Step down one tier of the degradation ladder (permanently).

        The new floor sits one below the tier that actually failed --
        which, under an autotune override, may be below ``_tier_index``
        already (e.g. the controller chose ``thread`` while the ladder
        still allowed ``pool``: a thread failure demotes straight past it).
        The narrowed ladder suffix overrides any controller choice from
        here on (:attr:`active_backend` ignores overrides outside it).
        """
        leaving = self.active_backend
        self._tier_index = self._ladder.index(leaving) + 1
        self._consecutive_failures = 0
        self.stats.demotions += 1
        if leaving == "pool" or "pool" not in self._ladder[self._tier_index:]:
            self._discard_pool()

    # -- thread backend -----------------------------------------------------

    def _ensure_thread_workers(self) -> bool:
        if self._engine_queue is None:
            engines = []
            for _ in range(self.parallelism):
                engine = self.router.make_search_engine()
                if engine is None:
                    return False  # legacy engine: speculative routing unsupported
                engines.append(engine)
            queue: SimpleQueue = SimpleQueue()
            for engine in engines:
                queue.put(engine)
            self._engine_queue = queue
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.parallelism, thread_name_prefix="repro-sched"
            )
        return True

    def _compute_batch_threaded(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        if not self._ensure_thread_workers():
            return None
        queue = self._engine_queue

        def task(net: Net) -> SpeculativeRoute:
            engine = queue.get()
            try:
                return _compute_speculative(self.router, net, engine)
            finally:
                queue.put(engine)

        deadline = self.supervisor.deadline_seconds(len(batch))
        try:
            if deadline is None:
                return list(self._thread_pool.map(task, batch))
            return list(self._thread_pool.map(task, batch, timeout=deadline))
        except FuturesTimeout:
            self._retire_thread_pool()
            raise

    def _retire_thread_pool(self) -> None:
        """Abandon a timed-out thread pool (hung threads can't be killed).

        The hung threads still hold checked-out engines, so the engine
        queue is dropped too -- the next attempt builds a fresh pool and
        fresh engines.  Retired pools are shut down (without waiting) at
        :meth:`close`.
        """
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False)
            self._stale_thread_pools.append(self._thread_pool)
            self._thread_pool = None
        self._engine_queue = None

    # -- process (fork) backend ----------------------------------------------

    def _compute_batch_forked(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        if self.router.make_search_engine() is None:
            return None  # legacy engine: speculative routing unsupported
        global _FORK_TASK
        _FORK_TASK = (self.router, batch)
        try:
            workers = min(self.parallelism, len(batch))
            deadline = self.supervisor.deadline_seconds(len(batch))
            # map_async + timeout instead of map: a fork worker that dies
            # (SIGKILL, os._exit) never delivers its result, and a plain
            # map would wait on it forever.  On timeout the context
            # manager's terminate() reaps the whole per-batch pool.
            with self._fork_context.Pool(processes=workers) as pool:
                result = pool.map_async(_fork_worker, range(len(batch)))
                raw = result.get(deadline) if deadline is not None else result.get()
        finally:
            _FORK_TASK = None
        return [
            SpeculativeRoute(route=route, ops=ops, explored_box=box)
            for route, ops, box in raw
        ]

    # -- pool (persistent journal-replicated workers) backend ------------------

    def _ensure_pool(self) -> Optional[PersistentWorkerPool]:
        if self._pool is not None:
            return self._pool
        bootstrap = self._pool_bootstrap
        if bootstrap == "auto":
            bootstrap = "fork" if self._fork_context is not None else "snapshot"
        if bootstrap == "fork":
            if self._fork_context is None:
                return None
            context = self._fork_context
        else:
            if not hasattr(self.router, "worker_spec"):
                return None  # router cannot describe itself for a rebuild
            # Snapshot bootstrap inherits nothing, so any start method
            # works; prefer fork for its cheap process creation.
            context = (
                self._fork_context
                if self._fork_context is not None
                else multiprocessing.get_context()
            )
        if self.router.make_search_engine() is None:
            return None  # legacy engine: speculative routing unsupported
        grid = self.router.grid
        if grid.journal is None:
            # The journal must exist *before* the first worker: workers
            # re-sync by replaying everything recorded past their cursor.
            self._owned_journal = grid.attach_journal()
        self._pool = PersistentWorkerPool(
            context, self.router, self.parallelism, bootstrap=bootstrap,
            config=self.supervisor, fork_ok=self._fork_context is not None,
        )
        self._pool_seen = {}
        return self._pool

    #: Pool counter -> ExecutorStats counter (drained as deltas so every
    #: exit path -- success, classified failure, discard -- accounts once).
    _POOL_STAT_MAP = (
        ("total_forks", "pool_forks"),
        ("total_snapshot_bootstraps", "snapshot_bootstraps"),
        ("total_kills", "worker_kills"),
        ("total_replacements", "worker_replacements"),
        ("total_bootstrap_fallbacks", "bootstrap_fallbacks"),
        ("total_heartbeats", "heartbeats"),
        # Replayed ops are counted on the pool at send time (not via
        # compute()'s return value) so ops shipped before a WorkerFailure
        # are never lost, and drained as deltas so the discard + lazy
        # re-fork cycle never double-counts them.
        ("total_replayed_ops", "replayed_ops"),
        ("total_suffix_messages", "suffix_messages"),
        ("total_suffix_pickles", "suffix_pickles"),
        ("total_suffix_bytes", "suffix_bytes"),
        ("total_suffix_bytes_saved", "suffix_bytes_saved"),
        ("total_suffix_elisions", "suffix_elisions"),
    )

    def _drain_pool_stats(self) -> None:
        pool = self._pool
        if pool is None:
            return
        seen = self._pool_seen
        for pool_attr, stat_attr in self._POOL_STAT_MAP:
            value = getattr(pool, pool_attr, 0)
            delta = value - seen.get(pool_attr, 0)
            if delta:
                setattr(self.stats, stat_attr, getattr(self.stats, stat_attr) + delta)
                seen[pool_attr] = value

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._drain_pool_stats()
            self._pool = None
            self._pool_seen = {}
        if self._owned_journal is not None:
            # Only detach what we attached; a caller-provided journal keeps
            # recording (checkpoint/resume wants the full campaign log).
            if self.router.grid.journal is self._owned_journal:
                self.router.grid.detach_journal()
            self._owned_journal = None

    def sync_pool_cursors(self) -> None:
        """Catch every pool worker up to the journal head (checkpoint hook).

        ``route_with_checkpoint`` calls this before folding a live campaign
        journal: after it, no worker cursor lies below the head, so the
        fold's compaction cannot strand one.  A classified catch-up failure
        removes just the failed workers (the survivors are at the head, so
        the post-condition still holds); an unclassified failure discards
        the pool (the next parallel batch starts fresh workers from the
        authoritative parent state).
        """
        pool = self._pool
        if pool is None:
            return
        deadline = self.supervisor.deadline_seconds(max(1, len(pool.workers)))
        started = time.perf_counter()
        try:
            # Replayed-op accounting happens on the pool's own counters at
            # send time (drained below): the return value is informational.
            pool.catch_up_all(deadline=deadline)
        except WorkerFailure:
            self.stats.worker_errors += 1
            self._drain_pool_stats()
        except Exception:
            self.stats.worker_errors += 1
            self._discard_pool()
        else:
            self._drain_pool_stats()
        finally:
            self.stats.phases.add("ipc", time.perf_counter() - started)

    def _compute_batch_pooled(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        pool = self._ensure_pool()
        if pool is None:
            return None
        deadline = self.supervisor.deadline_seconds(len(batch))
        try:
            raw, _replayed = pool.compute(
                [net.name for net in batch], deadline=deadline
            )
        except WorkerFailure:
            # Classified failure: the pool already removed and reaped just
            # the failed workers; the survivors are in sync and keep the
            # pool alive for the retry.
            self._drain_pool_stats()
            raise
        except Exception:
            # Unclassified failure: trust nothing, drop the whole pool.
            # The next parallel batch re-forks from the (authoritative)
            # parent state.
            self._drain_pool_stats()
            self._discard_pool()
            raise
        self._drain_pool_stats()
        if self._owned_journal is not None:
            # The executor's own journal exists solely to feed the pool;
            # ops every worker has consumed can never be shipped again, so
            # drop them to bound a long campaign's memory.  (A
            # caller-attached journal is a campaign log -- never touched.)
            self._owned_journal.compact(pool.min_cursor())
        return [
            SpeculativeRoute(route=route, ops=ops, explored_box=box)
            for route, ops, box in raw
        ]

    # -- validation + commit --------------------------------------------------

    def _commit_batch(
        self,
        batch: Sequence[Net],
        results: Sequence[SpeculativeRoute],
        solution: RoutingSolution,
    ) -> None:
        grid = self.router.grid
        committed: List[CellWindow] = []
        started = time.perf_counter()
        fallback_seconds = 0.0
        for net, spec in zip(batch, results):
            if self._speculation_valid(spec, committed):
                self.stats.speculative_accepted += 1
                apply_route_ops(grid, spec.ops)
                route = spec.route
                influence = self._ops_influence_box(spec.ops)
            else:
                self.stats.speculative_fallbacks += 1
                fallback_started = time.perf_counter()
                route = self.router.route_net(net)
                fallback_seconds += time.perf_counter() - fallback_started
                influence = self._vertices_influence_box(route.vertices)
            solution.add_route(route)
            if influence is not None:
                committed.append(influence)
        # Live-reroute fallbacks are search work; the remainder of the wall
        # time (validation + op application) is the commit phase proper.
        self.stats.phases.add("search", fallback_seconds)
        self.stats.phases.add(
            "commit", time.perf_counter() - started - fallback_seconds
        )

    def _speculation_valid(
        self, spec: SpeculativeRoute, committed: Sequence[CellWindow]
    ) -> bool:
        """Return ``True`` when the snapshot route is provably still exact.

        Sound acceptance test: the searches read mutable state only at
        labelled vertices, and earlier commits influence only their own
        influence boxes -- disjointness means the worker saw exactly the
        state a live (sequential) computation would have seen.
        """
        if spec.explored_box is None:
            # No search ran: the result depends only on immutable state
            # (pin access over static blockages) unless ops were recorded.
            return not spec.ops
        if not committed:
            return True
        box = spec.explored_box
        return not any(windows_overlap(box, other) for other in committed)

    def _ops_influence_box(self, ops: Sequence[CommitOp]) -> Optional[CellWindow]:
        # Journal ops address vertices by flat index (op[2]); decode the
        # planar cell in place of building GridPoints.
        rows = self._num_rows
        plane = self._plane_size
        return self._influence_box(divmod(op[2] % plane, rows) for op in ops)

    def _vertices_influence_box(self, vertices) -> Optional[CellWindow]:
        return self._influence_box((vertex.col, vertex.row) for vertex in vertices)

    def _influence_box(self, cells) -> Optional[CellWindow]:
        """Return the planar box the given commits can influence, expanded
        by the interaction reach (color pressure spreads that far)."""
        col_lo = row_lo = None
        col_hi = row_hi = None
        for col, row in cells:
            if col_lo is None:
                col_lo = col_hi = col
                row_lo = row_hi = row
                continue
            if col < col_lo:
                col_lo = col
            elif col > col_hi:
                col_hi = col
            if row < row_lo:
                row_lo = row
            elif row > row_hi:
                row_hi = row
        if col_lo is None:
            return None
        reach = self._influence_reach
        return (col_lo - reach, row_lo - reach, col_hi + reach, row_hi + reach)
