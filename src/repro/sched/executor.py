"""Batch execution of disjoint net batches over a shared routing grid.

The executor routes the batches a :class:`~repro.sched.batches.BatchScheduler`
plans, through one of three backends:

``"serial"`` (default, the parity oracle)
    Routes every batch member with the router's own ``route_net`` --
    immediate grid commits, identical call sequence to the sequential loop.
    With the scheduler's order-preserving ``prefix`` policy this *is* the
    sequential loop, so results are bit-identical by construction.

``"thread"`` / ``"process"`` (speculative snapshot routing)
    All nets of a batch are routed concurrently against the grid state at
    batch start ("the snapshot"): workers call the router's
    ``compute_route`` with a :class:`~repro.sched.commit.RecordingSink`
    (reads only, commits recorded) and a per-worker search engine, so the
    epoch-stamped label buffers of concurrent searches never collide.  The
    thread backend shares the live buffers under the GIL; the process
    backend forks per batch, giving each worker a copy-on-write snapshot
    for free (fork keeps the batch state exact with no serialisation).

    Commits are then applied **serially in batch order** with a speculative
    validation step: a snapshot-computed route is exact iff the search
    never read a vertex whose state an earlier batch-mate's commit could
    have changed.  Every read of mutable grid state happens at a vertex the
    search labelled (:meth:`CoreResult.labelled_planar_box`), and a commit
    influences at most its own vertices plus the interaction reach around
    them (color pressure), so the executor accepts the speculative route
    when the explored box is disjoint from every committed influence box --
    and otherwise **falls back to routing the net live**, which reproduces
    the sequential result exactly.  Accepted logs replay through the normal
    grid hooks, so the incremental DRC/conflict checkers see the same delta
    stream either way.

Determinism caveat shared by both speculative backends: deferring a net's
own mid-route color commits is bit-neutral only because pressure values are
sums of ``conflict_cost`` increments (exact in IEEE-754 for the default
rule values); the differential suite in ``tests/test_batch_sched.py``
asserts the end-to-end guarantee per backend.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Dict, List, Optional, Sequence, Tuple

from repro.design import Net
from repro.grid import RoutingSolution
from repro.sched.batches import BatchScheduler, CellWindow, windows_overlap
from repro.sched.commit import CommitOp, RecordingSink, apply_route_ops

#: Backends accepted by :class:`BatchExecutor`.
BACKENDS = ("serial", "thread", "process")


@dataclass
class ExecutorStats:
    """Counters describing one or more :meth:`BatchExecutor.route_nets` calls."""

    nets_routed: int = 0
    batches: int = 0
    parallel_batches: int = 0
    largest_batch: int = 0
    speculative_accepted: int = 0
    speculative_fallbacks: int = 0
    worker_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict (benchmark JSON friendly)."""
        return {
            "nets_routed": self.nets_routed,
            "batches": self.batches,
            "parallel_batches": self.parallel_batches,
            "largest_batch": self.largest_batch,
            "speculative_accepted": self.speculative_accepted,
            "speculative_fallbacks": self.speculative_fallbacks,
            "worker_errors": self.worker_errors,
        }


class ExploredTracker:
    """Accumulates the planar bounding box of every vertex a net's searches
    labelled, via :attr:`SearchCore.on_result`."""

    __slots__ = ("plane_size", "num_rows", "node_stride", "box")

    def __init__(self, grid, node_stride: int = 1) -> None:
        self.plane_size = grid.plane_size
        self.num_rows = grid.num_rows
        self.node_stride = node_stride
        self.box: Optional[CellWindow] = None

    def __call__(self, result) -> None:
        box = result.labelled_planar_box(self.plane_size, self.num_rows, self.node_stride)
        if box is None:
            return
        if self.box is None:
            self.box = box
        else:
            mine = self.box
            self.box = (
                min(mine[0], box[0]),
                min(mine[1], box[1]),
                max(mine[2], box[2]),
                max(mine[3], box[3]),
            )


@dataclass
class SpeculativeRoute:
    """One worker's snapshot-computed result for a net."""

    route: object
    ops: List[CommitOp]
    explored_box: Optional[CellWindow]


# -- fork-backend plumbing ---------------------------------------------------
#
# The fork backend inherits the parent state through ``fork`` itself: the
# task tuple is published in a module global immediately before the pool is
# created, so the children are born holding the exact batch snapshot and
# only the (small) results travel back through pickling.

_FORK_TASK: Optional[Tuple[object, Sequence[Net]]] = None
_FORK_ENGINE: Optional[object] = None


def _fork_worker(index: int) -> Tuple[object, List[CommitOp], Optional[CellWindow]]:
    global _FORK_ENGINE
    router, nets = _FORK_TASK
    if _FORK_ENGINE is None:
        _FORK_ENGINE = router.make_search_engine()
    spec = _compute_speculative(router, nets[index], _FORK_ENGINE)
    return (spec.route, spec.ops, spec.explored_box)


def _compute_speculative(router, net: Net, engine) -> SpeculativeRoute:
    """Route *net* against the current grid state without mutating it."""
    tracker = ExploredTracker(router.grid, getattr(engine, "node_stride", 1))
    core = getattr(engine, "core", None)
    if core is not None:
        core.on_result = tracker
    sink = RecordingSink()
    try:
        route = router.compute_route(net, engine=engine, sink=sink)
    finally:
        if core is not None:
            core.on_result = None
    return SpeculativeRoute(route=route, ops=sink.ops, explored_box=tracker.box)


def make_batch_executor(
    router,
    parallelism: int = 1,
    batch_size: Optional[int] = None,
    backend: str = "serial",
    policy: str = "prefix",
) -> Optional["BatchExecutor"]:
    """Build a router's executor from its constructor knobs.

    Batching engages when any knob leaves its default (``parallelism > 1``,
    an explicit ``batch_size``, or a non-serial backend); otherwise ``None``
    is returned and the router keeps its plain sequential loop.
    """
    if parallelism <= 1 and batch_size is None and backend == "serial":
        return None
    parallelism = max(1, parallelism)
    max_batch = batch_size if batch_size is not None else 4 * parallelism
    scheduler = BatchScheduler(router.grid, policy=policy, max_batch=max_batch)
    return BatchExecutor(
        router, backend=backend, parallelism=parallelism, scheduler=scheduler
    )


class BatchExecutor:
    """Routes scheduler-planned batches for one router.

    Parameters
    ----------
    router:
        Any of the three routers; must expose ``grid``, ``route_net``,
        ``compute_route(net, engine=..., sink=...)`` and
        ``make_search_engine()``.
    backend:
        ``"serial"`` (deterministic default), ``"thread"`` or ``"process"``.
    parallelism:
        Worker count for the concurrent backends (also the default
        scheduler batch cap when *scheduler* is not supplied).
    scheduler:
        Optional pre-configured :class:`BatchScheduler`; by default an
        order-preserving prefix scheduler capped at ``4 * parallelism``
        nets per batch.
    min_fork_batch:
        Smallest batch worth forking a process pool for; smaller batches
        route serially (fork setup would dominate).
    """

    def __init__(
        self,
        router,
        backend: str = "serial",
        parallelism: int = 1,
        scheduler: Optional[BatchScheduler] = None,
        min_fork_batch: int = 3,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown batch backend {backend!r}; expected one of {BACKENDS}")
        self.router = router
        self.backend = backend
        self.parallelism = max(1, parallelism)
        self.scheduler = scheduler if scheduler is not None else BatchScheduler(
            router.grid, policy="prefix", max_batch=4 * self.parallelism
        )
        self.min_fork_batch = max(2, min_fork_batch)
        self.stats = ExecutorStats()
        # Influence reach: a committed vertex can change costs at most this
        # many cells away (color-pressure spread at the interaction radius).
        grid = router.grid
        self._influence_reach = grid.interaction_reach_cells(grid.interaction_radius())
        # Lazily built per-worker engines (thread backend).
        self._engine_queue: Optional[SimpleQueue] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._fork_context = None
        if backend == "process":
            methods = multiprocessing.get_all_start_methods()
            self._fork_context = (
                multiprocessing.get_context("fork") if "fork" in methods else None
            )

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release worker pools (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None

    def route_nets(self, nets: Sequence[Net], solution: RoutingSolution) -> None:
        """Route *nets* batch by batch, adding every route to *solution*.

        The scheduler plans the batches; each batch is routed with the
        configured backend and committed in batch order, so the overall
        commit order is deterministic for a given plan.
        """
        nets = list(nets)
        if not nets:
            return
        grid = self.router.grid
        # Pre-intern every scheduled net so id assignment stays independent
        # of worker timing (ids never change results, but deterministic
        # internals make debugging sane).
        for net in nets:
            grid.net_id(net.name)
        for batch in self.scheduler.plan(nets):
            self.stats.batches += 1
            self.stats.nets_routed += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            if not self._run_batch_parallel(batch, solution):
                self._run_batch_serial(batch, solution)

    # ------------------------------------------------------------------

    def _run_batch_serial(self, batch: Sequence[Net], solution: RoutingSolution) -> None:
        for net in batch:
            solution.add_route(self.router.route_net(net))

    def _run_batch_parallel(self, batch: Sequence[Net], solution: RoutingSolution) -> bool:
        """Try the speculative backend on *batch*; return ``False`` to let
        the caller route it serially instead."""
        if self.backend == "serial" or len(batch) < 2:
            return False
        if self.backend == "process" and (
            self._fork_context is None or len(batch) < self.min_fork_batch
        ):
            return False
        try:
            if self.backend == "thread":
                results = self._compute_batch_threaded(batch)
            else:
                results = self._compute_batch_forked(batch)
        except Exception:
            self.stats.worker_errors += 1
            return False
        if results is None:
            return False
        self.stats.parallel_batches += 1
        self._commit_batch(batch, results, solution)
        return True

    # -- thread backend -----------------------------------------------------

    def _ensure_thread_workers(self) -> bool:
        if self._engine_queue is None:
            engines = []
            for _ in range(self.parallelism):
                engine = self.router.make_search_engine()
                if engine is None:
                    return False  # legacy engine: speculative routing unsupported
                engines.append(engine)
            queue: SimpleQueue = SimpleQueue()
            for engine in engines:
                queue.put(engine)
            self._engine_queue = queue
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.parallelism, thread_name_prefix="repro-sched"
            )
        return True

    def _compute_batch_threaded(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        if not self._ensure_thread_workers():
            return None
        queue = self._engine_queue

        def task(net: Net) -> SpeculativeRoute:
            engine = queue.get()
            try:
                return _compute_speculative(self.router, net, engine)
            finally:
                queue.put(engine)

        return list(self._thread_pool.map(task, batch))

    # -- process (fork) backend ----------------------------------------------

    def _compute_batch_forked(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        if self.router.make_search_engine() is None:
            return None  # legacy engine: speculative routing unsupported
        global _FORK_TASK
        _FORK_TASK = (self.router, batch)
        try:
            workers = min(self.parallelism, len(batch))
            with self._fork_context.Pool(processes=workers) as pool:
                raw = pool.map(_fork_worker, range(len(batch)))
        finally:
            _FORK_TASK = None
        return [
            SpeculativeRoute(route=route, ops=ops, explored_box=box)
            for route, ops, box in raw
        ]

    # -- validation + commit --------------------------------------------------

    def _commit_batch(
        self,
        batch: Sequence[Net],
        results: Sequence[SpeculativeRoute],
        solution: RoutingSolution,
    ) -> None:
        grid = self.router.grid
        committed: List[CellWindow] = []
        for net, spec in zip(batch, results):
            if self._speculation_valid(spec, committed):
                self.stats.speculative_accepted += 1
                apply_route_ops(grid, net.name, spec.ops)
                route = spec.route
                influence = self._ops_influence_box(spec.ops)
            else:
                self.stats.speculative_fallbacks += 1
                route = self.router.route_net(net)
                influence = self._vertices_influence_box(route.vertices)
            solution.add_route(route)
            if influence is not None:
                committed.append(influence)

    def _speculation_valid(
        self, spec: SpeculativeRoute, committed: Sequence[CellWindow]
    ) -> bool:
        """Return ``True`` when the snapshot route is provably still exact.

        Sound acceptance test: the searches read mutable state only at
        labelled vertices, and earlier commits influence only their own
        influence boxes -- disjointness means the worker saw exactly the
        state a live (sequential) computation would have seen.
        """
        if spec.explored_box is None:
            # No search ran: the result depends only on immutable state
            # (pin access over static blockages) unless ops were recorded.
            return not spec.ops
        if not committed:
            return True
        box = spec.explored_box
        return not any(windows_overlap(box, other) for other in committed)

    def _ops_influence_box(self, ops: Sequence[CommitOp]) -> Optional[CellWindow]:
        return self._influence_box(op[1] for op in ops)

    def _vertices_influence_box(self, vertices) -> Optional[CellWindow]:
        return self._influence_box(vertices)

    def _influence_box(self, vertices) -> Optional[CellWindow]:
        """Return the planar box the given commits can influence, expanded
        by the interaction reach (color pressure spreads that far)."""
        col_lo = row_lo = None
        col_hi = row_hi = None
        for vertex in vertices:
            col, row = vertex.col, vertex.row
            if col_lo is None:
                col_lo = col_hi = col
                row_lo = row_hi = row
                continue
            if col < col_lo:
                col_lo = col
            elif col > col_hi:
                col_hi = col
            if row < row_lo:
                row_lo = row
            elif row > row_hi:
                row_hi = row
        if col_lo is None:
            return None
        reach = self._influence_reach
        return (col_lo - reach, row_lo - reach, col_hi + reach, row_hi + reach)
