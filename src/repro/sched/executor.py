"""Batch execution of disjoint net batches over a shared routing grid.

The executor routes the batches a :class:`~repro.sched.batches.BatchScheduler`
plans, through one of three backends:

``"serial"`` (default, the parity oracle)
    Routes every batch member with the router's own ``route_net`` --
    immediate grid commits, identical call sequence to the sequential loop.
    With the scheduler's order-preserving ``prefix`` policy this *is* the
    sequential loop, so results are bit-identical by construction.

``"thread"`` / ``"process"`` / ``"pool"`` (speculative snapshot routing)
    All nets of a batch are routed concurrently against the grid state at
    batch start ("the snapshot"): workers call the router's
    ``compute_route`` with a :class:`~repro.sched.commit.RecordingSink`
    (reads only, commits recorded) and a per-worker search engine, so the
    epoch-stamped label buffers of concurrent searches never collide.  The
    thread backend shares the live buffers under the GIL; the process
    backend forks per batch, giving each worker a copy-on-write snapshot
    for free (fork keeps the batch state exact with no serialisation).

    The ``pool`` backend keeps **persistent journal-replicated workers**:
    processes fork *once* (attaching a :class:`repro.journal
    .MutationJournal` to the grid first, so every later mutation is
    logged), and between batches each worker catches up by replaying only
    the journal suffix past its cursor through ``RoutingGrid.apply_op`` --
    no re-fork, no snapshot serialisation.  Because replay is
    bit-identical (the journal replay guarantee), a caught-up worker's
    grid is byte-for-byte the parent's, and the same explored-region
    validation + live-reroute fallback applies unchanged.

    Commits are then applied **serially in batch order** with a speculative
    validation step: a snapshot-computed route is exact iff the search
    never read a vertex whose state an earlier batch-mate's commit could
    have changed.  Every read of mutable grid state happens at a vertex the
    search labelled (:meth:`CoreResult.labelled_planar_box`), and a commit
    influences at most its own vertices plus the interaction reach around
    them (color pressure), so the executor accepts the speculative route
    when the explored box is disjoint from every committed influence box --
    and otherwise **falls back to routing the net live**, which reproduces
    the sequential result exactly.  Accepted logs replay through the normal
    grid hooks, so the incremental DRC/conflict checkers see the same delta
    stream either way.

Determinism caveat shared by both speculative backends: deferring a net's
own mid-route color commits is bit-neutral only because pressure values are
sums of ``conflict_cost`` increments (exact in IEEE-754 for the default
rule values); the differential suite in ``tests/test_batch_sched.py``
asserts the end-to-end guarantee per backend.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accel import get_native_kernel
from repro.design import Net
from repro.grid import RoutingSolution
from repro.sched.batches import BatchScheduler, CellWindow, windows_overlap
from repro.sched.commit import CommitOp, RecordingSink, apply_route_ops
from repro.utils.env import env_int

#: Backends accepted by :class:`BatchExecutor`.
BACKENDS = ("serial", "thread", "process", "pool")

#: Environment knobs (overridden by explicit arguments): the smallest batch
#: worth forking for, and the scheduler's extra window margin in cells.
MIN_FORK_BATCH_ENV = "REPRO_MIN_FORK_BATCH"
BATCH_MARGIN_ENV = "REPRO_BATCH_MARGIN"

#: Built-in defaults behind the env knobs.
DEFAULT_MIN_FORK_BATCH = 3
DEFAULT_BATCH_MARGIN = 0


def resolve_min_fork_batch(explicit: Optional[int] = None) -> int:
    """Return the effective ``min_fork_batch`` knob (arg > env > default)."""
    if explicit is not None:
        return explicit
    return env_int(MIN_FORK_BATCH_ENV, DEFAULT_MIN_FORK_BATCH)


def resolve_batch_margin(explicit: Optional[int] = None) -> int:
    """Return the effective scheduler window margin in cells (arg > env > default)."""
    if explicit is not None:
        return explicit
    return env_int(BATCH_MARGIN_ENV, DEFAULT_BATCH_MARGIN)


@dataclass
class ExecutorStats:
    """Counters describing one or more :meth:`BatchExecutor.route_nets` calls."""

    nets_routed: int = 0
    batches: int = 0
    parallel_batches: int = 0
    largest_batch: int = 0
    speculative_accepted: int = 0
    speculative_fallbacks: int = 0
    worker_errors: int = 0
    #: Processes forked over the executor's lifetime (pool backend: forked
    #: once per pool creation; the whole point is that this stays small).
    pool_forks: int = 0
    #: Journal ops shipped to pool workers as catch-up suffixes.
    replayed_ops: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict (benchmark JSON friendly)."""
        return {
            "nets_routed": self.nets_routed,
            "batches": self.batches,
            "parallel_batches": self.parallel_batches,
            "largest_batch": self.largest_batch,
            "speculative_accepted": self.speculative_accepted,
            "speculative_fallbacks": self.speculative_fallbacks,
            "worker_errors": self.worker_errors,
            "pool_forks": self.pool_forks,
            "replayed_ops": self.replayed_ops,
        }


class ExploredTracker:
    """Accumulates the planar bounding box of every vertex a net's searches
    labelled, via :attr:`SearchCore.on_result`."""

    __slots__ = ("plane_size", "num_rows", "node_stride", "box")

    def __init__(self, grid, node_stride: int = 1) -> None:
        self.plane_size = grid.plane_size
        self.num_rows = grid.num_rows
        self.node_stride = node_stride
        self.box: Optional[CellWindow] = None

    def __call__(self, result) -> None:
        box = result.labelled_planar_box(self.plane_size, self.num_rows, self.node_stride)
        if box is None:
            return
        if self.box is None:
            self.box = box
        else:
            mine = self.box
            self.box = (
                min(mine[0], box[0]),
                min(mine[1], box[1]),
                max(mine[2], box[2]),
                max(mine[3], box[3]),
            )


@dataclass
class SpeculativeRoute:
    """One worker's snapshot-computed result for a net."""

    route: object
    ops: List[CommitOp]
    explored_box: Optional[CellWindow]


# -- fork-backend plumbing ---------------------------------------------------
#
# The fork backend inherits the parent state through ``fork`` itself: the
# task tuple is published in a module global immediately before the pool is
# created, so the children are born holding the exact batch snapshot and
# only the (small) results travel back through pickling.

_FORK_TASK: Optional[Tuple[object, Sequence[Net]]] = None
_FORK_ENGINE: Optional[object] = None


def _fork_worker(index: int) -> Tuple[object, List[CommitOp], Optional[CellWindow]]:
    global _FORK_ENGINE
    router, nets = _FORK_TASK
    if _FORK_ENGINE is None:
        _FORK_ENGINE = router.make_search_engine()
    spec = _compute_speculative(router, nets[index], _FORK_ENGINE)
    return (spec.route, spec.ops, spec.explored_box)


# -- pool-backend plumbing ---------------------------------------------------
#
# Persistent journal-replicated workers: each process forks once holding the
# parent's grid state at fork time, then re-synchronises before every batch
# by replaying the parent's journal suffix through the grid's apply_op choke
# point -- bit-identical to the parent by the journal replay guarantee.  The
# router is published in a module global immediately before the fork (same
# trick as the per-batch fork backend); afterwards only small messages --
# (journal suffix, net names) down, (route, ops, explored box) up -- cross
# the pipe.

_POOL_ROUTER: Optional[object] = None


def _pool_worker_main(conn) -> None:
    from repro.journal import replay_ops

    router = _POOL_ROUTER
    grid = router.grid
    # The forked journal copy would only duplicate what the parent already
    # holds; detach it so suffix replay is not re-recorded in the child.
    grid.detach_journal()
    # Likewise the forked incremental-checker listeners: nobody ever drains
    # them in a worker, so their dirty-set bookkeeping per replayed op
    # would be pure waste (and unbounded memory).
    for listener in list(grid._delta_listeners):
        grid.remove_delta_listener(listener)
    engine = router.make_search_engine()
    design = router.design
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                break
            suffix_payload, net_names = message
            try:
                # The suffix arrives pre-pickled: the parent serialises
                # each distinct catch-up suffix once, not once per worker.
                replay_ops(grid, pickle.loads(suffix_payload))
                payload = []
                for name in net_names:
                    spec = _compute_speculative(router, design.net_by_name(name), engine)
                    payload.append((spec.route, spec.ops, spec.explored_box))
                conn.send(("ok", payload))
            except Exception as exc:  # surfaced to the parent as a worker error
                conn.send(("error", repr(exc)))
    finally:
        conn.close()


class _PoolWorker:
    """One persistent worker: its process, pipe, and journal cursor."""

    __slots__ = ("process", "conn", "cursor")

    def __init__(self, process, conn, cursor: int) -> None:
        self.process = process
        self.conn = conn
        self.cursor = cursor


class PersistentWorkerPool:
    """A set of forked worker processes kept in sync by journal replay.

    Workers inherit the parent's full state through ``fork`` exactly once
    each -- **lazily**, as batches actually demand them, so a campaign
    whose batches never grow past two nets only ever forks two workers.  A
    late-forked worker needs no catch-up: it is born holding the parent's
    current state, with its cursor set to the journal head at fork time.
    The parent tracks one journal cursor per worker and, before assigning
    a batch slice, ships the suffix of ops the worker has not yet seen.
    Only workers that participate in a batch catch up -- idle workers
    simply accumulate a longer suffix for next time.
    """

    def __init__(self, context, router, size: int) -> None:
        if router.grid.journal is None:
            raise RuntimeError("pool workers require a journal attached to the grid")
        self.context = context
        self.router = router
        self.size = max(1, size)
        self.journal = router.grid.journal
        self.workers: List[_PoolWorker] = []
        #: Processes forked over this pool's lifetime (stats accounting).
        self.total_forks = 0

    def __len__(self) -> int:
        return len(self.workers)

    def min_cursor(self) -> int:
        """Return the oldest journal cursor any worker still needs.

        Ops before it can never be shipped again: existing workers are
        past them, and future workers fork from the live parent (needing
        no ops at all).  With no workers yet, that is the journal head.
        """
        if not self.workers:
            return self.journal.cursor
        return min(worker.cursor for worker in self.workers)

    def _ensure_workers(self, needed: int) -> None:
        """Fork workers up to ``min(needed, size)``, one at a time.

        A failed fork leaves the already-started workers registered in
        :attr:`workers`, so :meth:`close` (via the caller's pool discard)
        reaps them -- no orphaned processes or pipes on partial failure.
        """
        target = min(needed, self.size)
        global _POOL_ROUTER
        while len(self.workers) < target:
            parent_conn, child_conn = self.context.Pipe()
            _POOL_ROUTER = self.router
            try:
                process = self.context.Process(
                    target=_pool_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
            except Exception:
                parent_conn.close()
                child_conn.close()
                raise
            finally:
                _POOL_ROUTER = None
            child_conn.close()
            # Born in sync: the child holds the parent's state as of now.
            self.workers.append(_PoolWorker(process, parent_conn, self.journal.cursor))
            self.total_forks += 1

    def compute(self, net_names: Sequence[str]) -> Tuple[List[Tuple], int]:
        """Compute speculative routes for *net_names* across the workers.

        Nets are dealt round-robin over the workers actually needed; the
        result list is reassembled in input order.  Returns ``(results,
        replayed_ops)`` where each result is the worker's ``(route, ops,
        explored_box)`` tuple.  Raises on any worker error -- the caller
        must then discard the pool (a worker that failed mid-replay can be
        out of sync; a fresh fork re-synchronises by construction).
        """
        self._ensure_workers(len(net_names))
        head = self.journal.cursor
        count = min(len(self.workers), len(net_names))
        active = self.workers[:count]
        # Rotate so a campaign of small batches still cycles through every
        # worker: otherwise trailing workers would idle forever with frozen
        # cursors, pinning min_cursor() and defeating journal compaction.
        self.workers = self.workers[count:] + active
        stride = len(active)
        replayed = 0
        # Workers that were active together share a cursor, so the common
        # case serialises one suffix once and ships the same bytes to all.
        payload_cache: Dict[int, Tuple[bytes, int]] = {}
        for slot, worker in enumerate(active):
            cached = payload_cache.get(worker.cursor)
            if cached is None:
                # suffix() honours the compaction base; nothing mutates the
                # grid between the head snapshot and these sends, so the
                # suffix past each worker's cursor ends exactly at `head`.
                suffix = self.journal.suffix(worker.cursor)
                cached = (pickle.dumps(suffix), len(suffix))
                payload_cache[worker.cursor] = cached
            worker.conn.send((cached[0], list(net_names[slot::stride])))
            worker.cursor = head
            replayed += cached[1]
        results: List[Optional[Tuple]] = [None] * len(net_names)
        failure: Optional[str] = None
        for slot, worker in enumerate(active):
            try:
                status, payload = worker.conn.recv()
            except EOFError:
                status, payload = "error", "worker pipe closed unexpectedly"
            if status != "ok":
                failure = failure or str(payload)
                continue
            results[slot::stride] = payload
        if failure is not None:
            raise RuntimeError(f"pool worker failed: {failure}")
        return results, replayed

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - hung worker safety net
                worker.process.terminate()
            worker.conn.close()
        self.workers = []


def _compute_speculative(router, net: Net, engine) -> SpeculativeRoute:
    """Route *net* against the current grid state without mutating it."""
    tracker = ExploredTracker(router.grid, getattr(engine, "node_stride", 1))
    core = getattr(engine, "core", None)
    if core is not None:
        core.on_result = tracker
    sink = RecordingSink(router.grid, net.name)
    try:
        route = router.compute_route(net, engine=engine, sink=sink)
    finally:
        if core is not None:
            core.on_result = None
    return SpeculativeRoute(route=route, ops=sink.ops, explored_box=tracker.box)


def make_batch_executor(
    router,
    parallelism: int = 1,
    batch_size: Optional[int] = None,
    backend: str = "serial",
    policy: str = "prefix",
    min_fork_batch: Optional[int] = None,
    margin_cells: Optional[int] = None,
) -> Optional["BatchExecutor"]:
    """Build a router's executor from its constructor knobs.

    Batching engages when any knob leaves its default (``parallelism > 1``,
    an explicit ``batch_size``, or a non-serial backend); otherwise ``None``
    is returned and the router keeps its plain sequential loop.
    ``min_fork_batch`` and ``margin_cells`` fall back to the
    ``REPRO_MIN_FORK_BATCH`` / ``REPRO_BATCH_MARGIN`` environment knobs so
    multi-core hosts can tune them without touching call sites.
    """
    if parallelism <= 1 and batch_size is None and backend == "serial":
        return None
    parallelism = max(1, parallelism)
    max_batch = batch_size if batch_size is not None else 4 * parallelism
    scheduler = BatchScheduler(
        router.grid,
        policy=policy,
        max_batch=max_batch,
        margin_cells=resolve_batch_margin(margin_cells),
    )
    return BatchExecutor(
        router,
        backend=backend,
        parallelism=parallelism,
        scheduler=scheduler,
        min_fork_batch=resolve_min_fork_batch(min_fork_batch),
    )


class BatchExecutor:
    """Routes scheduler-planned batches for one router.

    Parameters
    ----------
    router:
        Any of the three routers; must expose ``grid``, ``route_net``,
        ``compute_route(net, engine=..., sink=...)`` and
        ``make_search_engine()``.
    backend:
        ``"serial"`` (deterministic default), ``"thread"``, ``"process"``
        (fork per batch) or ``"pool"`` (persistent journal-replicated
        workers: fork once, catch up by journal-suffix replay).
    parallelism:
        Worker count for the concurrent backends (also the default
        scheduler batch cap when *scheduler* is not supplied).
    scheduler:
        Optional pre-configured :class:`BatchScheduler`; by default an
        order-preserving prefix scheduler capped at ``4 * parallelism``
        nets per batch.
    min_fork_batch:
        Smallest batch worth forking for.  The per-batch ``process``
        backend routes smaller batches serially (fork setup would
        dominate); the ``pool`` backend applies it only to pool *creation*
        -- once forked, workers serve every parallel batch.
    """

    def __init__(
        self,
        router,
        backend: str = "serial",
        parallelism: int = 1,
        scheduler: Optional[BatchScheduler] = None,
        min_fork_batch: int = DEFAULT_MIN_FORK_BATCH,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown batch backend {backend!r}; expected one of {BACKENDS}")
        self.router = router
        self.backend = backend
        self.parallelism = max(1, parallelism)
        self.scheduler = scheduler if scheduler is not None else BatchScheduler(
            router.grid, policy="prefix", max_batch=4 * self.parallelism
        )
        self.min_fork_batch = max(2, min_fork_batch)
        self.stats = ExecutorStats()
        # Influence reach: a committed vertex can change costs at most this
        # many cells away (color-pressure spread at the interaction radius).
        grid = router.grid
        self._influence_reach = grid.interaction_reach_cells(grid.interaction_radius())
        self._plane_size = grid.plane_size
        self._num_rows = grid.num_rows
        # Lazily built per-worker engines (thread backend).
        self._engine_queue: Optional[SimpleQueue] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        # Persistent worker pool (pool backend) and the journal the
        # executor attached for it (detached again when the pool closes).
        self._pool: Optional[PersistentWorkerPool] = None
        self._owned_journal = None
        self._fork_context = None
        if backend in ("process", "pool"):
            methods = multiprocessing.get_all_start_methods()
            self._fork_context = (
                multiprocessing.get_context("fork") if "fork" in methods else None
            )
        if backend != "serial":
            # Warm the native kernel in the parent before any worker
            # exists: threads share the loaded module outright, and forked
            # workers (per-batch or persistent pool) inherit the mapped
            # .so through fork -- no per-worker build attempt, no N
            # compilers racing on first use.  A no-op when the tier is
            # gated off or the extension cannot be built.
            get_native_kernel()

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release worker pools (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        self._discard_pool()

    def route_nets(self, nets: Sequence[Net], solution: RoutingSolution) -> None:
        """Route *nets* batch by batch, adding every route to *solution*.

        The scheduler plans the batches; each batch is routed with the
        configured backend and committed in batch order, so the overall
        commit order is deterministic for a given plan.
        """
        nets = list(nets)
        if not nets:
            return
        grid = self.router.grid
        # Pre-intern every scheduled net so id assignment stays independent
        # of worker timing (ids never change results, but deterministic
        # internals make debugging sane).
        for net in nets:
            grid.net_id(net.name)
        for batch in self.scheduler.plan(nets):
            self.stats.batches += 1
            self.stats.nets_routed += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            if not self._run_batch_parallel(batch, solution):
                self._run_batch_serial(batch, solution)

    # ------------------------------------------------------------------

    def _run_batch_serial(self, batch: Sequence[Net], solution: RoutingSolution) -> None:
        for net in batch:
            solution.add_route(self.router.route_net(net))

    def _run_batch_parallel(self, batch: Sequence[Net], solution: RoutingSolution) -> bool:
        """Try the speculative backend on *batch*; return ``False`` to let
        the caller route it serially instead."""
        if self.backend == "serial" or len(batch) < 2:
            return False
        if self.backend == "process" and (
            self._fork_context is None or len(batch) < self.min_fork_batch
        ):
            return False
        if self.backend == "pool" and (
            self._fork_context is None
            or (self._pool is None and len(batch) < self.min_fork_batch)
        ):
            # Don't pay the one-time fork for a campaign of tiny batches;
            # once the pool exists it serves every parallel batch.
            return False
        try:
            if self.backend == "thread":
                results = self._compute_batch_threaded(batch)
            elif self.backend == "pool":
                results = self._compute_batch_pooled(batch)
            else:
                results = self._compute_batch_forked(batch)
        except Exception:
            self.stats.worker_errors += 1
            return False
        if results is None:
            return False
        self.stats.parallel_batches += 1
        self._commit_batch(batch, results, solution)
        return True

    # -- thread backend -----------------------------------------------------

    def _ensure_thread_workers(self) -> bool:
        if self._engine_queue is None:
            engines = []
            for _ in range(self.parallelism):
                engine = self.router.make_search_engine()
                if engine is None:
                    return False  # legacy engine: speculative routing unsupported
                engines.append(engine)
            queue: SimpleQueue = SimpleQueue()
            for engine in engines:
                queue.put(engine)
            self._engine_queue = queue
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.parallelism, thread_name_prefix="repro-sched"
            )
        return True

    def _compute_batch_threaded(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        if not self._ensure_thread_workers():
            return None
        queue = self._engine_queue

        def task(net: Net) -> SpeculativeRoute:
            engine = queue.get()
            try:
                return _compute_speculative(self.router, net, engine)
            finally:
                queue.put(engine)

        return list(self._thread_pool.map(task, batch))

    # -- process (fork) backend ----------------------------------------------

    def _compute_batch_forked(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        if self.router.make_search_engine() is None:
            return None  # legacy engine: speculative routing unsupported
        global _FORK_TASK
        _FORK_TASK = (self.router, batch)
        try:
            workers = min(self.parallelism, len(batch))
            with self._fork_context.Pool(processes=workers) as pool:
                raw = pool.map(_fork_worker, range(len(batch)))
        finally:
            _FORK_TASK = None
        return [
            SpeculativeRoute(route=route, ops=ops, explored_box=box)
            for route, ops, box in raw
        ]

    # -- pool (persistent journal-replicated workers) backend ------------------

    def _ensure_pool(self) -> Optional[PersistentWorkerPool]:
        if self._pool is not None:
            return self._pool
        if self._fork_context is None:
            return None
        if self.router.make_search_engine() is None:
            return None  # legacy engine: speculative routing unsupported
        grid = self.router.grid
        if grid.journal is None:
            # The journal must exist *before* the first fork: workers
            # re-sync by replaying everything recorded past their cursor.
            self._owned_journal = grid.attach_journal()
        self._pool = PersistentWorkerPool(self._fork_context, self.router, self.parallelism)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._owned_journal is not None:
            # Only detach what we attached; a caller-provided journal keeps
            # recording (checkpoint/resume wants the full campaign log).
            if self.router.grid.journal is self._owned_journal:
                self.router.grid.detach_journal()
            self._owned_journal = None

    def _compute_batch_pooled(
        self, batch: Sequence[Net]
    ) -> Optional[List[SpeculativeRoute]]:
        pool = self._ensure_pool()
        if pool is None:
            return None
        forks_before = pool.total_forks
        try:
            raw, replayed = pool.compute([net.name for net in batch])
        except Exception:
            # A failed worker may have died mid-replay; its grid can no
            # longer be trusted, so drop the whole pool.  The next parallel
            # batch re-forks from the (authoritative) parent state.
            self.stats.pool_forks += pool.total_forks - forks_before
            self._discard_pool()
            raise
        self.stats.pool_forks += pool.total_forks - forks_before
        self.stats.replayed_ops += replayed
        if self._owned_journal is not None:
            # The executor's own journal exists solely to feed the pool;
            # ops every worker has consumed can never be shipped again, so
            # drop them to bound a long campaign's memory.  (A
            # caller-attached journal is a campaign log -- never touched.)
            self._owned_journal.compact(pool.min_cursor())
        return [
            SpeculativeRoute(route=route, ops=ops, explored_box=box)
            for route, ops, box in raw
        ]

    # -- validation + commit --------------------------------------------------

    def _commit_batch(
        self,
        batch: Sequence[Net],
        results: Sequence[SpeculativeRoute],
        solution: RoutingSolution,
    ) -> None:
        grid = self.router.grid
        committed: List[CellWindow] = []
        for net, spec in zip(batch, results):
            if self._speculation_valid(spec, committed):
                self.stats.speculative_accepted += 1
                apply_route_ops(grid, spec.ops)
                route = spec.route
                influence = self._ops_influence_box(spec.ops)
            else:
                self.stats.speculative_fallbacks += 1
                route = self.router.route_net(net)
                influence = self._vertices_influence_box(route.vertices)
            solution.add_route(route)
            if influence is not None:
                committed.append(influence)

    def _speculation_valid(
        self, spec: SpeculativeRoute, committed: Sequence[CellWindow]
    ) -> bool:
        """Return ``True`` when the snapshot route is provably still exact.

        Sound acceptance test: the searches read mutable state only at
        labelled vertices, and earlier commits influence only their own
        influence boxes -- disjointness means the worker saw exactly the
        state a live (sequential) computation would have seen.
        """
        if spec.explored_box is None:
            # No search ran: the result depends only on immutable state
            # (pin access over static blockages) unless ops were recorded.
            return not spec.ops
        if not committed:
            return True
        box = spec.explored_box
        return not any(windows_overlap(box, other) for other in committed)

    def _ops_influence_box(self, ops: Sequence[CommitOp]) -> Optional[CellWindow]:
        # Journal ops address vertices by flat index (op[2]); decode the
        # planar cell in place of building GridPoints.
        rows = self._num_rows
        plane = self._plane_size
        return self._influence_box(divmod(op[2] % plane, rows) for op in ops)

    def _vertices_influence_box(self, vertices) -> Optional[CellWindow]:
        return self._influence_box((vertex.col, vertex.row) for vertex in vertices)

    def _influence_box(self, cells) -> Optional[CellWindow]:
        """Return the planar box the given commits can influence, expanded
        by the interaction reach (color pressure spreads that far)."""
        col_lo = row_lo = None
        col_hi = row_hi = None
        for col, row in cells:
            if col_lo is None:
                col_lo = col_hi = col
                row_lo = row_hi = row
                continue
            if col < col_lo:
                col_lo = col
            elif col > col_hi:
                col_hi = col
            if row < row_lo:
                row_lo = row
            elif row > row_hi:
                row_hi = row
        if col_lo is None:
            return None
        reach = self._influence_reach
        return (col_lo - reach, row_lo - reach, col_hi + reach, row_hi + reach)
