"""Route-commit sinks: immediate grid commits vs recorded journal ops.

Every router separates *computing* a net's route (searches, backtraces --
pure reads of the grid) from *committing* it (occupancy and mask-color
writes).  The commit side goes through a sink so the same ``compute_route``
body serves both execution modes:

* :class:`GridSink` applies each commit to the grid immediately -- the
  sequential rip-up loops and the deterministic batch backend use it, which
  keeps their behaviour call-for-call identical to the pre-batching code;
* :class:`RecordingSink` only appends the operations, in order, to a
  *commit log*.  The speculative batch backends route whole batches against
  a frozen grid snapshot this way and later replay accepted logs through
  :func:`apply_route_ops`.

Since the journal refactor the commit log **is** a slice of the
:mod:`repro.journal` op model: a :class:`RecordingSink` records exactly the
``("occupy", net_id, index)`` / ``("color", net_id, index, color)`` op
tuples that :class:`GridSink`'s grid calls would have pushed through
:meth:`RoutingGrid.apply_op`, and :func:`apply_route_ops` replays them
through that same choke point -- so deferred and immediate commits produce
identical grid state, fire identical delta-listener events, and land in the
attached journal identically.  Ops are flat tuples of ints, so logs cross
process boundaries (the fork and pool backends pickle them back to the
parent) without custom reducers.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import GridPoint
from repro.grid import RoutingGrid
from repro.journal import OP_COLOR, OP_OCCUPY, Op, replay_ops

#: One commit operation -- a :mod:`repro.journal` op (``occupy``/``color``).
CommitOp = Op


class GridSink:
    """Commit sink that applies every operation to the grid immediately."""

    __slots__ = ("grid", "net_name")

    def __init__(self, grid: RoutingGrid, net_name: str) -> None:
        self.grid = grid
        self.net_name = net_name

    def occupy(self, vertex: GridPoint) -> None:
        """Record the net's metal at *vertex* on the grid."""
        self.grid.occupy(vertex, self.net_name)

    def set_color(self, vertex: GridPoint, color: int) -> None:
        """Color the net's metal at *vertex* on the grid."""
        self.grid.set_vertex_color(vertex, self.net_name, color)


class RecordingSink:
    """Commit sink that records journal ops (in order) instead of applying.

    The grid is only consulted for geometry (vertex -> flat index) and the
    net id -- never mutated; :attr:`ops` is the commit log to replay with
    :func:`apply_route_ops` once the route is accepted.  The recorded ops
    mirror :class:`GridSink` gating exactly (out-of-bounds commits are
    dropped, invalid mask colors raise), so replaying the log is
    bit-equivalent to having committed immediately.
    """

    __slots__ = ("grid", "net_id", "ops")

    def __init__(self, grid: RoutingGrid, net_name: str) -> None:
        self.grid = grid
        # Interning here (not at replay) keeps id assignment in routing
        # order, matching what the GridSink path would have produced.
        self.net_id = grid.net_id(net_name)
        self.ops: List[CommitOp] = []

    def occupy(self, vertex: GridPoint) -> None:
        """Append an occupancy op to the log."""
        if self.grid.in_bounds(vertex):
            self.ops.append((OP_OCCUPY, self.net_id, self.grid.index_of(vertex)))

    def set_color(self, vertex: GridPoint, color: int) -> None:
        """Append a mask-color op to the log."""
        if not 0 <= color <= 2:
            raise ValueError(f"TPL mask color must be 0, 1 or 2, got {color}")
        if self.grid.in_bounds(vertex):
            self.ops.append((OP_COLOR, self.net_id, self.grid.index_of(vertex), color))


def apply_route_ops(grid: RoutingGrid, ops: Sequence[CommitOp]) -> None:
    """Replay a recorded commit log onto *grid*, in order.

    The ops flow through :meth:`RoutingGrid.apply_op` -- the same choke
    point immediate commits use -- so deferred and immediate commits
    produce identical grid state, identical delta-listener events, and
    identical journal entries.
    """
    replay_ops(grid, ops)
