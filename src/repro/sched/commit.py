"""Route-commit sinks: immediate grid commits vs recorded commit logs.

Every router separates *computing* a net's route (searches, backtraces --
pure reads of the grid) from *committing* it (occupancy and mask-color
writes).  The commit side goes through a sink so the same ``compute_route``
body serves both execution modes:

* :class:`GridSink` applies each commit to the grid immediately -- the
  sequential rip-up loops and the deterministic batch backend use it, which
  keeps their behaviour call-for-call identical to the pre-batching code;
* :class:`RecordingSink` only appends the operations, in order, to a
  *commit log*.  The speculative batch backends route whole batches against
  a frozen grid snapshot this way and later replay accepted logs through
  :func:`apply_route_ops` -- the replay performs the exact same
  ``occupy`` / ``set_vertex_color`` call sequence the sequential router
  would have performed, so the resulting grid state (including the
  incremental checkers fed by the grid's delta hooks) is bit-identical.

Log entries are plain tuples of :class:`~repro.geometry.GridPoint` and
ints, so logs cross process boundaries (the fork-based backend pickles
them back to the parent) without custom reducers.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry import GridPoint
from repro.grid import RoutingGrid

#: One commit operation: ``("occupy", vertex)`` or ``("color", vertex, mask)``.
CommitOp = Tuple


class GridSink:
    """Commit sink that applies every operation to the grid immediately."""

    __slots__ = ("grid", "net_name")

    def __init__(self, grid: RoutingGrid, net_name: str) -> None:
        self.grid = grid
        self.net_name = net_name

    def occupy(self, vertex: GridPoint) -> None:
        """Record the net's metal at *vertex* on the grid."""
        self.grid.occupy(vertex, self.net_name)

    def set_color(self, vertex: GridPoint, color: int) -> None:
        """Color the net's metal at *vertex* on the grid."""
        self.grid.set_vertex_color(vertex, self.net_name, color)


class RecordingSink:
    """Commit sink that records operations (in order) instead of applying them.

    The grid is never touched; :attr:`ops` is the commit log to replay with
    :func:`apply_route_ops` once the route is accepted.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: List[CommitOp] = []

    def occupy(self, vertex: GridPoint) -> None:
        """Append an occupancy commit to the log."""
        self.ops.append(("occupy", vertex))

    def set_color(self, vertex: GridPoint, color: int) -> None:
        """Append a mask-color commit to the log."""
        self.ops.append(("color", vertex, color))


def apply_route_ops(grid: RoutingGrid, net_name: str, ops: List[CommitOp]) -> None:
    """Replay a recorded commit log of *net_name* onto *grid*, in order.

    The replay issues the same grid calls, in the same order, that a
    :class:`GridSink` would have issued during routing, so deferred and
    immediate commits produce identical grid state and fire identical
    delta-listener events.
    """
    occupy = grid.occupy
    set_color = grid.set_vertex_color
    for op in ops:
        if op[0] == "occupy":
            occupy(op[1], net_name)
        else:
            set_color(op[1], net_name, op[2])
