"""Disjoint-batch planning over the pending-net queue.

Nets whose interaction neighbourhoods are spatially disjoint cannot affect
each other's costs, colors or violations: occupancy and history penalties
act at the metal itself, and color pressure reaches at most the interaction
radius (``max(Dcolor, min_spacing)``, :meth:`RoutingGrid.interaction_radius`)
around it.  The scheduler therefore assigns every net a planar **window** --
its pin bounding box mapped to grid cells and expanded by the interaction
reach plus a safety margin -- and groups nets whose windows are pairwise
disjoint into batches the executor may route concurrently against one
frozen grid snapshot.

Two policies are offered:

* ``"prefix"`` (default): every batch is the maximal *prefix* of the
  remaining queue whose windows are pairwise disjoint.  Concatenating the
  batches reproduces the input order exactly, so routing the plan serially
  is the unmodified sequential loop -- the determinism anchor the
  differential tests compare every backend against.
* ``"greedy"``: first-fit greedy coloring -- each net joins the earliest
  open batch whose members it does not overlap.  Batches are larger (more
  extractable concurrency) but the concatenated order is a permutation of
  the queue, so solutions may legitimately differ from the sequential loop;
  the parity oracle for this policy is the serial executor on the *same*
  plan.

Windows are a planning heuristic only -- the executor's speculative
validation (explored-region vs committed-delta boxes, with sequential
fallback) is what guarantees bit-identical results even when a search
wanders outside its window.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.design import Net
from repro.grid import RoutingGrid

#: Inclusive planar cell window: ``(col_lo, row_lo, col_hi, row_hi)``.
CellWindow = Tuple[int, int, int, int]


def windows_overlap(a: CellWindow, b: CellWindow) -> bool:
    """Return ``True`` when the two inclusive cell windows intersect."""
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


class BatchScheduler:
    """Partitions a net queue into spatially disjoint batches.

    Parameters
    ----------
    grid:
        The routing grid (supplies the cell geometry and the canonical
        interaction radius).
    policy:
        ``"prefix"`` (order-preserving, default) or ``"greedy"``
        (first-fit coloring; permutes the queue).
    max_batch:
        Optional cap on nets per batch (``None`` = unbounded).
    margin_cells:
        Extra window expansion beyond the interaction reach, in cells
        (default 0).  A wider margin trades batch size for fewer
        speculative fallbacks when searches overshoot their net's bounding
        box; correctness never depends on this value -- the executor's
        explored-region validation catches every overshoot.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        policy: str = "prefix",
        max_batch: Optional[int] = None,
        margin_cells: Optional[int] = None,
    ) -> None:
        if policy not in ("prefix", "greedy"):
            raise ValueError(f"unknown batch policy {policy!r}; expected 'prefix' or 'greedy'")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.grid = grid
        self.policy = policy
        self.max_batch = max_batch
        #: Interaction reach in cells at the grid-wide interaction radius.
        self.reach_cells = grid.interaction_reach_cells(grid.interaction_radius())
        self.margin_cells = 0 if margin_cells is None else max(0, margin_cells)

    # ------------------------------------------------------------------

    def net_window(self, net: Net, expand_cells: Optional[int] = None) -> CellWindow:
        """Return the net's planar cell window.

        The pin bounding box mapped onto grid columns/rows (covering every
        cell its metal could seed) and expanded by *expand_cells* (default:
        interaction reach + margin), clamped to the grid.
        """
        if expand_cells is None:
            expand_cells = self.reach_cells + self.margin_cells
        grid = self.grid
        box = net.bounding_box()
        pitch = grid.pitch
        col_lo = (box.xlo - grid.origin.x) // pitch - expand_cells
        col_hi = -(-(box.xhi - grid.origin.x) // pitch) + expand_cells
        row_lo = (box.ylo - grid.origin.y) // pitch - expand_cells
        row_hi = -(-(box.yhi - grid.origin.y) // pitch) + expand_cells
        return (
            max(0, col_lo),
            max(0, row_lo),
            min(grid.num_cols - 1, col_hi),
            min(grid.num_rows - 1, row_hi),
        )

    def plan(self, nets: Sequence[Net]) -> List[List[Net]]:
        """Partition *nets* into batches according to the policy.

        Every net appears in exactly one batch; batches preserve the input
        order of their members.  With the ``prefix`` policy the batches
        concatenate back to the input order.
        """
        if self.policy == "prefix":
            return self._plan_prefix(nets)
        return self._plan_greedy(nets)

    def _plan_prefix(self, nets: Sequence[Net]) -> List[List[Net]]:
        batches: List[List[Net]] = []
        current: List[Net] = []
        current_windows: List[CellWindow] = []
        for net in nets:
            window = self.net_window(net)
            full = self.max_batch is not None and len(current) >= self.max_batch
            if current and (
                full or any(windows_overlap(window, other) for other in current_windows)
            ):
                batches.append(current)
                current, current_windows = [], []
            current.append(net)
            current_windows.append(window)
        if current:
            batches.append(current)
        return batches

    def _plan_greedy(self, nets: Sequence[Net]) -> List[List[Net]]:
        batches: List[List[Net]] = []
        batch_windows: List[List[CellWindow]] = []
        for net in nets:
            window = self.net_window(net)
            placed = False
            for members, windows in zip(batches, batch_windows):
                if self.max_batch is not None and len(members) >= self.max_batch:
                    continue
                if any(windows_overlap(window, other) for other in windows):
                    continue
                members.append(net)
                windows.append(window)
                placed = True
                break
            if not placed:
                batches.append([net])
                batch_windows.append([window])
        return batches
