"""Supervision policy for batch execution: deadlines, liveness, retry, demotion.

Before this module the executor's only failure story was "raise
``RuntimeError`` and discard the pool", and a hung worker blocked the
campaign until ``close()`` escalated.  Supervision turns worker failure
into an expected, *classified* event:

* :class:`SupervisorConfig` -- the env-resolved policy knobs: per-batch
  wall-clock deadlines derived from batch size, the heartbeat grace
  window, bounded retries with exponential backoff, and the
  consecutive-failure threshold that triggers a backend demotion.
* :class:`FailureDetail` / :class:`WorkerFailure` -- one classified
  failure record per worker (index, journal cursor, kind, message) and
  the aggregate exception carrying **all** of them (the first failure
  must not silently eat the rest).
* :func:`await_worker_reply` -- the supervised receive loop: polls the
  worker pipe, consumes heartbeat messages as liveness evidence, detects
  dead processes immediately, and classifies deadline/grace expiries as
  timeouts.
* :func:`degradation_ladder` -- the graceful-degradation order ``pool ->
  process -> thread -> serial``; serial is the always-correct floor
  (bit-identical to the sequential loop by construction), so a campaign
  that demotes all the way down still terminates with the exact fault-free
  solution.

Every recovery path re-routes through the executor's existing
validation/fallback machinery, which is what keeps recovery bit-identical
to the fault-free serial run -- supervision only decides *when* to retry,
replace or demote, never *what* a route looks like.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.env import env_float, env_int

#: Per-batch deadline knobs: total override, and the batch-size-derived
#: budget ``base + per_net * len(batch)`` used when no override is set.
#: ``REPRO_BATCH_DEADLINE=0`` disables deadlines outright.
BATCH_DEADLINE_ENV = "REPRO_BATCH_DEADLINE"
BATCH_DEADLINE_BASE_ENV = "REPRO_BATCH_DEADLINE_BASE"
BATCH_DEADLINE_PER_NET_ENV = "REPRO_BATCH_DEADLINE_PER_NET"
#: Longest silence (seconds) tolerated from an *alive* worker before it is
#: declared hung; heartbeats refresh the window.  ``0`` (default) disables
#: the grace check and leaves only the total batch deadline.
HEARTBEAT_GRACE_ENV = "REPRO_HEARTBEAT_GRACE"
#: Bounded retry: how many times a failed parallel batch is retried on the
#: same backend tier, and the exponential-backoff base delay in seconds
#: (attempt ``k`` sleeps ``backoff * 2**(k-1)``).
BATCH_RETRIES_ENV = "REPRO_BATCH_RETRIES"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
#: Consecutive retry-exhausted batch failures at one backend tier before
#: the executor demotes to the next tier of the degradation ladder.
DEMOTE_AFTER_ENV = "REPRO_DEMOTE_AFTER"

DEFAULT_DEADLINE_BASE = 60.0
DEFAULT_DEADLINE_PER_NET = 15.0
DEFAULT_HEARTBEAT_GRACE = 0.0
DEFAULT_BATCH_RETRIES = 2
DEFAULT_RETRY_BACKOFF = 0.05
DEFAULT_DEMOTE_AFTER = 2

#: Failure kinds, in the order used to pick an aggregate's headline kind.
FAILURE_KINDS = ("timeout", "crash", "bootstrap", "replay", "compute", "fatal")

#: The graceful-degradation order.  Serial is the floor: always available,
#: bit-identical to the sequential loop by construction.
LADDER = ("pool", "process", "thread", "serial")


def degradation_ladder(backend: str) -> Tuple[str, ...]:
    """Return the demotion sequence starting at *backend* (ending at serial)."""
    if backend not in LADDER:
        raise ValueError(f"unknown backend {backend!r}; expected one of {LADDER}")
    return LADDER[LADDER.index(backend):]


@dataclass(frozen=True)
class SupervisorConfig:
    """Resolved supervision policy (env knobs with programmatic overrides)."""

    deadline_override: Optional[float] = None
    deadline_base: float = DEFAULT_DEADLINE_BASE
    deadline_per_net: float = DEFAULT_DEADLINE_PER_NET
    heartbeat_grace: float = DEFAULT_HEARTBEAT_GRACE
    max_retries: int = DEFAULT_BATCH_RETRIES
    backoff_base: float = DEFAULT_RETRY_BACKOFF
    demote_after: int = DEFAULT_DEMOTE_AFTER

    @classmethod
    def from_env(cls, **overrides: object) -> "SupervisorConfig":
        """Build the config from the environment, then apply *overrides*."""
        override = env_float(BATCH_DEADLINE_ENV, -1.0)
        config = cls(
            deadline_override=override if override >= 0.0 else None,
            deadline_base=env_float(BATCH_DEADLINE_BASE_ENV, DEFAULT_DEADLINE_BASE),
            deadline_per_net=env_float(
                BATCH_DEADLINE_PER_NET_ENV, DEFAULT_DEADLINE_PER_NET
            ),
            heartbeat_grace=env_float(HEARTBEAT_GRACE_ENV, DEFAULT_HEARTBEAT_GRACE),
            max_retries=env_int(BATCH_RETRIES_ENV, DEFAULT_BATCH_RETRIES),
            backoff_base=env_float(RETRY_BACKOFF_ENV, DEFAULT_RETRY_BACKOFF),
            demote_after=max(1, env_int(DEMOTE_AFTER_ENV, DEFAULT_DEMOTE_AFTER)),
        )
        return replace(config, **overrides) if overrides else config

    def deadline_seconds(self, batch_size: int) -> Optional[float]:
        """Return the wall-clock budget for a *batch_size*-net batch.

        The explicit ``REPRO_BATCH_DEADLINE`` override wins; ``0`` means
        "no deadline" (returns ``None``).  Otherwise the budget scales
        with the batch: ``base + per_net * batch_size``.
        """
        if self.deadline_override is not None:
            return self.deadline_override or None
        return self.deadline_base + self.deadline_per_net * max(1, batch_size)

    def backoff_seconds(self, attempt: int) -> float:
        """Return the sleep before retry *attempt* (1-based), exponentially grown."""
        return self.backoff_base * (2.0 ** max(0, attempt - 1))


@dataclass
class FailureDetail:
    """One classified per-worker failure record."""

    worker: Optional[int]
    kind: str
    message: str
    cursor: Optional[int] = None
    net: Optional[str] = None
    #: Sub-stage of the failing operation (bootstrap failures report
    #: ``recv`` / ``decode`` / ``rebuild`` so the pool can decide whether
    #: the fork-bootstrap fallback is worth trying).
    stage: Optional[str] = None

    def __str__(self) -> str:
        where = "parent" if self.worker is None else f"worker {self.worker}"
        cursor = "" if self.cursor is None else f" @cursor {self.cursor}"
        net = "" if self.net is None else f" (net {self.net!r})"
        kind = self.kind if self.stage is None else f"{self.kind}/{self.stage}"
        return f"{where}{cursor} [{kind}]{net}: {self.message}"


class WorkerFailure(RuntimeError):
    """A classified batch-execution failure aggregating every worker's detail.

    ``kind`` is the most severe detail kind (:data:`FAILURE_KINDS` order);
    ``retryable`` says whether a bounded retry (after worker replacement)
    can plausibly succeed -- bootstrap/replay/compute/crash/timeout
    failures are retryable because a replaced worker starts from clean,
    authoritative parent state, while ``fatal`` marks design errors
    (misconfiguration, unpicklable payloads, bugs) that retrying cannot
    fix.  The message enumerates **all** failed workers with their index
    and journal cursor -- the first failure never hides the rest.
    """

    def __init__(self, details: Sequence[FailureDetail], context: str = "batch"):
        self.details: List[FailureDetail] = list(details)
        kinds = {detail.kind for detail in self.details}
        self.kind = next(
            (kind for kind in FAILURE_KINDS if kind in kinds), "fatal"
        )
        self.retryable = "fatal" not in kinds
        super().__init__(
            f"{context} failed ({len(self.details)} worker failure"
            f"{'s' if len(self.details) != 1 else ''}): "
            + "; ".join(str(detail) for detail in self.details)
        )


def classify_worker_payload(
    payload: object, worker: Optional[int], cursor: Optional[int]
) -> FailureDetail:
    """Classify an ``("error", payload)`` reply a worker sent up the pipe."""
    if isinstance(payload, dict):
        return FailureDetail(
            worker=worker,
            kind=str(payload.get("kind", "compute")),
            message=str(payload.get("error", payload)),
            cursor=payload.get("ops_seen", cursor),
            net=payload.get("net"),
            stage=payload.get("stage"),
        )
    # Legacy / free-form error strings: assume a compute-stage failure.
    return FailureDetail(worker=worker, kind="compute", message=str(payload), cursor=cursor)


def classify_exception(exc: BaseException) -> str:
    """Classify a parent-side exception from a thread/process-tier batch.

    Pipe and process-pool breakage is a crash (retryable -- the next
    attempt starts fresh workers); anything else raised by the backend
    machinery itself is treated as retryable compute noise only when it
    came from fault injection, and as a fatal design error otherwise
    (a deterministic bug re-raises identically on every retry, and the
    serial floor will surface it to the caller with a clean traceback).
    """
    import multiprocessing
    from concurrent.futures import TimeoutError as FuturesTimeout

    from repro.faults import FaultError

    if isinstance(exc, (FuturesTimeout, multiprocessing.TimeoutError)):
        return "timeout"
    if isinstance(exc, (BrokenPipeError, EOFError, ConnectionError, OSError)):
        return "crash"
    try:
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(exc, BrokenProcessPool):
            return "crash"
    except ImportError:  # pragma: no cover
        pass
    if isinstance(exc, FaultError):
        return "compute"
    return "fatal"


@dataclass
class ReplyOutcome:
    """What :func:`await_worker_reply` observed from one worker."""

    payload: Optional[object] = None
    failure: Optional[FailureDetail] = None
    heartbeats: int = 0


def await_worker_reply(
    conn,
    process,
    worker: int,
    cursor: int,
    deadline_at: Optional[float],
    heartbeat_grace: float,
    poll_interval: float = 0.05,
) -> ReplyOutcome:
    """Supervised receive of one worker's batch reply.

    Consumes interleaved ``("hb", progress)`` heartbeat messages (sent
    after catch-up replay and between nets) as liveness evidence, returns
    the terminal ``("ok", payload)`` payload, and classifies everything
    else: a worker-sent ``("error", detail)`` by its own classification,
    a dead process / EOF as a ``crash``, and an expired batch deadline or
    heartbeat-grace window as a ``timeout``.  Never raises -- the caller
    aggregates outcomes across workers into one :class:`WorkerFailure`.
    """
    outcome = ReplyOutcome()
    last_beat = time.monotonic()
    while True:
        # Drain before judging: a reply already sitting in the pipe is
        # accepted even past the deadline, so one hung batch-mate never
        # condemns workers that finished in time.
        try:
            ready = conn.poll(0)
        except (OSError, ValueError):
            outcome.failure = FailureDetail(
                worker=worker, kind="crash", cursor=cursor,
                message="worker pipe broke while awaiting reply",
            )
            return outcome
        if ready:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                outcome.failure = FailureDetail(
                    worker=worker, kind="crash", cursor=cursor,
                    message="worker pipe closed mid-batch (EOF)",
                )
                return outcome
            status = message[0]
            if status == "hb":
                outcome.heartbeats += 1
                last_beat = time.monotonic()
                continue
            if status == "ok":
                outcome.payload = message[1]
                return outcome
            outcome.failure = classify_worker_payload(message[1], worker, cursor)
            return outcome
        now = time.monotonic()
        if deadline_at is not None and now >= deadline_at:
            outcome.failure = FailureDetail(
                worker=worker, kind="timeout", cursor=cursor,
                message="batch deadline exceeded (worker hung or too slow)",
            )
            return outcome
        if heartbeat_grace > 0 and now - last_beat >= heartbeat_grace:
            outcome.failure = FailureDetail(
                worker=worker, kind="timeout", cursor=cursor,
                message=f"no heartbeat for {heartbeat_grace:.3g}s (worker hung)",
            )
            return outcome
        wait = poll_interval
        if deadline_at is not None:
            wait = min(wait, max(0.0, deadline_at - now))
        if heartbeat_grace > 0:
            wait = min(wait, max(0.0, last_beat + heartbeat_grace - now))
        try:
            ready = conn.poll(wait)
        except (OSError, ValueError):
            outcome.failure = FailureDetail(
                worker=worker, kind="crash", cursor=cursor,
                message="worker pipe broke while awaiting reply",
            )
            return outcome
        if ready:
            continue  # the top-of-loop drain consumes it
        if process is not None and not process.is_alive():
            # One last drain: the worker may have replied and exited
            # between our poll and the liveness check.
            if not conn.poll(0):
                outcome.failure = FailureDetail(
                    worker=worker, kind="crash", cursor=cursor,
                    message=(
                        "worker process died mid-batch "
                        f"(exitcode {process.exitcode})"
                    ),
                )
                return outcome
