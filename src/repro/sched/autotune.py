"""Self-tuning scheduler: hardware calibration + online backend/knob control.

Every performance-critical scheduler decision used to be a static knob
(``batch_size``, ``min_fork_batch``, ``margin_cells``, ``batch_backend``)
frozen per run -- tuned, if at all, for whatever machine the tuner happened
to sit at.  This module closes the ROADMAP's "multi-core truth +
self-tuning scheduler" loop in two parts:

**Part 1 -- calibration probe** (:func:`calibrate`): a one-shot,
per-process-cached micro-benchmark of the things the backend choice
actually depends on -- usable cores, fork+bootstrap cost, pipe round-trip
latency, thread-dispatch overhead, and whether the native search kernel
(which releases the GIL, making *threads* real parallelism) is active.
The result is a :class:`HardwareProfile`, recorded into
``ExecutorStats``/bench JSON so every benchmark states the hardware truth
it was measured on.

**Part 2 -- online controller** (:class:`AutotuneController`): a
per-rip-up-iteration feedback loop over the executor's own counters
(speculative-fallback rate, ``pool_forks``, ``replayed_ops``, batch-size
distribution, per-batch wall time vs. the serial baseline) that adjusts
``max_batch`` / ``min_fork_batch`` / ``margin_cells`` within safe bounds
and picks serial-vs-thread-vs-pool per iteration.  The controller is
seeded and **deterministic given the same stats feed**, and it only ever
steers *which backend computes* and *how batches are partitioned* -- every
route still commits through the executor's explored-region validation, so
an autotuned run stays bit-identical to the sequential loop (the
differential suite in ``tests/test_autotune.py`` pins this for all three
routers).  The supervisor's degradation ladder always wins: a demoted tier
is simply removed from the controller's allowed set.

Env knob: ``REPRO_AUTOTUNE=off|probe|full`` (default ``off``) -- ``probe``
calibrates and records the profile but keeps static knobs; ``full`` also
engages the controller.  ``backend="auto"`` on any router implies at least
``probe`` and resolves the starting backend from the profile.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accel import active_search_tier
from repro.utils.env import env_choice

#: Autotune mode knob: ``off`` (static knobs, no probe), ``probe``
#: (calibrate + record the profile, knobs stay static), ``full`` (probe +
#: online controller).
AUTOTUNE_ENV = "REPRO_AUTOTUNE"

#: Modes accepted by :func:`resolve_autotune_mode`.
AUTOTUNE_MODES = ("off", "probe", "full")

DEFAULT_AUTOTUNE = "off"

#: Safe adjustment bounds for the controller (the knobs are performance
#: heuristics only -- correctness never depends on them -- but runaway
#: growth would still waste planning time and memory).
MIN_MAX_BATCH = 2
MAX_MAX_BATCH = 64
MAX_MARGIN_CELLS = 8
MAX_MIN_FORK_BATCH = 16


def resolve_autotune_mode(explicit: Optional[str] = None) -> str:
    """Return the effective autotune mode (arg > ``REPRO_AUTOTUNE`` > off)."""
    if explicit is not None:
        if explicit not in AUTOTUNE_MODES:
            raise ValueError(
                f"unknown autotune mode {explicit!r}; expected one of {AUTOTUNE_MODES}"
            )
        return explicit
    return env_choice(AUTOTUNE_ENV, AUTOTUNE_MODES, DEFAULT_AUTOTUNE)


# ----------------------------------------------------------------------
# Part 1: the calibration probe
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HardwareProfile:
    """One process's measured execution-substrate characteristics."""

    #: Cores this process may actually run on (CPU affinity respected --
    #: a containerised 1-core slice of a 64-core host must not fork 64
    #: workers).
    cpu_count: int
    #: Whether the ``fork`` start method exists (pool/process backends).
    fork_available: bool
    #: Wall-clock cost of forking one trivial child and collecting its
    #: pipe reply + exit (the pool's per-worker startup floor).  ``0.0``
    #: when fork is unavailable.
    fork_seconds: float
    #: One small-message pipe send+recv (the pool's per-message IPC floor).
    pipe_roundtrip_seconds: float
    #: One trivial thread-pool dispatch+result (the thread backend's floor).
    thread_dispatch_seconds: float
    #: Active search-acceleration tier (``native`` releases the GIL, so
    #: threads scale; the pure-python tiers serialise on it).
    native_tier: str
    #: Total wall-clock the probe itself took.
    probe_seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Return the profile as a plain dict (benchmark JSON friendly)."""
        return {
            "cpu_count": self.cpu_count,
            "fork_available": self.fork_available,
            "fork_seconds": self.fork_seconds,
            "pipe_roundtrip_seconds": self.pipe_roundtrip_seconds,
            "thread_dispatch_seconds": self.thread_dispatch_seconds,
            "native_tier": self.native_tier,
            "probe_seconds": self.probe_seconds,
        }


def usable_cpu_count() -> int:
    """Return the number of cores this process may schedule on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _fork_probe_child(conn) -> None:  # pragma: no cover - runs in the child
    conn.send(b"ok")
    conn.close()


def _probe_fork_seconds() -> Tuple[bool, float]:
    """Measure fork + pipe-handshake + join for one trivial child."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return False, 0.0
    context = multiprocessing.get_context("fork")
    started = time.perf_counter()
    try:
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_fork_probe_child, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        parent_conn.recv()
        process.join(timeout=10.0)
        parent_conn.close()
    except Exception:
        return False, 0.0
    return True, time.perf_counter() - started


def _probe_pipe_roundtrip(iterations: int = 5) -> float:
    """Measure one small pickled message through an OS pipe (best of N)."""
    reader, writer = multiprocessing.Pipe(duplex=False)
    payload = list(range(32))
    best = float("inf")
    try:
        for _ in range(iterations):
            started = time.perf_counter()
            writer.send(payload)
            reader.recv()
            best = min(best, time.perf_counter() - started)
    finally:
        reader.close()
        writer.close()
    return best if best != float("inf") else 0.0


def _probe_thread_dispatch(iterations: int = 5) -> float:
    """Measure one trivial thread-pool submit+result round trip (best of N)."""
    from concurrent.futures import ThreadPoolExecutor

    best = float("inf")
    with ThreadPoolExecutor(max_workers=1) as pool:
        pool.submit(int).result()  # warm the worker thread
        for _ in range(iterations):
            started = time.perf_counter()
            pool.submit(int).result()
            best = min(best, time.perf_counter() - started)
    return best if best != float("inf") else 0.0


#: Per-process probe cache: calibration is a one-shot cost.
_PROFILE: Optional[HardwareProfile] = None


def calibrate(refresh: bool = False) -> HardwareProfile:
    """Measure (once per process) and return the :class:`HardwareProfile`.

    The probe is deliberately cheap (a single fork, a handful of pipe and
    thread round trips -- tens of milliseconds) because it runs inside
    user campaigns, and cached because nothing it measures changes within
    a process lifetime.  *refresh* forces a re-probe (tests).
    """
    global _PROFILE
    if _PROFILE is not None and not refresh:
        return _PROFILE
    started = time.perf_counter()
    fork_available, fork_seconds = _probe_fork_seconds()
    profile = HardwareProfile(
        cpu_count=usable_cpu_count(),
        fork_available=fork_available,
        fork_seconds=fork_seconds,
        pipe_roundtrip_seconds=_probe_pipe_roundtrip(),
        thread_dispatch_seconds=_probe_thread_dispatch(),
        native_tier=active_search_tier(),
        probe_seconds=time.perf_counter() - started,
    )
    _PROFILE = profile
    return profile


def reset_calibration_cache() -> None:
    """Drop the cached profile so the next :func:`calibrate` re-probes (tests)."""
    global _PROFILE
    _PROFILE = None


def recommend_backend(profile: HardwareProfile, parallelism: int) -> str:
    """Return the profile's starting backend (``backend="auto"`` resolution).

    Single-core (or single-worker) hosts route serially -- speculation and
    IPC are pure overhead without cores to hide them on.  With the native
    kernel active the thread backend is the cheapest real parallelism (the
    C relaxation loop drops the GIL; no fork, no IPC, no journal replay).
    Otherwise threads serialise on the GIL, so the journal-replicated pool
    is the only tier that can scale -- when fork exists to build it.
    """
    if profile.cpu_count < 2 or parallelism < 2:
        return "serial"
    if profile.native_tier == "native":
        return "thread"
    if profile.fork_available:
        return "pool"
    return "thread"


# ----------------------------------------------------------------------
# Part 2: the online controller
# ----------------------------------------------------------------------


@dataclass
class Decision:
    """One iteration's chosen scheduler configuration (and why)."""

    iteration: int
    backend: str
    max_batch: int
    min_fork_batch: int
    margin_cells: int
    reason: str
    #: Backends the degradation ladder allowed when the choice was made.
    allowed: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """Return the decision as a plain dict (decision-log JSON friendly)."""
        return {
            "iteration": self.iteration,
            "backend": self.backend,
            "max_batch": self.max_batch,
            "min_fork_batch": self.min_fork_batch,
            "margin_cells": self.margin_cells,
            "reason": self.reason,
            "allowed": list(self.allowed),
        }


#: Stats counters whose per-iteration deltas drive the controller.
_FEEDBACK_KEYS = (
    "batches",
    "parallel_batches",
    "speculative_accepted",
    "speculative_fallbacks",
    "pool_forks",
    "replayed_ops",
    "worker_errors",
)


class AutotuneController:
    """Per-iteration scheduler-configuration controller.

    The executor calls :meth:`begin_iteration` once per ``route_nets``
    round (initial routing + every rip-up iteration) with the pending-net
    count, its live :class:`~repro.sched.executor.ExecutorStats` and the
    backends the degradation ladder still allows; the returned
    :class:`Decision` is applied before planning.  After every routed
    batch the executor reports the backend used and the wall time through
    :meth:`observe_batch`, feeding per-backend per-net EWMAs the next
    decision ranks candidates by.

    Determinism: the controller reads only the stats feed and its seeded
    RNG, so the same feed produces the same decision sequence -- and none
    of its outputs can change routing *results* (backend choice and
    prefix-policy batch partitioning are results-neutral by the executor's
    validation guarantee).
    """

    #: EWMA smoothing for per-backend per-net seconds.
    EWMA_ALPHA = 0.5
    #: In ``full`` mode, re-measure a stale candidate every N iterations.
    EXPLORE_EVERY = 4
    #: Fallback-rate thresholds: above the high mark batches shrink and
    #: margins widen; below the low mark (with parallel wins) they grow.
    FALLBACK_HIGH = 0.5
    FALLBACK_LOW = 0.1

    def __init__(
        self,
        profile: Optional[HardwareProfile],
        backend: str,
        parallelism: int,
        max_batch: int,
        min_fork_batch: int,
        margin_cells: int,
        seed: int = 0xD5EED,
    ) -> None:
        self.profile = profile
        self.parallelism = max(1, parallelism)
        self.max_batch = max(MIN_MAX_BATCH, min(max_batch, MAX_MAX_BATCH))
        self.min_fork_batch = max(2, min(min_fork_batch, MAX_MIN_FORK_BATCH))
        self.margin_cells = max(0, min(margin_cells, MAX_MARGIN_CELLS))
        self.preferred_backend = backend
        self.decisions: List[Decision] = []
        self._rng = random.Random(seed)
        self._iteration = 0
        self._last_stats: Dict[str, int] = {}
        #: backend -> EWMA seconds per net (measured by observe_batch).
        self._per_net: Dict[str, float] = {}
        #: backend -> iteration it was last measured at.
        self._measured_at: Dict[str, int] = {}

    # -- feedback ------------------------------------------------------

    def observe_batch(self, backend: str, nets: int, seconds: float) -> None:
        """Fold one routed batch's wall time into *backend*'s EWMA."""
        if nets <= 0 or seconds < 0.0:
            return
        per_net = seconds / nets
        previous = self._per_net.get(backend)
        if previous is None:
            self._per_net[backend] = per_net
        else:
            self._per_net[backend] = previous + self.EWMA_ALPHA * (per_net - previous)
        self._measured_at[backend] = self._iteration

    # -- decision ------------------------------------------------------

    def candidate_order(self) -> Tuple[str, ...]:
        """Profile-ranked backend preference, most promising first."""
        profile = self.profile
        if profile is None:
            return (self.preferred_backend, "serial")
        if profile.cpu_count < 2 or self.parallelism < 2:
            return ("serial",)
        order: List[str] = []
        if profile.native_tier == "native":
            order.append("thread")
        if profile.fork_available:
            order.append("pool")
        if "thread" not in order:
            order.append("thread")
        order.append("serial")
        return tuple(order)

    def begin_iteration(
        self,
        pending_nets: int,
        stats,
        allowed: Sequence[str],
    ) -> Decision:
        """Return this iteration's :class:`Decision` from the stats feed.

        *allowed* is the executor's remaining degradation-ladder suffix;
        the controller never chooses outside it -- supervisor demotions
        always override the controller.
        """
        snapshot = stats.as_dict()
        delta = {
            key: snapshot.get(key, 0) - self._last_stats.get(key, 0)
            for key in _FEEDBACK_KEYS
        }
        self._last_stats = {key: snapshot.get(key, 0) for key in _FEEDBACK_KEYS}
        reasons: List[str] = []
        self._adapt_knobs(delta, reasons)
        backend = self._pick_backend(pending_nets, tuple(allowed), reasons)
        decision = Decision(
            iteration=self._iteration,
            backend=backend,
            max_batch=self.max_batch,
            min_fork_batch=self.min_fork_batch,
            margin_cells=self.margin_cells,
            reason="; ".join(reasons) if reasons else "steady state",
            allowed=tuple(allowed),
        )
        self.decisions.append(decision)
        self._iteration += 1
        return decision

    def _adapt_knobs(self, delta: Dict[str, int], reasons: List[str]) -> None:
        """Adjust batch/margin knobs from the last iteration's outcomes."""
        attempts = delta["speculative_accepted"] + delta["speculative_fallbacks"]
        fallback_rate = (
            delta["speculative_fallbacks"] / attempts if attempts > 0 else 0.0
        )
        if attempts > 0 and fallback_rate > self.FALLBACK_HIGH:
            # Speculation mostly wasted: batch-mates' explored regions keep
            # colliding with commits.  Smaller batches commit sooner and a
            # wider window margin separates the planner's groupings.
            shrunk = max(MIN_MAX_BATCH, self.max_batch // 2)
            widened = min(MAX_MARGIN_CELLS, self.margin_cells + 1)
            if shrunk != self.max_batch or widened != self.margin_cells:
                self.max_batch = shrunk
                self.margin_cells = widened
                reasons.append(
                    f"fallback rate {fallback_rate:.2f}: "
                    f"max_batch->{shrunk}, margin->{widened}"
                )
        elif (
            attempts > 0
            and fallback_rate < self.FALLBACK_LOW
            and delta["parallel_batches"] > 0
        ):
            # Speculation almost always lands: expose more concurrency.
            grown = min(MAX_MAX_BATCH, self.max_batch * 2)
            if grown != self.max_batch:
                self.max_batch = grown
                reasons.append(
                    f"fallback rate {fallback_rate:.2f}: max_batch->{grown}"
                )
        if delta["pool_forks"] > 0 and delta["parallel_batches"] == 0:
            # Paid worker startup without ever winning a parallel batch:
            # raise the engagement bar so tiny campaigns stop paying it.
            raised = min(MAX_MIN_FORK_BATCH, self.min_fork_batch + 1)
            if raised != self.min_fork_batch:
                self.min_fork_batch = raised
                reasons.append(f"forks without parallel wins: min_fork_batch->{raised}")

    def _pick_backend(
        self, pending_nets: int, allowed: Tuple[str, ...], reasons: List[str]
    ) -> str:
        """Choose the iteration's backend within *allowed*."""
        candidates = [
            backend for backend in self.candidate_order() if backend in allowed
        ]
        if not candidates:
            # The ladder demoted below every profile candidate; take its
            # own floor (serial is always last and always allowed).
            reasons.append("ladder override: no profile candidate allowed")
            return allowed[-1] if allowed else "serial"
        measured = {
            backend: self._per_net[backend]
            for backend in candidates
            if backend in self._per_net
        }
        # Exploration (bounded, seeded): periodically refresh a candidate
        # the EWMAs know nothing (or only stale things) about, so a
        # backend that *became* fast (e.g. pool workers already forked)
        # gets re-ranked instead of being written off forever.
        if (
            len(candidates) > 1
            and pending_nets >= self.min_fork_batch
            and self._iteration % self.EXPLORE_EVERY == self.EXPLORE_EVERY - 1
        ):
            stale = [
                backend
                for backend in candidates
                if backend != "serial"
                and self._iteration - self._measured_at.get(backend, -(10**9))
                >= self.EXPLORE_EVERY
            ]
            if stale:
                choice = self._rng.choice(stale)
                reasons.append(f"explore {choice}")
                return choice
        if len(measured) >= 2:
            best = min(sorted(measured), key=measured.get)
            reasons.append(
                "measured best: "
                + ", ".join(
                    f"{backend}={measured[backend] * 1e3:.3g}ms/net"
                    for backend in sorted(measured)
                )
            )
            return best
        reasons.append(f"profile pick {candidates[0]}")
        return candidates[0]
