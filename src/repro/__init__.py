"""Mr.TPL reproduction: multi-pin net detailed routing for triple patterning.

This package reproduces "Mr.TPL: A Method for Multi-Pin Net Router in Triple
Patterning Lithography" (DAC 2025) as a self-contained Python library:

* :mod:`repro.tpl` -- the Mr.TPL color-state router (the paper's contribution),
* :mod:`repro.dr` -- the Dr.CU-like detailed routing substrate it plugs into,
* :mod:`repro.gr` -- global routing and guides,
* :mod:`repro.baselines` -- the DAC-2012 TPL router and an OpenMPL-like
  layout decomposer used as comparison points,
* :mod:`repro.bench` / :mod:`repro.eval` -- benchmark suites and the
  harnesses regenerating the paper's tables and figures.

Quickstart::

    from repro.bench import ispd18_suite
    from repro.grid import RoutingGrid
    from repro.tpl import MrTPLRouter
    from repro.eval import evaluate_solution

    design = ispd18_suite(scale=0.6)[0].build()
    grid = RoutingGrid(design)
    solution = MrTPLRouter(design, grid=grid).run()
    print(evaluate_solution(design, grid, solution).as_dict())
"""

from repro.design import Design, Net, Pin, Obstacle
from repro.grid import RoutingGrid, RoutingSolution, NetRoute
from repro.tpl import MrTPLRouter, ColorState
from repro.dr import DetailedRouter
from repro.baselines import Dac2012Router, LayoutDecomposer
from repro.eval import evaluate_solution

__version__ = "1.0.0"

__all__ = [
    "Design",
    "Net",
    "Pin",
    "Obstacle",
    "RoutingGrid",
    "RoutingSolution",
    "NetRoute",
    "MrTPLRouter",
    "ColorState",
    "DetailedRouter",
    "Dac2012Router",
    "LayoutDecomposer",
    "evaluate_solution",
    "__version__",
]
