"""Multi-source maze search on the routing grid (TPL-unaware).

The plain detailed router grows each multi-pin net as a tree: every search
starts from all vertices already in the tree (cost 0) and stops at the first
access vertex of a still-unreached pin.  This is the standard multi-source
Dijkstra formulation that Algorithm 1 of the paper also follows -- the
Mr.TPL variant in :mod:`repro.tpl.search` adds the color-state dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.dr.cost import CostModel, TargetBounds
from repro.geometry import GridPoint
from repro.grid import ALL_DIRECTIONS, Direction, RoutingGrid
from repro.utils import UpdatablePriorityQueue


@dataclass
class SearchResult:
    """Outcome of one maze search."""

    reached: Optional[GridPoint]
    parents: Dict[GridPoint, Optional[GridPoint]] = field(default_factory=dict)
    costs: Dict[GridPoint, float] = field(default_factory=dict)
    expansions: int = 0

    @property
    def found(self) -> bool:
        """Return ``True`` when a target vertex was reached."""
        return self.reached is not None

    def backtrace(self) -> List[GridPoint]:
        """Return the path from a source (cost 0) to the reached vertex.

        The path is ordered source-first.  Raises ``ValueError`` when the
        search failed.
        """
        if self.reached is None:
            raise ValueError("cannot backtrace a failed search")
        path: List[GridPoint] = []
        cursor: Optional[GridPoint] = self.reached
        while cursor is not None:
            path.append(cursor)
            cursor = self.parents.get(cursor)
        path.reverse()
        return path


class MazeRouter:
    """Dijkstra/A* search engine shared by the plain detailed router."""

    def __init__(self, grid: RoutingGrid, cost_model: CostModel, max_expansions: int = 2_000_000) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions

    def search(
        self,
        sources: Iterable[GridPoint],
        targets: Set[GridPoint],
        net_name: str,
        allow_occupied_targets: bool = True,
    ) -> SearchResult:
        """Search from *sources* to any vertex in *targets*.

        Parameters
        ----------
        sources:
            Seed vertices (the routed tree so far, or the first pin's access
            vertices); they start with cost 0.
        targets:
            Acceptable destination vertices (access vertices of unreached pins).
        net_name:
            The net being routed (needed for occupancy / guide costs).
        allow_occupied_targets:
            Target vertices covered by another net's metal are still accepted
            when ``True``; the negotiation loop resolves the resulting short.
        """
        result = SearchResult(reached=None)
        if not targets:
            return result
        bounds = TargetBounds.from_targets(targets)
        queue: UpdatablePriorityQueue = UpdatablePriorityQueue()
        costs: Dict[GridPoint, float] = {}
        parents: Dict[GridPoint, Optional[GridPoint]] = {}
        for source in sources:
            if not self.grid.in_bounds(source):
                continue
            if self.grid.is_blocked(source):
                continue
            costs[source] = 0.0
            parents[source] = None
            queue.push(source, self.cost_model.heuristic_bounds(source, bounds))
        expansions = 0
        while queue:
            vertex, _priority = queue.pop()
            cost_here = costs[vertex]
            expansions += 1
            if vertex in targets:
                if allow_occupied_targets or not self.grid.is_occupied_by_other(vertex, net_name):
                    result.reached = vertex
                    break
            if expansions > self.max_expansions:
                break
            for direction in ALL_DIRECTIONS:
                neighbor = self.grid.neighbor(vertex, direction)
                if neighbor is None or self.grid.is_blocked(neighbor):
                    continue
                step = self.cost_model.weighted_traditional_cost(
                    vertex, direction, neighbor, net_name
                )
                candidate = cost_here + step
                if candidate < costs.get(neighbor, float("inf")) - 1e-12:
                    costs[neighbor] = candidate
                    parents[neighbor] = vertex
                    priority = candidate + self.cost_model.heuristic_bounds(neighbor, bounds)
                    queue.push(neighbor, priority)
        result.parents = parents
        result.costs = costs
        result.expansions = expansions
        return result
