"""Multi-source maze search on the routing grid (TPL-unaware).

The plain detailed router grows each multi-pin net as a tree: every search
starts from all vertices already in the tree (cost 0) and stops at the first
access vertex of a still-unreached pin.  This is the standard multi-source
Dijkstra formulation that Algorithm 1 of the paper also follows -- the
Mr.TPL variant in :mod:`repro.tpl.search` adds the color-state dimension.

:class:`MazeRouter` is a thin adapter over the shared
:class:`repro.search.SearchCore` engine: vertices are converted to flat grid
indices at the API boundary, the hot loop reads the grid's flat state
buffers, and :class:`GridPoint` objects are materialised only for the
backtraced path (and lazily for the compatibility ``parents`` / ``costs``
views).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.dr.cost import CostModel, TargetBounds
from repro.geometry import GridPoint
from repro.grid import NUM_DIRECTIONS, RoutingGrid
from repro.native.spec import (
    MODE_TRADITIONAL,
    attach_accept_spec,
    attach_native_spec,
)
from repro.search import CoreResult, SearchCore


class SearchResult:
    """Outcome of one maze search.

    Constructed either from a :class:`~repro.search.CoreResult` (the flat
    engine) or from explicit ``GridPoint``-keyed dicts (the legacy reference
    engine); the public surface is identical either way, and the GridPoint
    views are materialised lazily so the fast path never pays for them.
    """

    def __init__(
        self,
        reached: Optional[GridPoint] = None,
        parents: Optional[Dict[GridPoint, Optional[GridPoint]]] = None,
        costs: Optional[Dict[GridPoint, float]] = None,
        expansions: int = 0,
        core: Optional[CoreResult] = None,
        grid: Optional[RoutingGrid] = None,
    ) -> None:
        self._core = core
        self._grid = grid
        self._reached = reached
        self._parents = parents
        self._costs = costs
        self.expansions = core.expansions if core is not None else expansions

    @property
    def reached(self) -> Optional[GridPoint]:
        """Return the target vertex the search stopped at, if any."""
        if self._reached is None and self._core is not None and self._core.found:
            self._reached = self._grid.vertex_of(self._core.reached)
        return self._reached

    @property
    def found(self) -> bool:
        """Return ``True`` when a target vertex was reached."""
        if self._core is not None:
            return self._core.found
        return self._reached is not None

    @property
    def parents(self) -> Dict[GridPoint, Optional[GridPoint]]:
        """Return the predecessor map (GridPoint view, built on demand)."""
        if self._parents is None:
            if self._core is None:
                self._parents = {}
            else:
                vertex_of = self._grid.vertex_of
                self._parents = {
                    vertex_of(node): (vertex_of(pred) if pred >= 0 else None)
                    for node, pred in self._core.parent.items()
                }
        return self._parents

    @property
    def costs(self) -> Dict[GridPoint, float]:
        """Return the best-cost map (GridPoint view, built on demand)."""
        if self._costs is None:
            if self._core is None:
                self._costs = {}
            else:
                vertex_of = self._grid.vertex_of
                self._costs = {
                    vertex_of(node): value for node, value in self._core.cost.items()
                }
        return self._costs

    def backtrace(self) -> List[GridPoint]:
        """Return the path from a source (cost 0) to the reached vertex.

        The path is ordered source-first.  Raises ``ValueError`` when the
        search failed.
        """
        if self._core is not None:
            if not self._core.found:
                raise ValueError("cannot backtrace a failed search")
            nodes = self._core.node_path()
            nodes.reverse()
            vertex_of = self._grid.vertex_of
            return [vertex_of(node) for node in nodes]
        if self._reached is None:
            raise ValueError("cannot backtrace a failed search")
        path: List[GridPoint] = []
        cursor: Optional[GridPoint] = self._reached
        while cursor is not None:
            path.append(cursor)
            cursor = (self._parents or {}).get(cursor)
        path.reverse()
        return path


class MazeRouter:
    """Dijkstra/A* search engine shared by the plain detailed router."""

    def __init__(self, grid: RoutingGrid, cost_model: CostModel, max_expansions: int = 2_000_000) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions
        self.core = SearchCore(grid, cost_model, max_expansions)

    def search(
        self,
        sources: Iterable[GridPoint],
        targets: Set[GridPoint],
        net_name: str,
        allow_occupied_targets: bool = True,
    ) -> SearchResult:
        """Search from *sources* to any vertex in *targets*.

        Parameters
        ----------
        sources:
            Seed vertices (the routed tree so far, or the first pin's access
            vertices); they start with cost 0.
        targets:
            Acceptable destination vertices (access vertices of unreached pins).
        net_name:
            The net being routed (needed for occupancy / guide costs).
        allow_occupied_targets:
            Target vertices covered by another net's metal are still accepted
            when ``True``; the negotiation loop resolves the resulting short.
        """
        if not targets:
            return SearchResult()
        grid = self.grid
        bounds = TargetBounds.from_targets(targets)
        index_of = grid.index_of
        seeds: List[Tuple[int, int]] = []
        for source in sources:
            if not grid.in_bounds(source) or grid.is_blocked(source):
                continue
            seeds.append((index_of(source), 0))
        target_nodes = {index_of(t) for t in targets if grid.in_bounds(t)}

        net_id = grid.net_id(net_name)
        accept: Optional[Callable[[int], bool]] = None
        if not allow_occupied_targets:
            is_other = grid.is_occupied_by_other_index

            def accept(node: int) -> bool:
                return not is_other(node, net_id)

            attach_accept_spec(accept, grid, net_id)

        expand = make_traditional_expand(grid, self.cost_model, net_name, net_id)
        self.core.max_expansions = self.max_expansions
        core = self.core.run(
            seeds, target_nodes, expand, bounds=bounds, accept=accept, buffered=True
        )
        return SearchResult(core=core, grid=grid)


def make_traditional_expand(
    grid: RoutingGrid,
    cost_model: CostModel,
    net_name: str,
    net_id: int,
) -> Callable[[int, float, int, List[int], List[float], List[int]], int]:
    """Return the ``Cost_trad`` buffered expansion callback over flat indices.

    One step costs ``alpha * ((base + congestion) + guide)`` exactly as
    :meth:`CostModel.step_cost_index` computes it (same operation order, so
    flat and legacy searches agree bitwise).  Successors are written into
    the caller's preallocated buffers (the :class:`~repro.search.SearchCore`
    buffered protocol) -- the hot loop allocates nothing.  With numpy
    acceleration on, the per-successor congestion reads are hoisted into a
    per-search :meth:`CostModel.congestion_snapshot`; the guide penalty
    always comes from the per-net flat table (lazily filled).  Shared by
    the maze adapter and (with the color terms layered on top) the
    color-state / DAC-2012 adapters.
    """
    neighbor_table = grid.neighbor_table()
    blocked = grid.blocked_buffer()
    base_costs = cost_model.base_cost_table()
    rules = grid.rules
    alpha = rules.alpha
    plane = grid.plane_size
    # All-zero for unguided nets, so the hot loop adds unconditionally
    # (bitwise identical to the legacy ``step + 0.0``).
    guide_table = cost_model.guide_penalty_table(net_name)
    congestion_table = cost_model.congestion_snapshot(net_id)

    if congestion_table is not None:

        def expand(
            node: int,
            g: float,
            _aux: int,
            out_node: List[int],
            out_cost: List[float],
            out_aux: List[int],
        ) -> int:
            base_row = base_costs[node // plane]
            slot = node * NUM_DIRECTIONS
            count = 0
            for direction in range(NUM_DIRECTIONS):
                succ = neighbor_table[slot + direction]
                if succ < 0 or blocked[succ]:
                    continue
                step = base_row[direction] + congestion_table[succ]
                step = step + guide_table[succ]
                out_node[count] = succ
                out_cost[count] = g + alpha * step
                out_aux[count] = 0
                count += 1
            return count

        return attach_native_spec(
            expand, MODE_TRADITIONAL, grid, cost_model, net_name, net_id
        )

    # Pure-Python fallback: per-successor congestion reads from the live
    # buffers (identical arithmetic to the snapshot, evaluated lazily).
    history = grid.history_buffer()
    owner = grid.owner_buffer()
    history_weight = rules.history_weight
    occupancy_penalty = rules.occupancy_penalty

    def expand(
        node: int,
        g: float,
        _aux: int,
        out_node: List[int],
        out_cost: List[float],
        out_aux: List[int],
    ) -> int:
        base_row = base_costs[node // plane]
        slot = node * NUM_DIRECTIONS
        count = 0
        for direction in range(NUM_DIRECTIONS):
            succ = neighbor_table[slot + direction]
            if succ < 0 or blocked[succ]:
                continue
            congestion = history_weight * history[succ]
            holder = owner[succ]
            if holder != 0 and holder != net_id:
                congestion += occupancy_penalty
            step = base_row[direction] + congestion
            step = step + guide_table[succ]
            out_node[count] = succ
            out_cost[count] = g + alpha * step
            out_aux[count] = 0
            count += 1
        return count

    return expand
