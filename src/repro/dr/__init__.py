"""Detailed routing substrate (Dr.CU-like).

This package provides the host detailed router that the paper integrates
Mr.TPL into: a sequential, negotiation-based track-graph router with

* a shared cost model (traditional cost, congestion/history, guide penalty),
* a multi-source maze search for multi-pin nets,
* net scheduling,
* a rip-up-and-reroute loop driven by shorts/overlaps,
* a design-rule checker for the routed result.

The plain :class:`DetailedRouter` is TPL-unaware; it is used (a) standalone
to produce the routed-then-decomposed layouts of the Table III comparison and
(b) as the structural template that :class:`repro.tpl.MrTPLRouter` extends
with color states.
"""

from repro.dr.cost import CostModel
from repro.dr.maze import MazeRouter, SearchResult
from repro.dr.router import DetailedRouter
from repro.dr.drc import DRCChecker, Violation

__all__ = [
    "CostModel",
    "MazeRouter",
    "SearchResult",
    "DetailedRouter",
    "DRCChecker",
    "Violation",
]
