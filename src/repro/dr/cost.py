"""The shared detailed-routing cost model and search heuristics.

Implements the ``Cost_trad`` term of the paper's Eq. (1) plus the penalties
every negotiation-based detailed router applies: accumulated history cost,
soft occupancy (short) cost, and the out-of-guide penalty from the ISPD
contest cost model.  The stitch and color terms are layered on top by the
TPL-aware routers; the plain router uses this model unchanged.

The model exposes two equivalent query surfaces:

* the legacy :class:`~repro.geometry.GridPoint` methods, kept for tests,
  evaluation and the reference search engines, and
* flat-index variants (``*_index``) used by :class:`repro.search.SearchCore`
  adapters, backed by a precomputed per-layer base-cost table and a per-net
  out-of-guide memo so the search hot path performs no geometry work.

Both surfaces share one arithmetic path (the GridPoint methods convert and
delegate), so legacy and flat-index searches produce bit-identical costs.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.accel import get_numpy
from repro.geometry import GridPoint
from repro.gr.guide import GuideSet
from repro.grid import ALL_DIRECTIONS, DIRECTION_INDEX, Direction, RoutingGrid


@dataclass(frozen=True)
class TargetBounds:
    """Bounding box of a target vertex set, used for the A* lower bound.

    The distance from a vertex to the box is an admissible lower bound on the
    distance to the nearest target, and it is O(1) to evaluate regardless of
    how many target vertices the search has (a multi-pin net can expose
    dozens of access vertices at once).
    """

    min_layer: int
    max_layer: int
    min_col: int
    max_col: int
    min_row: int
    max_row: int

    @classmethod
    def from_targets(cls, targets: Iterable[GridPoint]) -> Optional["TargetBounds"]:
        """Build bounds from a target set; ``None`` for an empty set."""
        targets = list(targets)
        if not targets:
            return None
        return cls(
            min_layer=min(t.layer for t in targets),
            max_layer=max(t.layer for t in targets),
            min_col=min(t.col for t in targets),
            max_col=max(t.col for t in targets),
            min_row=min(t.row for t in targets),
            max_row=max(t.row for t in targets),
        )

    def components_from(self, vertex: GridPoint) -> "tuple[float, float]":
        """Return ``(planar_distance, layer_distance)`` from *vertex* to the box."""
        dcol = max(self.min_col - vertex.col, 0, vertex.col - self.max_col)
        drow = max(self.min_row - vertex.row, 0, vertex.row - self.max_row)
        dlayer = max(self.min_layer - vertex.layer, 0, vertex.layer - self.max_layer)
        return float(dcol + drow), float(dlayer)


class CostModel:
    """Edge-cost evaluator bound to one grid and (optionally) a guide set."""

    def __init__(self, grid: RoutingGrid, guides: Optional[GuideSet] = None) -> None:
        self.grid = grid
        self.rules = grid.rules
        self.guides = guides
        self._base_cost_table: Optional[List[List[float]]] = None
        # Per-net memo of the out-of-guide penalty per flat index.  Guides
        # are immutable once built, so entries never invalidate.
        self._guide_memos: Dict[str, Dict[int, float]] = {}
        # Per-net flat guide-penalty tables, computed eagerly from the guide
        # rectangles; the buffer-protocol expand callbacks index these
        # instead of hashing a dict per successor.  Entries never
        # invalidate either.  All unguided nets share one all-zero table
        # (read-only by contract), so only guided nets pay O(V) memory.
        self._guide_tables: Dict[str, List[float]] = {}
        self._unguided_table: Optional[List[float]] = None
        # Cached grid-axis -> gcell-axis run decomposition (see
        # :meth:`_gcell_axis_runs`).
        self._gcell_runs: Optional[Tuple[Dict[int, Tuple[int, int]], Dict[int, Tuple[int, int]]]] = None
        # Snapshot caches keyed on the grid's mutation epoch: while the grid
        # is unchanged (all searches of one un-committed net; every net of a
        # batch routed against a frozen snapshot) the per-net congestion and
        # color-pressure tables stay exact and are reused instead of being
        # rebuilt per search.  ``_snap_epoch`` guards all four entries.
        self._snap_epoch = -1
        self._congestion_parts: Optional[Tuple[object, object, object]] = None
        self._pressure_base: Optional[object] = None
        self._congestion_lists: Dict[int, List[float]] = {}
        self._pressure_lists: Dict[int, List[float]] = {}
        # ``array('d')`` twins of the snapshot tables and guide tables for
        # the native kernel (C reads them through the buffer protocol; the
        # Python expand closures keep indexing the plain lists, whose reads
        # return cached float objects).  Same cache keying/eviction as the
        # list caches; the flattened base-cost table never invalidates.
        self._congestion_arrs: Dict[int, array] = {}
        self._pressure_arrs: Dict[int, array] = {}
        self._guide_arrs: Dict[str, array] = {}
        self._unguided_arr: Optional[array] = None
        self._base_cost_flat: Optional[array] = None

    #: Cap on cached per-net snapshot lists per epoch; a batch larger than
    #: this simply rebuilds the oldest tables (correctness is unaffected).
    _SNAPSHOT_CACHE_LIMIT = 256

    def _refresh_snapshot_epoch(self) -> None:
        epoch = self.grid.mutation_epoch
        if epoch != self._snap_epoch:
            self._snap_epoch = epoch
            self._congestion_parts = None
            self._pressure_base = None
            self._congestion_lists.clear()
            self._pressure_lists.clear()
            self._congestion_arrs.clear()
            self._pressure_arrs.clear()
        elif (
            len(self._congestion_lists) > self._SNAPSHOT_CACHE_LIMIT
            or len(self._pressure_lists) > self._SNAPSHOT_CACHE_LIMIT
        ):
            self._congestion_lists.clear()
            self._pressure_lists.clear()
            self._congestion_arrs.clear()
            self._pressure_arrs.clear()

    # ------------------------------------------------------------------
    # Flat-index query surface (search hot path)
    # ------------------------------------------------------------------

    def base_cost_table(self) -> List[List[float]]:
        """Return ``table[layer][direction_index] -> Cost_trad`` base cost.

        Mirrors :meth:`RoutingGrid.base_edge_cost` for every layer and all
        six :data:`~repro.grid.ALL_DIRECTIONS` slots; built once, lazily.
        """
        if self._base_cost_table is None:
            table: List[List[float]] = []
            for layer in self.grid.tech.layers[: self.grid.num_layers]:
                row: List[float] = []
                for direction in ALL_DIRECTIONS:
                    if direction.is_via:
                        row.append(self.rules.via_cost)
                    else:
                        preferred = (
                            layer.is_horizontal and direction.is_horizontal
                            or layer.is_vertical and direction.is_vertical
                        )
                        row.append(1.0 if preferred else self.rules.wrong_way_penalty)
                table.append(row)
            self._base_cost_table = table
        return self._base_cost_table

    def guide_memo(self, net_name: str) -> Dict[int, float]:
        """Return the mutable per-net ``index -> out-of-guide penalty`` memo.

        Search adapters fill it lazily while expanding; entries persist
        across the searches of one net (and across rip-up & reroute, since
        the guide region of a net never changes).
        """
        memo = self._guide_memos.get(net_name)
        if memo is None:
            memo = {}
            self._guide_memos[net_name] = memo
        return memo

    def _gcell_axis_runs(
        self,
    ) -> Tuple[Dict[int, Tuple[int, int]], Dict[int, Tuple[int, int]]]:
        """Return ``(col runs by gx, row runs by gy)`` for the guide gcells.

        Each run is the contiguous ``(lo, hi)`` range of grid columns/rows
        whose physical track coordinate maps into that gcell column/row --
        computed through :meth:`GCellGrid.cell_of_point`'s exact clamped
        arithmetic (the axes are independent), so table entries agree
        bitwise with per-point ``covers_point`` queries.
        """
        if self._gcell_runs is not None:
            return self._gcell_runs
        gcells = self.guides.gcell_grid
        grid = self.grid
        size = gcells.gcell_size

        def axis_runs(count: int, grid_origin: int, gcell_origin: int, limit: int):
            runs: Dict[int, Tuple[int, int]] = {}
            for ordinal in range(count):
                coordinate = grid_origin + ordinal * grid.pitch
                bucket = min(max((coordinate - gcell_origin) // size, 0), limit - 1)
                lo, _hi = runs.get(bucket, (ordinal, ordinal))
                runs[bucket] = (lo, ordinal)
            return runs

        self._gcell_runs = (
            axis_runs(grid.num_cols, grid.origin.x, gcells.origin.x, gcells.num_gx),
            axis_runs(grid.num_rows, grid.origin.y, gcells.origin.y, gcells.num_gy),
        )
        return self._gcell_runs

    def guide_penalty_table(self, net_name: str) -> List[float]:
        """Return the per-net flat ``index -> out-of-guide penalty`` table.

        Built once per net directly from the guide's gcells -- every vertex
        inside a guide cell is zeroed with slice assignments, everything
        else keeps the out-of-guide penalty -- and cached for the life of
        the model, since a net's guide region never changes.  A plain list
        indexed by flat vertex index, so the expand hot path pays one list
        read per step with no dict hash and no geometry work.
        """
        table = self._guide_tables.get(net_name)
        if table is not None:
            return table
        grid = self.grid
        num_vertices = grid.num_vertices
        guide = self.guides.guide_of(net_name) if self.guides is not None else None
        if guide is None or not guide.cells:
            # Unguided nets are everywhere in-guide (no penalty); they all
            # share one zero table since callers only read it.
            if self._unguided_table is None:
                self._unguided_table = [0.0] * num_vertices
            return self._unguided_table
        table = [self.rules.out_of_guide_penalty] * num_vertices
        col_runs, row_runs = self._gcell_axis_runs()
        cols, rows = grid.num_cols, grid.num_rows
        num_layers = grid.num_layers
        zero_rows: Dict[int, List[float]] = {}
        for cell in guide.cells:
            if not 0 <= cell.layer < num_layers:
                continue
            col_span = col_runs.get(cell.gx)
            row_span = row_runs.get(cell.gy)
            if col_span is None or row_span is None:
                continue
            row_lo, row_hi = row_span
            span = row_hi - row_lo + 1
            zeros = zero_rows.get(span)
            if zeros is None:
                zeros = [0.0] * span
                zero_rows[span] = zeros
            layer_base = cell.layer * cols
            for col in range(col_span[0], col_span[1] + 1):
                base = (layer_base + col) * rows + row_lo
                table[base : base + span] = zeros
        self._guide_tables[net_name] = table
        return table

    def congestion_snapshot(self, net_id: int) -> Optional[List[float]]:
        """Return per-vertex congestion (history + foreign-occupancy) costs.

        A vectorised per-search hoist of the ``history_weight * history +
        occupancy_penalty`` arithmetic every expand callback performs per
        successor: grid state is frozen for the duration of one search, so
        the whole map can be computed once up front.  The element-wise
        operations (one multiply, one conditional add) match the scalar
        fallback exactly, keeping costs bit-identical.

        Returns ``None`` when numpy acceleration is off -- callers then keep
        the per-successor buffer reads (same arithmetic, lazily).

        Cached on the grid's :attr:`~repro.grid.RoutingGrid.mutation_epoch`:
        the all-foreign base map (one multiply + one masked add) is shared
        by every net of an unchanged epoch, and each net's table patches
        only its own single-owner vertices back to the pure history value --
        bit-identical to the direct per-net computation, because the patch
        reassigns the exact pre-add product instead of subtracting.
        """
        np = get_numpy()
        if np is None:
            return None
        self._refresh_snapshot_epoch()
        cached = self._congestion_lists.get(net_id)
        if cached is not None:
            return cached
        grid = self.grid
        if self._congestion_parts is None:
            history = np.frombuffer(grid.history_buffer())
            owner = np.frombuffer(grid.owner_buffer(), dtype=np.intc)
            scaled = self.rules.history_weight * history
            base = scaled.copy()
            base[owner != 0] += self.rules.occupancy_penalty
            self._congestion_parts = (scaled, base, owner)
        scaled, base, owner = self._congestion_parts
        table = base.tolist()
        # net_id 0 never owns a vertex (ids are interned from 1), so the
        # patch loop is skipped for unknown nets.
        own_indices = np.flatnonzero(owner == net_id) if net_id > 0 else np.empty(0, int)
        if own_indices.size:
            for index, value in zip(own_indices.tolist(), scaled[own_indices].tolist()):
                table[index] = value
        self._congestion_lists[net_id] = table
        return table

    def color_pressure_snapshot(self, net_id: int) -> Optional[List[float]]:
        """Return the ``gamma``-weighted color pressure map for *net_id*.

        Flat list of ``3 * num_vertices`` entries (3 masks per vertex):
        ``gamma * max(pressure - own_contribution, 0)``, the exact per-mask
        conflict term the color-state and DAC-2012 expands evaluate per
        successor.  The bulk of the map is one vectorised multiply; the
        sparse per-net overlay corrections reuse the scalar expression of
        :meth:`RoutingGrid.color_costs_index` verbatim, so every entry is
        bit-identical to the lazy path.

        Returns ``None`` when numpy acceleration is off.

        Cached on the grid's :attr:`~repro.grid.RoutingGrid.mutation_epoch`
        like :meth:`congestion_snapshot`: the ``gamma``-weighted base map is
        built once per epoch and shared, each net then pays only one list
        copy plus its sparse overlay corrections.
        """
        np = get_numpy()
        if np is None:
            return None
        self._refresh_snapshot_epoch()
        cached = self._pressure_lists.get(net_id)
        if cached is not None:
            return cached
        grid = self.grid
        pressure = grid.pressure_buffer()
        gamma = self.rules.gamma
        if self._pressure_base is None:
            self._pressure_base = gamma * np.frombuffer(pressure)
        weighted = self._pressure_base.tolist()
        for index, own in grid.net_pressure_overlay(net_id).items():
            base = 3 * index
            weighted[base] = gamma * max(pressure[base] - own[0], 0.0)
            weighted[base + 1] = gamma * max(pressure[base + 1] - own[1], 0.0)
            weighted[base + 2] = gamma * max(pressure[base + 2] - own[2], 0.0)
        self._pressure_lists[net_id] = weighted
        return weighted

    # -- array('d') twins for the native kernel -------------------------

    def base_cost_flat(self) -> array:
        """Return :meth:`base_cost_table` flattened to one ``array('d')``.

        ``num_layers * 6`` entries, row-major by layer; built once.
        """
        if self._base_cost_flat is None:
            flat = array("d")
            for row in self.base_cost_table():
                flat.extend(row)
            self._base_cost_flat = flat
        return self._base_cost_flat

    def congestion_snapshot_flat(self, net_id: int) -> Optional[array]:
        """Return :meth:`congestion_snapshot` as an ``array('d')`` buffer.

        Same values, caching and ``None``-when-numpy-off contract as the
        list variant (the conversion is one C-level copy per net/epoch).
        """
        cached = self._congestion_arrs.get(net_id)
        if cached is not None:
            return cached
        table = self.congestion_snapshot(net_id)
        if table is None:
            return None
        buffer = array("d", table)
        self._congestion_arrs[net_id] = buffer
        return buffer

    def color_pressure_snapshot_flat(self, net_id: int) -> Optional[array]:
        """Return :meth:`color_pressure_snapshot` as an ``array('d')`` buffer."""
        cached = self._pressure_arrs.get(net_id)
        if cached is not None:
            return cached
        table = self.color_pressure_snapshot(net_id)
        if table is None:
            return None
        buffer = array("d", table)
        self._pressure_arrs[net_id] = buffer
        return buffer

    def guide_penalty_flat(self, net_name: str) -> array:
        """Return :meth:`guide_penalty_table` as an ``array('d')`` buffer.

        Cached for the life of the model like the list variant (guide
        regions never change); unguided nets share one all-zero buffer.
        """
        cached = self._guide_arrs.get(net_name)
        if cached is not None:
            return cached
        table = self.guide_penalty_table(net_name)
        if table is self._unguided_table:
            if self._unguided_arr is None:
                self._unguided_arr = array("d", table)
            return self._unguided_arr
        buffer = array("d", table)
        self._guide_arrs[net_name] = buffer
        return buffer

    def out_of_guide_cost_index(self, index: int, net_name: str) -> float:
        """Compute (uncached) the out-of-guide penalty at flat *index*."""
        if self.guides is None:
            return 0.0
        vertex = self.grid.vertex_of(index)
        point = self.grid.physical_point(vertex)
        if self.guides.covers_point(net_name, vertex.layer, point):
            return 0.0
        return self.rules.out_of_guide_penalty

    def step_cost_index(
        self, layer: int, direction_index: int, neighbor_index: int,
        net_name: str, net_id: int,
    ) -> float:
        """Return ``alpha * Cost_trad`` of one step in flat-index space.

        The reference implementation of the arithmetic the search adapters
        inline: ``alpha * ((base + congestion) + guide)``, with the addition
        order kept identical everywhere so results are bit-reproducible.
        """
        base = self.base_cost_table()[layer][direction_index]
        congestion = self.grid.congestion_cost_index(neighbor_index, net_id)
        memo = self.guide_memo(net_name)
        guide = memo.get(neighbor_index)
        if guide is None:
            guide = self.out_of_guide_cost_index(neighbor_index, net_name)
            memo[neighbor_index] = guide
        cost = base + congestion
        cost = cost + guide
        return self.rules.alpha * cost

    # ------------------------------------------------------------------
    # GridPoint query surface (legacy engines, tests, evaluation)
    # ------------------------------------------------------------------

    def traditional_cost(
        self,
        vertex: GridPoint,
        direction: Direction,
        neighbor: GridPoint,
        net_name: str,
    ) -> float:
        """Return ``Cost_trad`` of stepping ``vertex -> neighbor`` for *net_name*.

        Components: base wirelength / wrong-way / via cost, history cost and
        soft occupancy at the destination, and the out-of-guide penalty when
        the destination leaves the net's GR guide.
        """
        cost = self.grid.base_edge_cost(vertex, direction)
        cost += self.grid.congestion_cost(neighbor, net_name)
        cost += self.out_of_guide_cost(neighbor, net_name)
        return cost

    def weighted_traditional_cost(
        self,
        vertex: GridPoint,
        direction: Direction,
        neighbor: GridPoint,
        net_name: str,
    ) -> float:
        """Return ``alpha * Cost_trad`` (the Eq. 1 weighting applied)."""
        if not self.grid.in_bounds(neighbor):
            # Out-of-grid destination: no flat index exists, fall back to the
            # pure-GridPoint arithmetic (same result, no buffer reads).
            return self.rules.alpha * self.traditional_cost(
                vertex, direction, neighbor, net_name
            )
        return self.step_cost_index(
            vertex.layer,
            DIRECTION_INDEX[direction],
            self.grid.index_of(neighbor),
            net_name,
            self.grid.net_id_if_known(net_name),
        )

    def out_of_guide_cost(self, vertex: GridPoint, net_name: str) -> float:
        """Return the penalty for *vertex* lying outside the net's guide."""
        if self.guides is None:
            return 0.0
        point = self.grid.physical_point(vertex)
        if self.guides.covers_point(net_name, vertex.layer, point):
            return 0.0
        return self.rules.out_of_guide_penalty

    def stitch_cost(self) -> float:
        """Return ``beta * stitch_cost``: the weighted cost of one stitch."""
        return self.rules.beta * self.rules.stitch_cost

    def color_costs(self, vertex: GridPoint, net_name: str) -> list:
        """Return ``gamma * Cost_color`` for each of the three masks at *vertex*."""
        return [self.rules.gamma * c for c in self.grid.color_costs(vertex, net_name)]

    def color_costs_index(self, index: int, net_id: int) -> List[float]:
        """Flat-index variant of :meth:`color_costs`."""
        return [self.rules.gamma * c for c in self.grid.color_costs_index(index, net_id)]

    def is_usable(self, vertex: GridPoint) -> bool:
        """Return ``True`` when *vertex* is not hard-blocked."""
        return not self.grid.is_blocked(vertex)

    def heuristic(self, vertex: GridPoint, targets: list) -> float:
        """Return an admissible lower bound from *vertex* to the nearest target.

        Uses planar Manhattan distance plus the via distance scaled by the via
        cost; both are exact lower bounds on the remaining traditional cost,
        so A* with this heuristic returns minimum-cost paths.
        """
        if not targets:
            return 0.0
        best = float("inf")
        for target in targets:
            planar = abs(vertex.col - target.col) + abs(vertex.row - target.row)
            vias = abs(vertex.layer - target.layer) * self.rules.via_cost
            best = min(best, planar + vias)
        return self.rules.alpha * best

    def heuristic_bounds(self, vertex: GridPoint, bounds: Optional[TargetBounds]) -> float:
        """Return the O(1) admissible lower bound towards a target bounding box."""
        if bounds is None:
            return 0.0
        planar, layers = bounds.components_from(vertex)
        return self.rules.alpha * (planar + layers * self.rules.via_cost)
