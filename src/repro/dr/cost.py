"""The shared detailed-routing cost model and search heuristics.

Implements the ``Cost_trad`` term of the paper's Eq. (1) plus the penalties
every negotiation-based detailed router applies: accumulated history cost,
soft occupancy (short) cost, and the out-of-guide penalty from the ISPD
contest cost model.  The stitch and color terms are layered on top by the
TPL-aware routers; the plain router uses this model unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry import GridPoint
from repro.gr.guide import GuideSet
from repro.grid import Direction, RoutingGrid


@dataclass(frozen=True)
class TargetBounds:
    """Bounding box of a target vertex set, used for the A* lower bound.

    The distance from a vertex to the box is an admissible lower bound on the
    distance to the nearest target, and it is O(1) to evaluate regardless of
    how many target vertices the search has (a multi-pin net can expose
    dozens of access vertices at once).
    """

    min_layer: int
    max_layer: int
    min_col: int
    max_col: int
    min_row: int
    max_row: int

    @classmethod
    def from_targets(cls, targets: Iterable[GridPoint]) -> Optional["TargetBounds"]:
        """Build bounds from a target set; ``None`` for an empty set."""
        targets = list(targets)
        if not targets:
            return None
        return cls(
            min_layer=min(t.layer for t in targets),
            max_layer=max(t.layer for t in targets),
            min_col=min(t.col for t in targets),
            max_col=max(t.col for t in targets),
            min_row=min(t.row for t in targets),
            max_row=max(t.row for t in targets),
        )

    def components_from(self, vertex: GridPoint) -> "tuple[float, float]":
        """Return ``(planar_distance, layer_distance)`` from *vertex* to the box."""
        dcol = max(self.min_col - vertex.col, 0, vertex.col - self.max_col)
        drow = max(self.min_row - vertex.row, 0, vertex.row - self.max_row)
        dlayer = max(self.min_layer - vertex.layer, 0, vertex.layer - self.max_layer)
        return float(dcol + drow), float(dlayer)


class CostModel:
    """Edge-cost evaluator bound to one grid and (optionally) a guide set."""

    def __init__(self, grid: RoutingGrid, guides: Optional[GuideSet] = None) -> None:
        self.grid = grid
        self.rules = grid.rules
        self.guides = guides

    def traditional_cost(
        self,
        vertex: GridPoint,
        direction: Direction,
        neighbor: GridPoint,
        net_name: str,
    ) -> float:
        """Return ``Cost_trad`` of stepping ``vertex -> neighbor`` for *net_name*.

        Components: base wirelength / wrong-way / via cost, history cost and
        soft occupancy at the destination, and the out-of-guide penalty when
        the destination leaves the net's GR guide.
        """
        cost = self.grid.base_edge_cost(vertex, direction)
        cost += self.grid.congestion_cost(neighbor, net_name)
        cost += self.out_of_guide_cost(neighbor, net_name)
        return cost

    def weighted_traditional_cost(
        self,
        vertex: GridPoint,
        direction: Direction,
        neighbor: GridPoint,
        net_name: str,
    ) -> float:
        """Return ``alpha * Cost_trad`` (the Eq. 1 weighting applied)."""
        return self.rules.alpha * self.traditional_cost(vertex, direction, neighbor, net_name)

    def out_of_guide_cost(self, vertex: GridPoint, net_name: str) -> float:
        """Return the penalty for *vertex* lying outside the net's guide."""
        if self.guides is None:
            return 0.0
        point = self.grid.physical_point(vertex)
        if self.guides.covers_point(net_name, vertex.layer, point):
            return 0.0
        return self.rules.out_of_guide_penalty

    def stitch_cost(self) -> float:
        """Return ``beta * stitch_cost``: the weighted cost of one stitch."""
        return self.rules.beta * self.rules.stitch_cost

    def color_costs(self, vertex: GridPoint, net_name: str) -> list:
        """Return ``gamma * Cost_color`` for each of the three masks at *vertex*."""
        return [self.rules.gamma * c for c in self.grid.color_costs(vertex, net_name)]

    def is_usable(self, vertex: GridPoint) -> bool:
        """Return ``True`` when *vertex* is not hard-blocked."""
        return not self.grid.is_blocked(vertex)

    def heuristic(self, vertex: GridPoint, targets: list) -> float:
        """Return an admissible lower bound from *vertex* to the nearest target.

        Uses planar Manhattan distance plus the via distance scaled by the via
        cost; both are exact lower bounds on the remaining traditional cost,
        so A* with this heuristic returns minimum-cost paths.
        """
        if not targets:
            return 0.0
        best = float("inf")
        for target in targets:
            planar = abs(vertex.col - target.col) + abs(vertex.row - target.row)
            vias = abs(vertex.layer - target.layer) * self.rules.via_cost
            best = min(best, planar + vias)
        return self.rules.alpha * best

    def heuristic_bounds(self, vertex: GridPoint, bounds: Optional[TargetBounds]) -> float:
        """Return the O(1) admissible lower bound towards a target bounding box."""
        if bounds is None:
            return 0.0
        planar, layers = bounds.components_from(vertex)
        return self.rules.alpha * (planar + layers * self.rules.via_cost)
