"""Design-rule checking of routed results.

The checker reports the violations that feed the ISPD-style cost score and
the rip-up decisions:

* **shorts** -- two different nets occupying the same grid vertex,
* **spacing violations** -- metal of different nets closer than the minimum
  spacing (excluding exact overlap, which is already a short),
* **open nets** -- nets whose routed metal does not connect all pins,
* **off-track / out-of-guide** statistics used by the contest score.

Color-specific checks (same-mask spacing) live in :mod:`repro.tpl.conflict`
because they depend on the mask assignment, not only the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.design import Design
from repro.geometry import GridPoint, Rect, SpatialIndex
from repro.gr.guide import GuideSet
from repro.grid import NetRoute, RoutingGrid, RoutingSolution


@dataclass(frozen=True)
class Violation:
    """One design-rule violation."""

    kind: str
    nets: Tuple[str, ...]
    location: GridPoint
    detail: str = ""


class DRCChecker:
    """Checks a :class:`RoutingSolution` against the grid and design rules."""

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        guides: Optional[GuideSet] = None,
    ) -> None:
        self.design = design
        self.grid = grid
        self.guides = guides
        self.rules = grid.rules

    # -- individual checks -----------------------------------------------------

    def find_shorts(self, solution: RoutingSolution) -> List[Violation]:
        """Return a violation for every vertex shared by two or more nets."""
        return self._scan(solution)[0]

    def find_spacing_violations(self, solution: RoutingSolution) -> List[Violation]:
        """Return violations for different-net metal closer than ``min_spacing``.

        The check works in grid space: two vertices of different nets on the
        same layer whose physical spacing (centre distance minus wire width)
        is below the minimum spacing violate the rule.  Vertices of the same
        net never violate spacing against themselves.
        """
        return self._scan(solution)[1]

    def _scan(self, solution: RoutingSolution) -> Tuple[List[Violation], List[Violation]]:
        """Compute shorts and spacing violations in one walk over the routes.

        One traversal fills both the vertex-ownership map (shorts) and the
        per-layer spatial index (spacing), so :meth:`check` / :meth:`summary`
        pay a single pass instead of one per violation kind.
        """
        ownership: Dict[GridPoint, Set[str]] = {}
        min_spacing = self.rules.min_spacing
        per_layer: Dict[int, SpatialIndex] = {
            layer: SpatialIndex(bucket_size=max(self.grid.pitch * 8, 16))
            for layer in range(self.grid.num_layers)
        }
        for route in solution.routes.values():
            spacing_checked = route.routed and min_spacing > 0
            for vertex in route.vertices:
                ownership.setdefault(vertex, set()).add(route.net_name)
                if spacing_checked:
                    rect = self.grid.vertex_rect(vertex)
                    per_layer[vertex.layer].insert(rect, (route.net_name, vertex))

        shorts: List[Violation] = []
        for vertex, owners in ownership.items():
            if len(owners) > 1:
                shorts.append(
                    Violation(
                        kind="short",
                        nets=tuple(sorted(owners)),
                        location=vertex,
                        detail=f"{len(owners)} nets overlap",
                    )
                )

        spacing: List[Violation] = []
        if min_spacing <= 0:
            return shorts, spacing
        seen: Set[Tuple[str, str, GridPoint, GridPoint]] = set()
        for route in solution.routed_nets():
            for vertex in route.vertices:
                rect = self.grid.vertex_rect(vertex)
                for _other_rect, (other_net, other_vertex) in per_layer[vertex.layer].within(
                    rect, min_spacing
                ):
                    if other_net == route.net_name:
                        continue
                    if other_vertex == vertex:
                        continue  # exact overlap is reported as a short
                    key = self._pair_key(route.net_name, vertex, other_net, other_vertex)
                    if key in seen:
                        continue
                    seen.add(key)
                    spacing.append(
                        Violation(
                            kind="spacing",
                            nets=tuple(sorted((route.net_name, other_net))),
                            location=vertex,
                            detail=f"below min spacing {min_spacing}",
                        )
                    )
        return shorts, spacing

    def find_open_nets(self, solution: RoutingSolution) -> List[Violation]:
        """Return a violation per net that does not connect all of its pins."""
        violations: List[Violation] = []
        for net in self.design.routable_nets():
            route = solution.routes.get(net.name)
            if route is None or not route.routed:
                location = GridPoint(0, 0, 0)
                violations.append(
                    Violation(kind="open", nets=(net.name,), location=location, detail="unrouted")
                )
                continue
            pin_groups = [self.grid.pin_access_vertices(pin) for pin in net.pins]
            if not route.connects_all(pin_groups):
                anchor = next(iter(route.vertices), GridPoint(0, 0, 0))
                violations.append(
                    Violation(
                        kind="open",
                        nets=(net.name,),
                        location=anchor,
                        detail="routed metal does not connect every pin",
                    )
                )
        return violations

    def out_of_guide_vertices(self, solution: RoutingSolution) -> int:
        """Return the number of routed vertices falling outside their net's guide."""
        if self.guides is None:
            return 0
        return sum(self.route_out_of_guide(route) for route in solution.routed_nets())

    def route_out_of_guide(self, route: NetRoute) -> int:
        """Return the out-of-guide vertex count of one route.

        Per-route building block shared with the incremental checker so the
        guide-coverage rule has exactly one implementation.
        """
        if self.guides is None:
            return 0
        count = 0
        for vertex in route.vertices:
            point = self.grid.physical_point(vertex)
            if not self.guides.covers_point(route.net_name, vertex.layer, point):
                count += 1
        return count

    def wrong_way_edges(self, solution: RoutingSolution) -> int:
        """Return the number of planar edges routed against the preferred direction."""
        return sum(self.route_wrong_way(route) for route in solution.routed_nets())

    def route_wrong_way(self, route: NetRoute) -> int:
        """Return the wrong-way edge count of one route (shared building block)."""
        count = 0
        layers = self.design.tech.layers
        for a, b in route.edges:
            if a.layer != b.layer:
                continue
            layer = layers[a.layer]
            horizontal_move = a.row == b.row
            if layer.is_horizontal and not horizontal_move:
                count += 1
            elif layer.is_vertical and horizontal_move:
                count += 1
        return count

    # -- aggregate -----------------------------------------------------------------

    def check(self, solution: RoutingSolution) -> Dict[str, List[Violation]]:
        """Run every check (one pass) and return violations grouped by kind."""
        shorts, spacing = self._scan(solution)
        return {
            "short": shorts,
            "spacing": spacing,
            "open": self.find_open_nets(solution),
        }

    def summary(
        self,
        solution: RoutingSolution,
        grouped: Optional[Dict[str, List[Violation]]] = None,
    ) -> Dict[str, int]:
        """Return violation counts plus guide / direction statistics.

        Pass a *grouped* result from a previous :meth:`check` of the same,
        unmodified solution to reuse it instead of re-scanning.
        """
        if grouped is None:
            grouped = self.check(solution)
        return {
            "shorts": len(grouped["short"]),
            "spacing": len(grouped["spacing"]),
            "opens": len(grouped["open"]),
            "out_of_guide": self.out_of_guide_vertices(solution),
            "wrong_way": self.wrong_way_edges(solution),
        }

    @staticmethod
    def _pair_key(
        net_a: str, vertex_a: GridPoint, net_b: str, vertex_b: GridPoint
    ) -> Tuple[str, str, GridPoint, GridPoint]:
        if (net_a, vertex_a) <= (net_b, vertex_b):
            return net_a, net_b, vertex_a, vertex_b
        return net_b, net_a, vertex_b, vertex_a
