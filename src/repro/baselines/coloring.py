"""Three-coloring of conflict/stitch graphs for layout decomposition.

The decomposition baseline (OpenMPL-like) reduces mask assignment to graph
coloring: nodes are coloring units (pieces of routed metal), *conflict*
edges connect units of different nets that are closer than ``Dcolor``
(same color on a conflict edge costs a conflict), and *stitch* edges connect
electrically adjacent units of the same net (different colors on a stitch
edge cost a stitch).  The objective is the weighted sum the paper minimises.

Components small enough are solved exactly with branch-and-bound; larger
components fall back to a degree-ordered greedy assignment followed by
iterative single-node improvement, which is the standard structure of
practical decomposers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.tpl.color_state import ALL_COLORS

#: Default weight of one conflict relative to one stitch.
DEFAULT_CONFLICT_WEIGHT = 10.0
DEFAULT_STITCH_WEIGHT = 1.0


@dataclass
class ColoringProblem:
    """A 3-coloring instance over arbitrary hashable node ids."""

    conflict_edges: List[Tuple[Hashable, Hashable]] = field(default_factory=list)
    stitch_edges: List[Tuple[Hashable, Hashable]] = field(default_factory=list)
    fixed_colors: Dict[Hashable, int] = field(default_factory=dict)
    conflict_weight: float = DEFAULT_CONFLICT_WEIGHT
    stitch_weight: float = DEFAULT_STITCH_WEIGHT

    def nodes(self) -> List[Hashable]:
        """Return every node mentioned by an edge or a fixed assignment."""
        seen: Dict[Hashable, None] = {}
        for a, b in self.conflict_edges + self.stitch_edges:
            seen.setdefault(a)
            seen.setdefault(b)
        for node in self.fixed_colors:
            seen.setdefault(node)
        return list(seen)

    def graph(self) -> nx.Graph:
        """Return the combined conflict+stitch graph (edge attr ``kind``)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        for a, b in self.conflict_edges:
            graph.add_edge(a, b, kind="conflict")
        for a, b in self.stitch_edges:
            if graph.has_edge(a, b):
                continue  # a conflict edge dominates
            graph.add_edge(a, b, kind="stitch")
        return graph

    def cost_of(self, assignment: Dict[Hashable, int]) -> float:
        """Return the weighted conflict+stitch cost of a complete assignment."""
        conflicts, stitches = self.count(assignment)
        return conflicts * self.conflict_weight + stitches * self.stitch_weight

    def count(self, assignment: Dict[Hashable, int]) -> Tuple[int, int]:
        """Return ``(conflicts, stitches)`` of a complete assignment."""
        conflicts = sum(
            1
            for a, b in self.conflict_edges
            if assignment.get(a) is not None
            and assignment.get(a) == assignment.get(b)
        )
        stitches = sum(
            1
            for a, b in self.stitch_edges
            if assignment.get(a) is not None
            and assignment.get(b) is not None
            and assignment.get(a) != assignment.get(b)
        )
        return conflicts, stitches


def color_component_exact(
    problem: ColoringProblem,
    nodes: Sequence[Hashable],
    time_budget_nodes: int = 200_000,
) -> Dict[Hashable, int]:
    """Optimally color *nodes* by branch-and-bound over the 3 masks.

    The search assigns nodes in decreasing-degree order and prunes branches
    whose partial cost already exceeds the best complete assignment found.
    ``time_budget_nodes`` caps the number of explored search-tree nodes; on
    exhaustion the best solution found so far is returned (which is still a
    valid, usually near-optimal assignment).
    """
    graph = problem.graph()
    ordered = sorted(nodes, key=lambda n: (-graph.degree(n), str(n)))
    adjacency: Dict[Hashable, List[Tuple[Hashable, str]]] = {
        node: [
            (nbr, graph.edges[node, nbr]["kind"])
            for nbr in graph.neighbors(node)
            if nbr in set(nodes)
        ]
        for node in ordered
    }
    best_assignment: Dict[Hashable, int] = {}
    best_cost = float("inf")
    explored = 0

    def partial_cost(assignment: Dict[Hashable, int], node: Hashable, color: int) -> float:
        cost = 0.0
        for nbr, kind in adjacency[node]:
            nbr_color = assignment.get(nbr)
            if nbr_color is None:
                continue
            if kind == "conflict" and nbr_color == color:
                cost += problem.conflict_weight
            elif kind == "stitch" and nbr_color != color:
                cost += problem.stitch_weight
        return cost

    def branch(index: int, assignment: Dict[Hashable, int], cost: float) -> None:
        nonlocal best_assignment, best_cost, explored
        explored += 1
        if cost >= best_cost or explored > time_budget_nodes:
            return
        if index == len(ordered):
            best_cost = cost
            best_assignment = dict(assignment)
            return
        node = ordered[index]
        fixed = problem.fixed_colors.get(node)
        colors = [fixed] if fixed is not None else list(ALL_COLORS)
        scored = sorted(colors, key=lambda c: partial_cost(assignment, node, c))
        for color in scored:
            delta = partial_cost(assignment, node, color)
            assignment[node] = color
            branch(index + 1, assignment, cost + delta)
            del assignment[node]

    branch(0, dict(problem.fixed_colors), 0.0)
    if not best_assignment:
        # Budget exhausted before any leaf: fall back to greedy.
        return color_component_greedy(problem, nodes)
    return {node: best_assignment[node] for node in nodes}


def color_component_greedy(
    problem: ColoringProblem,
    nodes: Sequence[Hashable],
    improvement_passes: int = 2,
) -> Dict[Hashable, int]:
    """Greedily color *nodes*, then run single-node improvement passes."""
    graph = problem.graph()
    node_set = set(nodes)
    assignment: Dict[Hashable, int] = {
        node: color
        for node, color in problem.fixed_colors.items()
        if node in node_set
    }

    def delta_cost(node: Hashable, color: int) -> float:
        cost = 0.0
        for nbr in graph.neighbors(node):
            nbr_color = assignment.get(nbr)
            if nbr_color is None:
                continue
            kind = graph.edges[node, nbr]["kind"]
            if kind == "conflict" and nbr_color == color:
                cost += problem.conflict_weight
            elif kind == "stitch" and nbr_color != color:
                cost += problem.stitch_weight
        return cost

    ordered = sorted(nodes, key=lambda n: (-graph.degree(n), str(n)))
    for node in ordered:
        if node in assignment:
            continue
        assignment[node] = min(ALL_COLORS, key=lambda c: (delta_cost(node, c), c))

    for _ in range(improvement_passes):
        improved = False
        for node in ordered:
            if node in problem.fixed_colors:
                continue
            current = assignment[node]
            best = min(ALL_COLORS, key=lambda c: (delta_cost_excluding(graph, problem, assignment, node, c), c))
            if best != current and delta_cost_excluding(
                graph, problem, assignment, node, best
            ) < delta_cost_excluding(graph, problem, assignment, node, current):
                assignment[node] = best
                improved = True
        if not improved:
            break
    return {node: assignment[node] for node in nodes}


def delta_cost_excluding(
    graph: nx.Graph,
    problem: ColoringProblem,
    assignment: Dict[Hashable, int],
    node: Hashable,
    color: int,
) -> float:
    """Return the cost contributed by *node* if it were colored *color*."""
    cost = 0.0
    for nbr in graph.neighbors(node):
        nbr_color = assignment.get(nbr)
        if nbr_color is None or nbr == node:
            continue
        kind = graph.edges[node, nbr]["kind"]
        if kind == "conflict" and nbr_color == color:
            cost += problem.conflict_weight
        elif kind == "stitch" and nbr_color != color:
            cost += problem.stitch_weight
    return cost


def solve_coloring(
    problem: ColoringProblem,
    exact_component_limit: int = 14,
) -> Dict[Hashable, int]:
    """Color the whole problem component by component.

    Connected components of the combined graph are independent, so each is
    solved on its own: exactly when it has at most ``exact_component_limit``
    nodes, greedily (with improvement) otherwise.  Isolated nodes receive the
    first mask.
    """
    graph = problem.graph()
    assignment: Dict[Hashable, int] = {}
    for component in nx.connected_components(graph):
        nodes = sorted(component, key=str)
        if len(nodes) <= exact_component_limit:
            assignment.update(color_component_exact(problem, nodes))
        else:
            assignment.update(color_component_greedy(problem, nodes))
    for node in problem.nodes():
        if node not in assignment:
            assignment[node] = problem.fixed_colors.get(node, ALL_COLORS[0])
    return assignment
