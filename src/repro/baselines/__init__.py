"""Baselines the paper compares against.

* :mod:`repro.baselines.dac2012` -- a reproduction of the TPL-aware routing
  approach of Ma et al. (DAC 2012): the routing graph is expanded with one
  plane per mask and nets are decomposed into independently routed 2-pin
  connections whose colors are committed immediately (Table II comparator).
* :mod:`repro.baselines.coloring` -- exact and heuristic 3-coloring of
  conflict/stitch graphs.
* :mod:`repro.baselines.decomposer` -- an OpenMPL-like layout decomposer
  that colors an already-routed (unchanged) layout (Table III comparator).
"""

from repro.baselines.dac2012 import Dac2012Router
from repro.baselines.coloring import (
    ColoringProblem,
    color_component_exact,
    color_component_greedy,
    solve_coloring,
)
from repro.baselines.decomposer import LayoutDecomposer, DecompositionResult

__all__ = [
    "Dac2012Router",
    "ColoringProblem",
    "color_component_exact",
    "color_component_greedy",
    "solve_coloring",
    "LayoutDecomposer",
    "DecompositionResult",
]
