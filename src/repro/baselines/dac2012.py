"""The DAC-2012 style TPL-aware router baseline (Ma et al.).

Ma, Zhang and Wong (DAC 2012) route on a mask-expanded grid: every routing
vertex is split into per-mask copies (their formulation uses 12 copies --
3 masks x 4 directions; this reproduction uses the 3 mask planes, which
preserves the two properties the paper's comparison exploits):

* the search graph is three times larger, so the router is noticeably
  slower than one searching the plain grid with color *states*;
* the method is defined for 2-pin connections: a multi-pin net is broken
  into independent 2-pin connections whose colors are committed as soon as
  each path is found.  Because "2-pin methods cannot dynamically adjust the
  already-colored paths when connecting multiple pins" (paper Section I),
  junctions between sub-paths of the same net frequently disagree on the
  mask and turn into stitches, and the eagerly committed colors leave less
  room to dodge conflicts with neighbouring nets.

The baseline shares the grid, cost weights, guides and evaluation pipeline
with Mr.TPL so the Table II comparison is apples-to-apples.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.campaign import CampaignState
from repro.check import IncrementalConflictChecker
from repro.design import Design, Net
from repro.dr.cost import CostModel, TargetBounds
from repro.dr.maze import make_traditional_expand
from repro.geometry import GridPoint, Point
from repro.gr import GlobalRouter, GuideSet
from repro.gr.steiner import rectilinear_mst
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.native.spec import MODE_MASK_EXPANDED, attach_native_spec
from repro.profiling import PhaseTimes
from repro.sched import GridSink, make_batch_executor
from repro.search import SearchCore
from repro.tpl.color_state import ALL_COLORS
from repro.tpl.conflict import ConflictChecker
from repro.utils import Timer, get_logger

_LOG = get_logger("baselines.dac2012")

#: A search state on the mask-expanded graph: (grid vertex, mask).
MaskedVertex = Tuple[GridPoint, int]


class MaskExpandedSearch:
    """2-pin search on the mask-expanded graph (3 mask planes per vertex).

    A thin adapter over the shared :class:`repro.search.SearchCore`: nodes
    are ``vertex_index * 3 + mask``; every expansion offers the two in-place
    mask switches (a stitch on the expanded graph) followed by the six grid
    moves keeping the mask (each charged the mask's color conflict cost at
    the destination).
    """

    #: Nodes per grid vertex on the mask-expanded graph (the batch
    #: executor's explored-region tracker decodes labels through this).
    node_stride = 3

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 6_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions
        self.core = SearchCore(grid, cost_model, max_expansions)

    def search(
        self,
        sources: List[MaskedVertex],
        targets: Set[GridPoint],
        net_name: str,
    ) -> Optional[List[MaskedVertex]]:
        """Search from *sources* to any vertex of *targets* (any mask).

        Returns the ``(vertex, mask)`` path ordered source-first, or ``None``
        when the search exhausts.
        """
        if not targets:
            return None
        grid = self.grid
        bounds = TargetBounds.from_targets(targets)
        index_of = grid.index_of
        seeds: List[Tuple[int, int]] = []
        for vertex, color in sources:
            seeds.append((index_of(vertex) * 3 + color, 0))
        target_nodes = {
            index_of(t) * 3 + color
            for t in targets
            if grid.in_bounds(t)
            for color in ALL_COLORS
        }

        net_id = grid.net_id(net_name)
        expand = self._make_expand(net_name, net_id)
        self.core.max_expansions = self.max_expansions
        core = self.core.run(
            seeds, target_nodes, expand, bounds=bounds, node_stride=3, buffered=True
        )
        if not core.found:
            return None
        nodes = core.node_path()
        nodes.reverse()
        vertex_of = grid.vertex_of
        return [(vertex_of(node // 3), node % 3) for node in nodes]

    def _make_expand(
        self, net_name: str, net_id: int
    ) -> Callable[[int, float, int, List[int], List[float], List[int]], int]:
        grid = self.grid
        cost_model = self.cost_model
        gamma = grid.rules.gamma
        stitch_penalty = cost_model.stitch_cost()
        pressure_table = cost_model.color_pressure_snapshot(net_id)

        if pressure_table is not None:
            # Accelerated path: the traditional-cost arithmetic is inlined
            # (same operations in the same order as make_traditional_expand)
            # so the hottest expansion of the whole bench -- the 3x larger
            # mask-expanded graph -- pays no delegation call per node.
            from repro.grid import NUM_DIRECTIONS

            neighbor_table = grid.neighbor_table()
            blocked = grid.blocked_buffer()
            base_costs = cost_model.base_cost_table()
            alpha = grid.rules.alpha
            plane = grid.plane_size
            guide_table = cost_model.guide_penalty_table(net_name)
            congestion_table = cost_model.congestion_snapshot(net_id)

            def expand(
                node: int,
                g: float,
                _aux: int,
                out_node: List[int],
                out_cost: List[float],
                out_aux: List[int],
            ) -> int:
                vertex, color = divmod(node, 3)
                vertex_base = 3 * vertex
                count = 0
                # Mask change in place: a stitch on the expanded graph.
                for other_color in ALL_COLORS:
                    if other_color != color:
                        out_node[count] = vertex_base + other_color
                        out_cost[count] = g + stitch_penalty
                        out_aux[count] = 0
                        count += 1
                # Planar and via moves keeping the mask, charged the mask's
                # color conflict cost at the destination.
                base_row = base_costs[vertex // plane]
                slot = vertex * NUM_DIRECTIONS
                for direction in range(NUM_DIRECTIONS):
                    succ = neighbor_table[slot + direction]
                    if succ < 0 or blocked[succ]:
                        continue
                    step = base_row[direction] + congestion_table[succ]
                    step = step + guide_table[succ]
                    out_node[count] = succ * 3 + color
                    out_cost[count] = (g + alpha * step) + pressure_table[3 * succ + color]
                    out_aux[count] = 0
                    count += 1
                return count

            return attach_native_spec(
                expand,
                MODE_MASK_EXPANDED,
                grid,
                cost_model,
                net_name,
                net_id,
                stitch=stitch_penalty,
            )

        # Pure-Python fallback: per-successor pressure/overlay reads, grid
        # moves delegated to the shared traditional expand.
        traditional = make_traditional_expand(grid, cost_model, net_name, net_id)
        # Scratch buffers for the embedded traditional (grid-move) expand;
        # its successors are re-based onto the mask-expanded node space.
        move_node: List[int] = [0] * 8
        move_cost: List[float] = [0.0] * 8
        move_aux: List[int] = [0] * 8
        pressure = grid.pressure_buffer()
        net_pressure_get = grid.net_pressure_overlay(net_id).get

        def expand(
            node: int,
            g: float,
            _aux: int,
            out_node: List[int],
            out_cost: List[float],
            out_aux: List[int],
        ) -> int:
            vertex, color = divmod(node, 3)
            vertex_base = 3 * vertex
            count = 0
            for other_color in ALL_COLORS:
                if other_color != color:
                    out_node[count] = vertex_base + other_color
                    out_cost[count] = g + stitch_penalty
                    out_aux[count] = 0
                    count += 1
            moves = traditional(vertex, g, 0, move_node, move_cost, move_aux)
            for slot in range(moves):
                succ = move_node[slot]
                own = net_pressure_get(succ)
                if own is None:
                    conflict = gamma * pressure[3 * succ + color]
                else:
                    conflict = gamma * max(pressure[3 * succ + color] - own[color], 0.0)
                out_node[count] = succ * 3 + color
                out_cost[count] = move_cost[slot] + conflict
                out_aux[count] = 0
                count += 1
            return count

        return expand


class Dac2012Router:
    """2-pin, mask-expanded-graph TPL-aware router (Table II baseline).

    The ``parallelism`` / ``batch_size`` / ``batch_backend`` knobs switch
    the rip-up loop onto the :mod:`repro.sched` disjoint-batch executor;
    the default keeps the plain sequential loop.  ``batch_backend="auto"``
    or the ``autotune`` knob (``REPRO_AUTOTUNE=probe|full``) hands the
    choice to the self-tuning scheduler (:mod:`repro.sched.autotune`).
    """

    name = "dac2012"

    def __init__(
        self,
        design: Design,
        grid: Optional[RoutingGrid] = None,
        guides: Optional[GuideSet] = None,
        use_global_router: bool = True,
        max_iterations: Optional[int] = None,
        engine: str = "flat",
        parallelism: int = 1,
        batch_size: Optional[int] = None,
        batch_backend: str = "serial",
        batch_policy: str = "prefix",
        min_fork_batch: Optional[int] = None,
        batch_margin: Optional[int] = None,
        autotune: Optional[str] = None,
    ) -> None:
        self.design = design
        self.grid = grid if grid is not None else RoutingGrid(design)
        if guides is None and use_global_router:
            guides = GlobalRouter(design).route()
        self.guides = guides
        self.cost_model = CostModel(self.grid, guides)
        # Full re-scan checker kept as the reference oracle; the rip-up loop
        # consumes the incremental tallies like the host routers do.
        self.conflict_checker = ConflictChecker(design, self.grid)
        self.incremental_conflicts = IncrementalConflictChecker(design, self.grid)
        self.max_iterations = (
            max_iterations
            if max_iterations is not None
            else design.tech.rules.max_ripup_iterations
        )
        self.max_expansions = 6_000_000
        self._engine_kind = engine
        if engine == "flat":
            self.two_pin_engine = MaskExpandedSearch(
                self.grid, self.cost_model, self.max_expansions
            )
        elif engine == "legacy":
            from repro.search.legacy import LegacyMaskExpandedSearch

            self.two_pin_engine = LegacyMaskExpandedSearch(
                self.grid, self.cost_model, self.max_expansions
            )
        else:
            raise ValueError(f"unknown search engine {engine!r}; expected 'flat' or 'legacy'")
        self.batch_executor = make_batch_executor(
            self,
            parallelism,
            batch_size,
            batch_backend,
            batch_policy,
            min_fork_batch=min_fork_batch,
            margin_cells=batch_margin,
            autotune=autotune,
        )
        # Per-phase wall-clock record: shared with the executor's stats when
        # one is engaged, so campaign merges and bench JSON see one record.
        self.phases = (
            self.batch_executor.stats.phases
            if self.batch_executor is not None
            else PhaseTimes()
        )

    # ------------------------------------------------------------------

    def run(
        self,
        *,
        campaign: Optional[CampaignState] = None,
        on_iteration: Optional[Callable[[CampaignState], None]] = None,
    ) -> RoutingSolution:
        """Route and color every net; negotiate conflicts like the host router.

        *campaign* / *on_iteration* follow the shared resumable-campaign
        protocol (see :class:`~repro.campaign.CampaignState`): the hook
        fires after initial routing and after every completed rip-up round,
        and a campaign loaded from a checkpoint resumes at its last
        completed iteration.
        """
        timer = Timer()
        timer.start()
        if campaign is None:
            campaign = CampaignState()
        if campaign.started:
            solution = campaign.solution
        else:
            solution = RoutingSolution(design_name=self.design.name, router_name=self.name)
            campaign.solution = solution
            self._route_many(self.schedule_nets(), solution)
            if on_iteration is not None:
                on_iteration(campaign)

        iterations = campaign.iteration
        for iteration in range(campaign.iteration, self.max_iterations):
            check_started = perf_counter()
            report = self.incremental_conflicts.check(solution)
            self.phases.add("check", perf_counter() - check_started)
            offenders = report.nets_involved()
            offenders.update(route.net_name for route in solution.failed_nets())
            if not offenders:
                break
            iterations = iteration + 1
            # Same negotiation dynamics as the host routers: fade stale
            # history before this iteration's conflicts add fresh evidence.
            self.grid.decay_history(self.grid.rules.history_decay)
            for location in report.conflict_locations():
                self.grid.add_history(location, 1.0)
            for net_name in offenders:
                self.grid.release_net(net_name)
                solution.routes.pop(net_name, None)
            self._route_many(
                [self.design.net_by_name(name) for name in sorted(offenders)], solution
            )
            campaign.iteration = iterations
            if on_iteration is not None:
                on_iteration(campaign)
        # Surface the executor's supervision counters on the campaign
        # before declaring it done (checkpointed or not).
        campaign.update_executor_stats(self.batch_executor)
        campaign.done = True

        for route in solution.routes.values():
            route.recount_stitches()
        solution.iterations = iterations
        solution.runtime_seconds = timer.stop()
        if self.batch_executor is not None:
            self.batch_executor.close()  # release worker threads between runs
        return solution

    def schedule_nets(self) -> List[Net]:
        """Return the same routing order the other routers use."""
        return sorted(
            self.design.routable_nets(),
            key=lambda net: (net.half_perimeter_wirelength(), -net.num_pins, net.name),
        )

    def _route_many(self, nets: List[Net], solution: RoutingSolution) -> None:
        """Route *nets* in order -- batched when an executor is configured."""
        if self.batch_executor is not None:
            self.batch_executor.route_nets(nets, solution)
        else:
            search_started = perf_counter()
            for net in nets:
                solution.add_route(self.route_net(net))
            self.phases.add("search", perf_counter() - search_started)

    def make_search_engine(self) -> Optional[MaskExpandedSearch]:
        """Return a fresh flat mask-expanded engine over this router's grid.

        The batch executor creates one per worker so concurrent searches
        never share label buffers.  ``None`` for the legacy engine, which
        the speculative backends do not support.
        """
        if self._engine_kind != "flat":
            return None
        return MaskExpandedSearch(self.grid, self.cost_model, self.max_expansions)

    def worker_spec(self) -> Tuple[type, Dict[str, object]]:
        """Return ``(router_cls, kwargs)`` rebuilding this router in a worker.

        Used by the snapshot-bootstrapped pool workers, which construct
        their own router over a grid rebuilt from the journal's fold
        snapshot instead of inheriting the parent's through fork.
        """
        return type(self), {
            "guides": self.guides,
            "use_global_router": False,
            "max_iterations": self.max_iterations,
            "engine": self._engine_kind,
        }

    # ------------------------------------------------------------------

    def route_net(self, net: Net) -> NetRoute:
        """Route one net as independent 2-pin connections on the expanded graph.

        Computes the route and commits it to the grid immediately
        (:meth:`compute_route` with the default :class:`GridSink`).
        """
        return self.compute_route(net)

    def compute_route(
        self, net: Net, engine: Optional[object] = None, sink: Optional[object] = None
    ) -> NetRoute:
        """Route one net through *engine*, sending grid commits to *sink*.

        The 2-pin formulation commits each connection's colors as soon as
        the path is found; with a :class:`~repro.sched.commit.RecordingSink`
        those eager commits are logged instead (route-local colors still
        steer the next connection, so the defining limitation is preserved
        bit for bit).
        """
        if engine is None:
            engine = self.two_pin_engine
        if sink is None:
            sink = GridSink(self.grid, net.name)
        route = NetRoute(net_name=net.name)
        pin_groups = [self.grid.pin_access_vertices(pin) for pin in net.pins]
        if any(not group for group in pin_groups):
            route.routed = False
            route.failure_reason = "pin without reachable access vertex"
            return route
        for group in pin_groups:
            route.vertices.update(group)

        for index_a, index_b in self._two_pin_topology(net):
            found = self._route_two_pin(
                pin_groups[index_a], pin_groups[index_b], route, engine, sink
            )
            if not found:
                route.routed = False
                route.failure_reason = (
                    f"2-pin connection {net.pins[index_a].full_name} -> "
                    f"{net.pins[index_b].full_name} failed"
                )
                break

        if route.routed:
            for vertex in route.vertices:
                sink.occupy(vertex)
            route.recount_stitches()
        return route

    def _two_pin_topology(self, net: Net) -> List[Tuple[int, int]]:
        """Decompose the net into 2-pin connections via a Manhattan MST over pins."""
        centers = [pin.center() for pin in net.pins]
        index_of: Dict[Point, int] = {}
        for index, center in enumerate(centers):
            index_of.setdefault(center, index)
        pairs: List[Tuple[int, int]] = []
        for a, b in rectilinear_mst(centers):
            pairs.append((index_of[a], index_of[b]))
        if not pairs and len(net.pins) >= 2:
            pairs = [(i, i + 1) for i in range(len(net.pins) - 1)]
        return pairs

    # ------------------------------------------------------------------

    def _route_two_pin(
        self,
        source_group: List[GridPoint],
        target_group: List[GridPoint],
        route: NetRoute,
        engine: "MaskExpandedSearch",
        sink: object,
    ) -> bool:
        """Route one 2-pin connection on the (vertex, mask) expanded graph.

        The colors of the found path are committed (to the sink) immediately
        -- the defining limitation of the 2-pin formulation.
        """
        net_name = route.net_name
        sources: List[MaskedVertex] = []
        for vertex in source_group:
            if self.grid.is_blocked(vertex):
                continue
            committed = route.vertex_colors.get(vertex)
            colors = [committed] if committed is not None else list(ALL_COLORS)
            for color in colors:
                sources.append((vertex, color))

        engine.max_expansions = self.max_expansions
        path = engine.search(sources, set(target_group), net_name)
        if path is None:
            return False

        previous_vertex: Optional[GridPoint] = None
        for vertex, color in path:
            if previous_vertex is not None and previous_vertex != vertex:
                route.add_edge(previous_vertex, vertex)
            previous_vertex = vertex
            route.set_color(vertex, color)
            sink.set_color(vertex, color)
            sink.occupy(vertex)
        return True
