"""The DAC-2012 style TPL-aware router baseline (Ma et al.).

Ma, Zhang and Wong (DAC 2012) route on a mask-expanded grid: every routing
vertex is split into per-mask copies (their formulation uses 12 copies --
3 masks x 4 directions; this reproduction uses the 3 mask planes, which
preserves the two properties the paper's comparison exploits):

* the search graph is three times larger, so the router is noticeably
  slower than one searching the plain grid with color *states*;
* the method is defined for 2-pin connections: a multi-pin net is broken
  into independent 2-pin connections whose colors are committed as soon as
  each path is found.  Because "2-pin methods cannot dynamically adjust the
  already-colored paths when connecting multiple pins" (paper Section I),
  junctions between sub-paths of the same net frequently disagree on the
  mask and turn into stitches, and the eagerly committed colors leave less
  room to dodge conflicts with neighbouring nets.

The baseline shares the grid, cost weights, guides and evaluation pipeline
with Mr.TPL so the Table II comparison is apples-to-apples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.design import Design, Net
from repro.dr.cost import CostModel, TargetBounds
from repro.geometry import GridPoint, Point
from repro.gr import GlobalRouter, GuideSet
from repro.gr.steiner import rectilinear_mst
from repro.grid import ALL_DIRECTIONS, NetRoute, RoutingGrid, RoutingSolution
from repro.tpl.color_state import ALL_COLORS
from repro.tpl.conflict import ConflictChecker
from repro.utils import Timer, UpdatablePriorityQueue, get_logger

_LOG = get_logger("baselines.dac2012")

#: A search state on the mask-expanded graph: (grid vertex, mask).
MaskedVertex = Tuple[GridPoint, int]


class Dac2012Router:
    """2-pin, mask-expanded-graph TPL-aware router (Table II baseline)."""

    name = "dac2012"

    def __init__(
        self,
        design: Design,
        grid: Optional[RoutingGrid] = None,
        guides: Optional[GuideSet] = None,
        use_global_router: bool = True,
        max_iterations: Optional[int] = None,
    ) -> None:
        self.design = design
        self.grid = grid if grid is not None else RoutingGrid(design)
        if guides is None and use_global_router:
            guides = GlobalRouter(design).route()
        self.guides = guides
        self.cost_model = CostModel(self.grid, guides)
        self.conflict_checker = ConflictChecker(design, self.grid)
        self.max_iterations = (
            max_iterations
            if max_iterations is not None
            else design.tech.rules.max_ripup_iterations
        )
        self.max_expansions = 6_000_000

    # ------------------------------------------------------------------

    def run(self) -> RoutingSolution:
        """Route and color every net; negotiate conflicts like the host router."""
        timer = Timer()
        timer.start()
        solution = RoutingSolution(design_name=self.design.name, router_name=self.name)
        for net in self.schedule_nets():
            solution.add_route(self.route_net(net))

        iterations = 0
        for iteration in range(self.max_iterations):
            report = self.conflict_checker.check(solution)
            offenders = report.nets_involved()
            offenders.update(route.net_name for route in solution.failed_nets())
            if not offenders:
                break
            iterations = iteration + 1
            for location in report.conflict_locations():
                self.grid.add_history(location, 1.0)
            for net_name in offenders:
                self.grid.release_net(net_name)
                solution.routes.pop(net_name, None)
            for net_name in sorted(offenders):
                solution.add_route(self.route_net(self.design.net_by_name(net_name)))

        for route in solution.routes.values():
            route.recount_stitches()
        solution.iterations = iterations
        solution.runtime_seconds = timer.stop()
        return solution

    def schedule_nets(self) -> List[Net]:
        """Return the same routing order the other routers use."""
        return sorted(
            self.design.routable_nets(),
            key=lambda net: (net.half_perimeter_wirelength(), -net.num_pins, net.name),
        )

    # ------------------------------------------------------------------

    def route_net(self, net: Net) -> NetRoute:
        """Route one net as independent 2-pin connections on the expanded graph."""
        route = NetRoute(net_name=net.name)
        pin_groups = [self.grid.pin_access_vertices(pin) for pin in net.pins]
        if any(not group for group in pin_groups):
            route.routed = False
            route.failure_reason = "pin without reachable access vertex"
            return route
        for group in pin_groups:
            route.vertices.update(group)

        for index_a, index_b in self._two_pin_topology(net):
            found = self._route_two_pin(pin_groups[index_a], pin_groups[index_b], route)
            if not found:
                route.routed = False
                route.failure_reason = (
                    f"2-pin connection {net.pins[index_a].full_name} -> "
                    f"{net.pins[index_b].full_name} failed"
                )
                break

        if route.routed:
            for vertex in route.vertices:
                self.grid.occupy(vertex, net.name)
            route.recount_stitches()
        return route

    def _two_pin_topology(self, net: Net) -> List[Tuple[int, int]]:
        """Decompose the net into 2-pin connections via a Manhattan MST over pins."""
        centers = [pin.center() for pin in net.pins]
        index_of: Dict[Point, int] = {}
        for index, center in enumerate(centers):
            index_of.setdefault(center, index)
        pairs: List[Tuple[int, int]] = []
        for a, b in rectilinear_mst(centers):
            pairs.append((index_of[a], index_of[b]))
        if not pairs and len(net.pins) >= 2:
            pairs = [(i, i + 1) for i in range(len(net.pins) - 1)]
        return pairs

    # ------------------------------------------------------------------

    def _route_two_pin(
        self,
        source_group: List[GridPoint],
        target_group: List[GridPoint],
        route: NetRoute,
    ) -> bool:
        """Route one 2-pin connection on the (vertex, mask) expanded graph.

        The colors of the found path are committed to the grid immediately --
        the defining limitation of the 2-pin formulation.
        """
        net_name = route.net_name
        targets = set(target_group)
        bounds = TargetBounds.from_targets(targets)
        queue: UpdatablePriorityQueue = UpdatablePriorityQueue()
        costs: Dict[MaskedVertex, float] = {}
        parents: Dict[MaskedVertex, Optional[MaskedVertex]] = {}

        for vertex in source_group:
            if self.grid.is_blocked(vertex):
                continue
            committed = route.vertex_colors.get(vertex)
            colors = [committed] if committed is not None else list(ALL_COLORS)
            for color in colors:
                state: MaskedVertex = (vertex, color)
                costs[state] = 0.0
                parents[state] = None
                queue.push(state, self.cost_model.heuristic_bounds(vertex, bounds))

        reached: Optional[MaskedVertex] = None
        expansions = 0
        stitch_penalty = self.cost_model.stitch_cost()
        while queue:
            state, _priority = queue.pop()
            vertex, color = state
            cost_here = costs[state]
            expansions += 1
            if vertex in targets:
                reached = state
                break
            if expansions > self.max_expansions:
                break
            # Mask change in place: a stitch on the expanded graph.
            for other_color in ALL_COLORS:
                if other_color == color:
                    continue
                switched: MaskedVertex = (vertex, other_color)
                candidate = cost_here + stitch_penalty
                if candidate < costs.get(switched, float("inf")) - 1e-12:
                    costs[switched] = candidate
                    parents[switched] = state
                    queue.push(
                        switched,
                        candidate + self.cost_model.heuristic_bounds(vertex, bounds),
                    )
            # Planar and via moves keeping the mask.
            for direction in ALL_DIRECTIONS:
                neighbor = self.grid.neighbor(vertex, direction)
                if neighbor is None or self.grid.is_blocked(neighbor):
                    continue
                step = self.cost_model.weighted_traditional_cost(
                    vertex, direction, neighbor, net_name
                )
                step += self.cost_model.color_costs(neighbor, net_name)[color]
                moved: MaskedVertex = (neighbor, color)
                candidate = cost_here + step
                if candidate < costs.get(moved, float("inf")) - 1e-12:
                    costs[moved] = candidate
                    parents[moved] = state
                    queue.push(
                        moved,
                        candidate + self.cost_model.heuristic_bounds(neighbor, bounds),
                    )

        if reached is None:
            return False

        path: List[MaskedVertex] = []
        cursor: Optional[MaskedVertex] = reached
        while cursor is not None:
            path.append(cursor)
            cursor = parents[cursor]
        path.reverse()

        previous_vertex: Optional[GridPoint] = None
        for vertex, color in path:
            if previous_vertex is not None and previous_vertex != vertex:
                route.add_edge(previous_vertex, vertex)
            previous_vertex = vertex
            route.set_color(vertex, color)
            self.grid.set_vertex_color(vertex, net_name, color)
            self.grid.occupy(vertex, net_name)
        return True
