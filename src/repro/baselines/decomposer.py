"""OpenMPL-like layout decomposition of an already-routed layout.

This is the Table III comparator: the layout is routed by a TPL-unaware
detailed router (the paper uses Dr.CU 2.0; here :class:`repro.dr.DetailedRouter`)
and only afterwards assigned to the three masks.  Because "the layout
patterns remain unchanged, existing layout decomposition methods inevitably
lead to unsolvable color conflict issues" (paper Section I) -- densely
routed regions simply cannot be 3-colored, whereas a routing-time method
such as Mr.TPL would have moved the wires instead.

Pipeline (mirroring OpenMPL's structure):

1. **unit extraction** -- each net's routed metal is split per layer into
   straight runs; run boundaries (corners, via landings) are the stitch
   candidates,
2. **graph construction** -- conflict edges between different-net units
   within ``Dcolor``, stitch edges between electrically adjacent units of
   the same net on the same layer,
3. **component-wise coloring** -- exact branch-and-bound for small
   components, greedy + improvement otherwise (:mod:`repro.baselines.coloring`),
4. **write-back** -- the chosen masks are written into a copy of the routing
   solution so the shared :class:`~repro.tpl.conflict.ConflictChecker`
   scores decomposition and routing-time coloring identically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.design import Design
from repro.geometry import GridPoint, Rect, SpatialIndex
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.baselines.coloring import ColoringProblem, solve_coloring
from repro.tpl.conflict import ConflictChecker, ConflictReport
from repro.utils import Timer, get_logger

_LOG = get_logger("baselines.decomposer")

#: Identifier of one coloring unit: (net name, unit index).
UnitId = Tuple[str, int]


@dataclass
class ColoringUnit:
    """A straight run of one net's routed metal on one layer."""

    unit_id: UnitId
    net_name: str
    layer: int
    vertices: List[GridPoint] = field(default_factory=list)


@dataclass
class DecompositionResult:
    """The colored solution plus the decomposition-level statistics."""

    solution: RoutingSolution
    assignment: Dict[UnitId, int]
    units: List[ColoringUnit]
    conflict_report: ConflictReport
    runtime_seconds: float = 0.0

    @property
    def conflicts(self) -> int:
        """Return the number of color conflicts after decomposition."""
        return self.conflict_report.conflict_count

    @property
    def stitches(self) -> int:
        """Return the number of stitches after decomposition."""
        return self.solution.total_stitches()


class LayoutDecomposer:
    """Colors an uncolored routed layout with three masks (OpenMPL-like)."""

    name = "openmpl-like"

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        conflict_weight: float = 10.0,
        stitch_weight: float = 1.0,
        exact_component_limit: int = 14,
        stitch_candidates: bool = True,
    ) -> None:
        self.design = design
        self.grid = grid
        self.rules = grid.rules
        self.conflict_weight = conflict_weight
        self.stitch_weight = stitch_weight
        self.exact_component_limit = exact_component_limit
        #: When ``True`` every straight run is its own coloring unit, so a
        #: stitch may be inserted at every bend or via landing -- a *more*
        #: generous stitch-candidate set than OpenMPL's projection-based one.
        #: When ``False`` whole same-layer polygons are colored as one unit,
        #: which matches decomposition without stitch insertion.
        self.stitch_candidates = stitch_candidates

    # ------------------------------------------------------------------

    def decompose(self, solution: RoutingSolution) -> DecompositionResult:
        """Assign masks to every routed vertex of *solution*.

        The input solution is not modified; a colored copy is returned.
        """
        timer = Timer()
        timer.start()
        units = self.extract_units(solution)
        problem = self.build_problem(units)
        assignment = solve_coloring(problem, self.exact_component_limit)
        # Units that interact with nothing never enter the coloring graph;
        # any mask is legal for them, so they default to the first one.
        for unit in units:
            assignment.setdefault(unit.unit_id, 0)
        colored = self._write_back(solution, units, assignment)
        checker = ConflictChecker(self.design, self.grid)
        report = checker.check(colored)
        elapsed = timer.stop()
        _LOG.info(
            "decomposed %d units into %d conflicts / %d stitches",
            len(units),
            report.conflict_count,
            colored.total_stitches(),
        )
        return DecompositionResult(
            solution=colored,
            assignment=assignment,
            units=units,
            conflict_report=report,
            runtime_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Unit extraction
    # ------------------------------------------------------------------

    def extract_units(self, solution: RoutingSolution) -> List[ColoringUnit]:
        """Split every routed net into straight-run coloring units."""
        units: List[ColoringUnit] = []
        for route in solution.routes.values():
            if not route.routed:
                continue
            units.extend(self._net_units(route))
        return units

    def _net_units(self, route: NetRoute) -> List[ColoringUnit]:
        adjacency = route.adjacency()
        vertices_by_layer: Dict[int, List[GridPoint]] = defaultdict(list)
        for vertex in route.vertices:
            vertices_by_layer[vertex.layer].append(vertex)

        if not self.stitch_candidates:
            return self._polygon_units(route, adjacency, vertices_by_layer)

        units: List[ColoringUnit] = []
        assigned: Dict[GridPoint, int] = {}
        counter = 0

        def new_unit(layer: int) -> ColoringUnit:
            nonlocal counter
            unit = ColoringUnit(
                unit_id=(route.net_name, counter), net_name=route.net_name, layer=layer
            )
            counter += 1
            units.append(unit)
            return unit

        for layer, vertices in sorted(vertices_by_layer.items()):
            # Horizontal runs first: consecutive columns in the same row that
            # are actually connected by route edges.
            for vertex in sorted(vertices):
                if vertex in assigned:
                    continue
                run = self._collect_run(vertex, adjacency, horizontal=True)
                if len(run) > 1:
                    unit = new_unit(layer)
                    for member in run:
                        if member not in assigned:
                            assigned[member] = len(units) - 1
                            unit.vertices.append(member)
            # Vertical runs over whatever is left, then isolated vertices.
            for vertex in sorted(vertices):
                if vertex in assigned:
                    continue
                run = self._collect_run(vertex, adjacency, horizontal=False)
                unit = new_unit(layer)
                for member in run:
                    if member not in assigned:
                        assigned[member] = len(units) - 1
                        unit.vertices.append(member)
        return [unit for unit in units if unit.vertices]

    def _polygon_units(
        self,
        route: NetRoute,
        adjacency: Dict[GridPoint, List[GridPoint]],
        vertices_by_layer: Dict[int, List[GridPoint]],
    ) -> List[ColoringUnit]:
        """Return one unit per same-layer connected component (no stitch candidates)."""
        units: List[ColoringUnit] = []
        counter = 0
        for layer, vertices in sorted(vertices_by_layer.items()):
            remaining = set(vertices)
            while remaining:
                seed = min(remaining)
                component: List[GridPoint] = []
                stack = [seed]
                seen = {seed}
                while stack:
                    vertex = stack.pop()
                    component.append(vertex)
                    for neighbor in adjacency.get(vertex, ()):
                        if neighbor.layer == layer and neighbor not in seen:
                            seen.add(neighbor)
                            stack.append(neighbor)
                remaining -= seen
                units.append(
                    ColoringUnit(
                        unit_id=(route.net_name, counter),
                        net_name=route.net_name,
                        layer=layer,
                        vertices=sorted(component),
                    )
                )
                counter += 1
        return units

    def _collect_run(
        self,
        seed: GridPoint,
        adjacency: Dict[GridPoint, List[GridPoint]],
        horizontal: bool,
    ) -> List[GridPoint]:
        """Return the maximal straight run through *seed* in one axis."""

        def step_matches(a: GridPoint, b: GridPoint) -> bool:
            if a.layer != b.layer:
                return False
            if horizontal:
                return a.row == b.row and abs(a.col - b.col) == 1
            return a.col == b.col and abs(a.row - b.row) == 1

        run = [seed]
        frontier = [seed]
        visited = {seed}
        while frontier:
            vertex = frontier.pop()
            for neighbor in adjacency.get(vertex, ()):
                if neighbor in visited:
                    continue
                if step_matches(vertex, neighbor):
                    visited.add(neighbor)
                    run.append(neighbor)
                    frontier.append(neighbor)
        return sorted(run)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def build_problem(self, units: List[ColoringUnit]) -> ColoringProblem:
        """Build the conflict/stitch coloring problem over *units*."""
        problem = ColoringProblem(
            conflict_weight=self.conflict_weight, stitch_weight=self.stitch_weight
        )
        unit_of_vertex: Dict[Tuple[str, GridPoint], UnitId] = {}
        index_by_layer: Dict[int, SpatialIndex] = defaultdict(
            lambda: SpatialIndex(bucket_size=max(self.grid.pitch * 8, 16))
        )
        for unit in units:
            for vertex in unit.vertices:
                unit_of_vertex[(unit.net_name, vertex)] = unit.unit_id
                index_by_layer[unit.layer].insert(self.grid.vertex_rect(vertex), unit.unit_id)

        # Conflict edges: different nets, same layer, within Dcolor.
        conflict_pairs: Set[Tuple[UnitId, UnitId]] = set()
        units_by_id = {unit.unit_id: unit for unit in units}
        for unit in units:
            dcolor = self.rules.color_spacing_on(unit.layer)
            for vertex in unit.vertices:
                rect = self.grid.vertex_rect(vertex)
                for _other_rect, other_id in index_by_layer[unit.layer].within(rect, dcolor):
                    if other_id == unit.unit_id:
                        continue
                    other = units_by_id[other_id]
                    if other.net_name == unit.net_name:
                        continue
                    pair = tuple(sorted((unit.unit_id, other_id)))
                    conflict_pairs.add(pair)  # type: ignore[arg-type]
        problem.conflict_edges = sorted(conflict_pairs)

        # Stitch edges: same net, same layer, adjacent units (share a routed edge).
        stitch_pairs: Set[Tuple[UnitId, UnitId]] = set()
        for unit in units:
            for vertex in unit.vertices:
                for neighbor_unit in self._adjacent_units_of(vertex, unit, unit_of_vertex):
                    pair = tuple(sorted((unit.unit_id, neighbor_unit)))
                    stitch_pairs.add(pair)  # type: ignore[arg-type]
        problem.stitch_edges = sorted(stitch_pairs - conflict_pairs)

        # Pre-colored obstacles become fixed pseudo-units.
        for index, obstacle in enumerate(self.design.colored_obstacles()):
            node: UnitId = (f"__fixed__{obstacle.name or index}", index)
            problem.fixed_colors[node] = obstacle.color
            for unit in units:
                if unit.layer != obstacle.layer:
                    continue
                dcolor = self.rules.color_spacing_on(unit.layer)
                if any(
                    self.grid.vertex_rect(v).distance_to(obstacle.rect) < dcolor
                    for v in unit.vertices
                ):
                    problem.conflict_edges.append((node, unit.unit_id))
        return problem

    def _adjacent_units_of(
        self,
        vertex: GridPoint,
        unit: ColoringUnit,
        unit_of_vertex: Dict[Tuple[str, GridPoint], UnitId],
    ) -> List[UnitId]:
        neighbors = []
        for dcol, drow in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            candidate = GridPoint(vertex.layer, vertex.col + dcol, vertex.row + drow)
            other = unit_of_vertex.get((unit.net_name, candidate))
            if other is not None and other != unit.unit_id:
                neighbors.append(other)
        return neighbors

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------

    def _write_back(
        self,
        solution: RoutingSolution,
        units: List[ColoringUnit],
        assignment: Dict[UnitId, int],
    ) -> RoutingSolution:
        colored = RoutingSolution(
            design_name=solution.design_name,
            router_name=f"{solution.router_name}+{self.name}",
            runtime_seconds=solution.runtime_seconds,
            iterations=solution.iterations,
        )
        for route in solution.routes.values():
            clone = NetRoute(
                net_name=route.net_name,
                vertices=set(route.vertices),
                edges=set(route.edges),
                routed=route.routed,
                failure_reason=route.failure_reason,
            )
            colored.add_route(clone)
        for unit in units:
            color = assignment.get(unit.unit_id)
            if color is None:
                continue
            route = colored.routes[unit.net_name]
            for vertex in unit.vertices:
                route.set_color(vertex, color)
        for route in colored.routes.values():
            route.recount_stitches()
        return colored
