"""Acceleration tier registry and runtime gates.

The search/cost hot paths run on a three-tier stack, every tier producing
bit-identical results:

``native``
    The compiled relaxation kernel (:mod:`repro.native`): the whole
    Dijkstra/A* inner loop of :meth:`repro.search.SearchCore.run` executes
    in C over the flat label buffers.  Needs a built extension *and* the
    numpy tier below it (the per-search snapshot tables the kernel reads
    are numpy-hoisted).
``buffered`` (the default engine path)
    The zero-allocation Python loop over epoch-stamped flat buffers, with
    the O(num_vertices) kernels (color-pressure update, per-search
    congestion / pressure / heuristic snapshots) vectorised through numpy
    when importable; every vectorised kernel has a pure-Python twin
    producing bit-identical results (same IEEE-754 operations in the same
    order) used on numpy-free installs.
``legacy``
    The frozen GridPoint-dict reference engines
    (:mod:`repro.search.legacy`), selected only explicitly
    (``engine="legacy"``) as the parity oracle.

Gates are process-global and runtime-switchable:

* ``REPRO_PURE_PYTHON=1`` disables numpy *and* the native kernel at import
  time (the CI fallback leg);
* ``REPRO_NO_NATIVE=1`` disables only the native kernel;
* :func:`set_numpy_enabled` / :func:`set_native_enabled` toggle at runtime
  (the differential tests force lower tiers on a fully-equipped
  interpreter and compare).

Hot paths call :func:`get_numpy` / :func:`get_native_kernel` once per
kernel invocation and branch on ``None``, so toggling takes effect
immediately.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.env import env_flag

try:  # pragma: no cover - exercised indirectly by both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-free environments
    _numpy = None

#: Tier names, fastest first (``repro.bench.micro`` records the active one).
SEARCH_TIERS = ("native", "buffered", "legacy")

_PURE_PYTHON = env_flag("REPRO_PURE_PYTHON", False)

_enabled = _numpy is not None and not _PURE_PYTHON
_native_enabled = not _PURE_PYTHON and not env_flag("REPRO_NO_NATIVE", False)


def have_numpy() -> bool:
    """Return ``True`` when numpy is importable (regardless of the gate)."""
    return _numpy is not None


def numpy_enabled() -> bool:
    """Return ``True`` when the vectorised kernels are active."""
    return _enabled


def set_numpy_enabled(enabled: bool) -> bool:
    """Enable/disable the vectorised kernels; return the previous setting.

    Enabling is a no-op when numpy is not importable.  Tests use this to
    force the pure-Python fallback and differentially compare the two.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled) and _numpy is not None
    return previous


def get_numpy() -> Optional[object]:
    """Return the numpy module when acceleration is on, else ``None``."""
    return _numpy if _enabled else None


# ----------------------------------------------------------------------
# Native kernel tier
# ----------------------------------------------------------------------

def native_available() -> bool:
    """Return ``True`` when a usable kernel binary is loaded/loadable.

    Unlike :func:`get_native_kernel` this ignores the runtime gates -- it
    answers "could the native tier run here at all?" (bench/CI reporting).
    """
    from repro.native import load_kernel

    return load_kernel() is not None


def native_enabled() -> bool:
    """Return ``True`` when the native tier gate is open (kernel may still
    be unbuilt -- combine with :func:`native_available`)."""
    return _native_enabled


def set_native_enabled(enabled: bool) -> bool:
    """Enable/disable the native kernel tier; return the previous setting.

    Tests and benchmarks use this to force the buffered tier on an
    interpreter that has the extension built, then compare bit for bit.
    """
    global _native_enabled
    previous = _native_enabled
    _native_enabled = bool(enabled)
    return previous


def get_native_kernel() -> Optional[object]:
    """Return the loaded kernel module when the native tier is active.

    ``None`` when gated off (env overrides, :func:`set_native_enabled`),
    when no binary could be loaded or built, or when the numpy tier is off
    (the kernel consumes numpy-hoisted snapshot tables).  The underlying
    load attempt is made once per process and cached either way.
    """
    if not _native_enabled or not _enabled:
        return None
    from repro.native import load_kernel

    return load_kernel()


def active_search_tier() -> str:
    """Return the name of the fastest tier currently active.

    ``legacy`` never appears here: it is only ever selected explicitly as
    the parity oracle, not by the registry.
    """
    if get_native_kernel() is not None:
        return "native"
    return "buffered-numpy" if _enabled else "buffered-python"
