"""Acceleration tier registry and runtime gates.

The search/cost hot paths run on a three-tier stack, every tier producing
bit-identical results:

``native``
    The compiled relaxation kernel (:mod:`repro.native`): the whole
    Dijkstra/A* inner loop of :meth:`repro.search.SearchCore.run` executes
    in C over the flat label buffers.  Needs a built extension *and* the
    numpy tier below it (the per-search snapshot tables the kernel reads
    are numpy-hoisted).
``buffered`` (the default engine path)
    The zero-allocation Python loop over epoch-stamped flat buffers, with
    the O(num_vertices) kernels (color-pressure update, per-search
    congestion / pressure / heuristic snapshots) vectorised through numpy
    when importable; every vectorised kernel has a pure-Python twin
    producing bit-identical results (same IEEE-754 operations in the same
    order) used on numpy-free installs.
``legacy``
    The frozen GridPoint-dict reference engines
    (:mod:`repro.search.legacy`), selected only explicitly
    (``engine="legacy"``) as the parity oracle.

Gates are process-global and runtime-switchable:

* ``REPRO_PURE_PYTHON=1`` disables numpy *and* the native kernel at import
  time (the CI fallback leg);
* ``REPRO_NO_NATIVE=1`` disables only the native search kernel;
* ``REPRO_NO_NATIVE_CHECK=1`` disables only the native check kernel
  (``repro.native._checkwork``, the incremental DRC/conflict neighborhood
  scan -- see :func:`get_check_kernel` / :func:`active_check_tier`);
* :func:`set_numpy_enabled` / :func:`set_native_enabled` /
  :func:`set_check_native_enabled` toggle at runtime (the differential
  tests force lower tiers on a fully-equipped interpreter and compare).

Hot paths call :func:`get_numpy` / :func:`get_native_kernel` once per
kernel invocation and branch on ``None``, so toggling takes effect
immediately.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.env import env_flag

try:  # pragma: no cover - exercised indirectly by both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-free environments
    _numpy = None

#: Tier names, fastest first (``repro.bench.micro`` records the active one).
SEARCH_TIERS = ("native", "buffered", "legacy")

#: Tier names of the incremental-check path, fastest first.
CHECK_TIERS = ("native", "buffered", "pure")

_PURE_PYTHON = env_flag("REPRO_PURE_PYTHON", False)

_enabled = _numpy is not None and not _PURE_PYTHON
_native_enabled = not _PURE_PYTHON and not env_flag("REPRO_NO_NATIVE", False)
_check_native_enabled = not _PURE_PYTHON and not env_flag("REPRO_NO_NATIVE_CHECK", False)
# Runtime-only gate over the whole accelerated check-scan path (numpy
# broadcast AND native kernel) that leaves the search-path numpy gate
# alone -- the check-kernel benchmark forces the pure check tier with it
# without also slowing the search engines it is not measuring.
_check_scan_enabled = True


def have_numpy() -> bool:
    """Return ``True`` when numpy is importable (regardless of the gate)."""
    return _numpy is not None


def numpy_enabled() -> bool:
    """Return ``True`` when the vectorised kernels are active."""
    return _enabled


def set_numpy_enabled(enabled: bool) -> bool:
    """Enable/disable the vectorised kernels; return the previous setting.

    Enabling is a no-op when numpy is not importable.  Tests use this to
    force the pure-Python fallback and differentially compare the two.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled) and _numpy is not None
    return previous


def get_numpy() -> Optional[object]:
    """Return the numpy module when acceleration is on, else ``None``."""
    return _numpy if _enabled else None


# ----------------------------------------------------------------------
# Native kernel tier
# ----------------------------------------------------------------------

def native_available() -> bool:
    """Return ``True`` when a usable kernel binary is loaded/loadable.

    Unlike :func:`get_native_kernel` this ignores the runtime gates -- it
    answers "could the native tier run here at all?" (bench/CI reporting).
    """
    from repro.native import load_kernel

    return load_kernel() is not None


def native_enabled() -> bool:
    """Return ``True`` when the native tier gate is open (kernel may still
    be unbuilt -- combine with :func:`native_available`)."""
    return _native_enabled


def set_native_enabled(enabled: bool) -> bool:
    """Enable/disable the native kernel tier; return the previous setting.

    Tests and benchmarks use this to force the buffered tier on an
    interpreter that has the extension built, then compare bit for bit.
    """
    global _native_enabled
    previous = _native_enabled
    _native_enabled = bool(enabled)
    return previous


def get_native_kernel() -> Optional[object]:
    """Return the loaded kernel module when the native tier is active.

    ``None`` when gated off (env overrides, :func:`set_native_enabled`),
    when no binary could be loaded or built, or when the numpy tier is off
    (the kernel consumes numpy-hoisted snapshot tables).  The underlying
    load attempt is made once per process and cached either way.
    """
    if not _native_enabled or not _enabled:
        return None
    from repro.native import load_kernel

    return load_kernel()


# ----------------------------------------------------------------------
# Check-kernel tier (incremental DRC / conflict neighborhood scans)
# ----------------------------------------------------------------------

def check_native_available() -> bool:
    """Return ``True`` when a usable check-kernel binary is loaded/loadable.

    Ignores the runtime gates, like :func:`native_available` -- it answers
    "could the native check tier run here at all?" for bench/CI reporting.
    """
    from repro.native import load_check_kernel

    return load_check_kernel() is not None


def check_native_enabled() -> bool:
    """Return ``True`` when the native check-kernel gate is open."""
    return _check_native_enabled


def set_check_native_enabled(enabled: bool) -> bool:
    """Enable/disable the native check kernel; return the previous setting.

    The differential suites force the numpy and pure fallbacks on an
    interpreter that has the extension built, then compare reports.
    """
    global _check_native_enabled
    previous = _check_native_enabled
    _check_native_enabled = bool(enabled)
    return previous


def check_scan_enabled() -> bool:
    """Return ``True`` when the accelerated check-scan path is open."""
    return _check_scan_enabled


def set_check_scan_enabled(enabled: bool) -> bool:
    """Enable/disable the whole accelerated check scan; return the previous.

    Unlike :func:`set_numpy_enabled` this only gates
    :func:`repro.check.kernels.scan_hits` (numpy broadcast and native
    kernel alike), so benchmarks can force the pure check loops while the
    search engines keep their tiers.
    """
    global _check_scan_enabled
    previous = _check_scan_enabled
    _check_scan_enabled = bool(enabled)
    return previous


def get_check_numpy() -> Optional[object]:
    """Return numpy for the check-scan path, or ``None`` to force pure loops."""
    return _numpy if (_enabled and _check_scan_enabled) else None


def get_check_kernel() -> Optional[object]:
    """Return the loaded check-kernel module when its tier is active.

    ``None`` when gated off (``REPRO_NO_NATIVE_CHECK``,
    :func:`set_check_native_enabled`, :func:`set_check_scan_enabled`),
    when no binary could be loaded or built, or when the numpy tier is off
    (the Python wrapper stages the kernel's output through numpy arrays).
    The load attempt is made once per process and cached either way.
    """
    if not _check_native_enabled or not _enabled or not _check_scan_enabled:
        return None
    from repro.native import load_check_kernel

    return load_check_kernel()


def active_check_tier() -> str:
    """Return the name of the fastest incremental-check tier active.

    ``native`` is the compiled ``_checkwork`` neighborhood scan,
    ``buffered-numpy`` the broadcast scan over the flat mirrors, and
    ``buffered-python`` the original pure dict/set loops (always the
    differential oracle's path).
    """
    if get_check_kernel() is not None:
        return "native"
    return "buffered-numpy" if _enabled and _check_scan_enabled else "buffered-python"


def active_search_tier() -> str:
    """Return the name of the fastest tier currently active.

    ``legacy`` never appears here: it is only ever selected explicitly as
    the parity oracle, not by the registry.
    """
    if get_native_kernel() is not None:
        return "native"
    return "buffered-numpy" if _enabled else "buffered-python"
