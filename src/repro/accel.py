"""Optional numpy acceleration gate.

The routing engines vectorise a handful of O(num_vertices) kernels with
numpy when it is importable: the color-pressure neighbourhood update, the
per-search congestion / color-pressure / A*-heuristic snapshots.  Every
vectorised kernel has a pure-Python twin producing bit-identical results
(same IEEE-754 operations in the same order), kept both as the fallback on
numpy-free installs and as the differential oracle in the tests.

The gate is process-global and runtime-switchable:

* ``REPRO_PURE_PYTHON=1`` in the environment disables numpy at import time
  (the CI fallback leg uses this / uninstalls numpy outright);
* :func:`set_numpy_enabled` toggles it at runtime (the differential tests
  force the pure path on a numpy-capable interpreter and compare).

Hot paths call :func:`get_numpy` once per kernel invocation and branch on
``None``, so toggling takes effect immediately.
"""

from __future__ import annotations

import os
from typing import Optional

try:  # pragma: no cover - exercised indirectly by both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-free environments
    _numpy = None

_DISABLED_BY_ENV = os.environ.get("REPRO_PURE_PYTHON", "").strip().lower() in (
    "1",
    "true",
    "yes",
)

_enabled = _numpy is not None and not _DISABLED_BY_ENV


def have_numpy() -> bool:
    """Return ``True`` when numpy is importable (regardless of the gate)."""
    return _numpy is not None


def numpy_enabled() -> bool:
    """Return ``True`` when the vectorised kernels are active."""
    return _enabled


def set_numpy_enabled(enabled: bool) -> bool:
    """Enable/disable the vectorised kernels; return the previous setting.

    Enabling is a no-op when numpy is not importable.  Tests use this to
    force the pure-Python fallback and differentially compare the two.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled) and _numpy is not None
    return previous


def get_numpy() -> Optional[object]:
    """Return the numpy module when acceleration is on, else ``None``."""
    return _numpy if _enabled else None
