"""Incremental checking: dirty-region tracking + delta DRC/conflict tallies.

Every rip-up-and-reroute iteration touches a handful of nets but the
full-scan checkers (:class:`repro.dr.drc.DRCChecker`,
:class:`repro.tpl.conflict.ConflictChecker`) re-walk the whole solution.
This package re-validates only the changed neighbourhood:

* :class:`DirtyRegionTracker` drains the grid's per-net occupancy/color
  delta hooks into dirty-net and dirty-flat-index sets, expanding deltas by
  the relevant interaction radius (``Dcolor`` for conflicts, ``min_spacing``
  for DRC),
* :class:`IncrementalDRCChecker` / :class:`IncrementalConflictChecker`
  maintain running violation and conflict tallies that match the full-scan
  oracles on counts, kinds and net pairs (differentially tested after
  every mutation in ``tests/test_incremental_check.py``; representative
  violation locations may be anchored differently).

All three rip-up loops (plain detailed router, Mr.TPL, DAC-2012 baseline)
consume these tallies; the full checkers remain the frozen reference used
by final evaluation and the differential harness.
"""

from repro.check.dirty import DirtyRegionTracker
from repro.check.incremental_conflict import IncrementalConflictChecker
from repro.check.incremental_drc import IncrementalDRCChecker

__all__ = [
    "DirtyRegionTracker",
    "IncrementalConflictChecker",
    "IncrementalDRCChecker",
]
