"""Accelerated neighborhood scan shared by the incremental checkers.

The hot loop of both :class:`~repro.check.IncrementalDRCChecker` and
:class:`~repro.check.IncrementalConflictChecker` is the same shape: for
every flat vertex index of a dirty net, probe every precomputed planar
interaction offset against an occupancy mirror and do real work only for
neighbors held by *another* net.  The overwhelming majority of probes
miss (empty cell, or the net's own metal), so :func:`scan_hits` filters
them in bulk:

``native``
    ``repro.native._checkwork.scan_hits`` runs the whole double loop in C
    over the caller's flat buffers (GIL released).
``buffered-numpy``
    One broadcast over ``indices x offsets``: candidate flat indices,
    bounds mask from the column/row components, occupancy-owner gather.
``buffered-python``
    :func:`scan_hits` returns ``None`` and the caller runs its original
    pure dict/set loop, which stays the behavioral reference.

The surviving ``(source, neighbor)`` pairs are returned in the pure
loop's i-major order and post-processed by the checker's unchanged
per-hit Python logic, so all tiers produce identical reports -- the
contract ``tests/test_check_kernels.py`` fuzzes.

The *owner* mirror is an ``array('q')`` the checkers maintain
incrementally alongside their occupancy dicts: ``0`` = empty, a positive
interned net id = single occupant, ``-1`` = multiple occupants (the scan
always reports those; the caller consults the exact dict).  Passing the
scanned net's own id as *self_id* drops same-net probes in the kernel.
"""

from __future__ import annotations

import threading
from array import array
from typing import Iterable, Optional, Tuple

from repro import accel
from repro.grid.routing_grid import OffsetArrays

#: A surviving probe: (source flat index, neighbor flat index).
Hit = Tuple[int, int]

# Per-thread staging buffers for the native kernel's output, grown
# geometrically; the hit pairs are copied to Python lists before returning,
# so reuse across calls is safe.
_stage = threading.local()


def _staging(np: object, capacity: int) -> Tuple[object, object]:
    buffers = getattr(_stage, "buffers", None)
    if buffers is None or len(buffers[0]) < capacity:
        size = max(capacity, 1024)
        buffers = (np.empty(size, dtype=np.int64), np.empty(size, dtype=np.int64))
        _stage.buffers = buffers
    return buffers


def scan_hits(
    indices: array,
    offsets: OffsetArrays,
    owner: array,
    self_id: int,
    num_cols: int,
    num_rows: int,
) -> Optional[Iterable[Hit]]:
    """Return surviving probe pairs, or ``None`` when no accelerated tier is on.

    ``None`` tells the caller to run its pure-Python loop.  Otherwise the
    scan ran and the result is an iterable of ``(source, neighbor)`` pairs
    in the pure loop's i-major order -- a list when empty, else a single-use
    lazy ``zip`` (CPython reuses the yielded tuple for plain ``for src, dst
    in hits`` consumers, so the common all-miss refresh allocates nothing
    per probe).
    """
    np = accel.get_check_numpy()
    if np is None:
        return None
    if not len(indices) or not len(offsets):
        return []

    kernel = accel.get_check_kernel()
    if kernel is not None:
        capacity = len(indices) * len(offsets)
        out_src, out_dst = _staging(np, capacity)
        count = kernel.scan_hits(
            indices,
            offsets.dcols,
            offsets.drows,
            offsets.deltas,
            owner,
            num_cols,
            num_rows,
            self_id,
            out_src,
            out_dst,
        )
        if count == 0:
            return []
        return zip(out_src[:count].tolist(), out_dst[:count].tolist())

    idx = np.frombuffer(indices, dtype=np.int64)
    dcols = np.frombuffer(offsets.dcols, dtype=np.int64)
    drows = np.frombuffer(offsets.drows, dtype=np.int64)
    deltas = np.frombuffer(offsets.deltas, dtype=np.int64)
    owners = np.frombuffer(owner, dtype=np.int64)

    pos = idx % (num_cols * num_rows)
    col = pos // num_rows
    row = pos - col * num_rows
    ncol = col[:, None] + dcols[None, :]
    nrow = row[:, None] + drows[None, :]
    valid = (ncol >= 0) & (ncol < num_cols) & (nrow >= 0) & (nrow < num_rows)
    cand = idx[:, None] + deltas[None, :]
    # Out-of-plane candidates are masked off; index 0 keeps the gather legal.
    safe = np.where(valid, cand, 0)
    occupant = owners[safe]
    hit = valid & (occupant != 0) & (occupant != self_id)
    src_i, off_j = np.nonzero(hit)
    if not src_i.size:
        return []
    return zip(idx[src_i].tolist(), safe[src_i, off_j].tolist())


def zero_owner_mirror(num_vertices: int) -> array:
    """Return a zeroed int64 owner mirror sized for *num_vertices*."""
    return array("q", bytes(8 * num_vertices))
