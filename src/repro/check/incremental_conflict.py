"""Incremental counterpart of :class:`repro.tpl.conflict.ConflictChecker`.

Conflicts are counted between features (maximal same-net, same-layer,
same-mask connected runs).  A conflict between features of nets *A* and *B*
depends only on the two nets' geometry and masks, so the cached per-pair
conflict lists stay valid until one of the nets changes:

* on :meth:`refresh`, nets dirtied by grid deltas (via the
  :class:`~repro.check.dirty.DirtyRegionTracker`) or by route-object
  replacement get their features re-extracted with the *same*
  ``_net_features`` routine the full checker uses,
* every cached pair involving a dirty net is dropped, and partners within
  the interaction radius (``max(Dcolor, min_spacing)``, the dirty-region
  expansion applied to the net's feature vertices) are re-classified with
  the full checker's own ``_classify_pair`` / ``_obstacle_conflicts``
  helpers, so kinds and thresholds cannot drift apart,
* per-net obstacle-conflict and uncolored-vertex tallies are recomputed for
  dirty nets only.

The running tallies therefore match a fresh full scan on counts, kinds and
net pairs (locations are anchored at the feature vertex nearest the
partner), which ``tests/test_incremental_check.py`` asserts after every
mutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.check.dirty import DirtyRegionTracker
from repro.design import Design
from repro.geometry import Rect
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.tpl.conflict import ColorConflict, ConflictChecker, ConflictReport, Feature

#: Canonical unordered net-pair key.
NetPair = Tuple[str, str]


class IncrementalConflictChecker:
    """Incrementally maintained color-conflict tallies over a solution."""

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        tracker: Optional[DirtyRegionTracker] = None,
    ) -> None:
        self.design = design
        self.grid = grid
        self.rules = grid.rules
        self.oracle = ConflictChecker(design, grid)
        self.tracker = tracker if tracker is not None else DirtyRegionTracker(grid)
        self._reach_offsets: Dict[int, List[Tuple[int, int, int]]] = {}
        self._reset_state()

    def _reset_state(self) -> None:
        self._built = False
        self._route_ids: Dict[str, int] = {}
        # Per net: features plus their bounding boxes (pair prefilter).
        self._features: Dict[str, List[Tuple[Feature, Rect]]] = {}
        # Flat index -> names of nets with a feature vertex there.
        self._occ: Dict[int, Set[str]] = {}
        # Cached conflicts: per unordered net pair and per net vs obstacles.
        self._pair_conflicts: Dict[NetPair, List[ColorConflict]] = {}
        self._pairs_by_net: Dict[str, Set[NetPair]] = {}
        self._obstacle_conflicts: Dict[str, List[ColorConflict]] = {}
        self._uncolored: Dict[str, int] = {}

    def _offsets_for(self, layer: int) -> List[Tuple[int, int, int]]:
        offsets = self._reach_offsets.get(layer)
        if offsets is None:
            # The canonical per-layer interaction radius (max(Dcolor,
            # min_spacing)) shared with the batch scheduler.
            reach = self.grid.interaction_radius(layer=layer)
            offsets = self.grid.interaction_offsets(reach)
            self._reach_offsets[layer] = offsets
        return offsets

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, solution: RoutingSolution) -> Set[str]:
        """Re-validate dirty nets against *solution*; return the dirty set."""
        tracked_nets, _raw, rebuild = self.tracker.consume()
        if rebuild or not self._built:
            self._reset_state()
            self._built = True
            dirty = set(solution.routes)
        else:
            dirty = set(tracked_nets)
            for name, route in solution.routes.items():
                if self._route_ids.get(name) != id(route):
                    dirty.add(name)
            for name in self._route_ids:
                if name not in solution.routes:
                    dirty.add(name)
        dirty.discard("")
        if not dirty:
            return dirty

        for name in dirty:
            self._remove_net(name)
        for name in dirty:
            route = solution.routes.get(name)
            if route is None:
                self._route_ids.pop(name, None)
            else:
                self._route_ids[name] = id(route)
                self._add_net(name, route)
        for name in dirty:
            if name in self._features:
                self._scan_pairs(name)
        return dirty

    # -- per-net removal / addition ----------------------------------------

    def _remove_net(self, name: str) -> None:
        index_of = self.grid.index_of
        for feature, _bbox in self._features.pop(name, ()):
            for vertex in feature.vertices:
                index = index_of(vertex)
                nets = self._occ.get(index)
                if nets is not None:
                    nets.discard(name)
                    if not nets:
                        del self._occ[index]
        for pair in self._pairs_by_net.pop(name, ()):
            self._pair_conflicts.pop(pair, None)
            partner = pair[1] if pair[0] == name else pair[0]
            partner_pairs = self._pairs_by_net.get(partner)
            if partner_pairs is not None:
                partner_pairs.discard(pair)
        self._obstacle_conflicts.pop(name, None)
        self._uncolored.pop(name, None)

    def _add_net(self, name: str, route: NetRoute) -> None:
        features = self.oracle._net_features(route)
        index_of = self.grid.index_of
        vertex_rect = self.grid.vertex_rect
        entries: List[Tuple[Feature, Rect]] = []
        for feature in features:
            bbox = Rect.bounding([vertex_rect(v) for v in feature.vertices])
            entries.append((feature, bbox))
            for vertex in feature.vertices:
                self._occ.setdefault(index_of(vertex), set()).add(name)
        self._features[name] = entries
        if features:
            obstacle = self.oracle._obstacle_conflicts(
                [feature for feature, _bbox in entries]
            )
            if obstacle:
                self._obstacle_conflicts[name] = obstacle
        uncolored = self._count_uncolored(route)
        if uncolored:
            self._uncolored[name] = uncolored

    def _count_uncolored(self, route: NetRoute) -> int:
        if not route.routed:
            return 0
        layers = self.design.tech.layers
        colors = route.vertex_colors
        return sum(
            1
            for vertex in route.vertices
            if vertex not in colors and layers[vertex.layer].tpl
        )

    # -- pair scanning ------------------------------------------------------

    def _scan_pairs(self, name: str) -> None:
        """Re-classify *name* against every net within its interaction radius.

        Candidate partners are found by expanding the net's feature vertices
        by the layer's reach (the same offsets the dirty-region expansion
        uses) and reading the feature-occupancy mirror -- a net outside the
        expanded region cannot conflict with *name*.
        """
        grid = self.grid
        rows, cols, plane = grid.num_rows, grid.num_cols, grid.plane_size
        index_of = grid.index_of
        occ_get = self._occ.get
        candidates: Set[str] = set()
        for feature, _bbox in self._features.get(name, ()):
            offsets = self._offsets_for(feature.layer)
            for vertex in feature.vertices:
                index = index_of(vertex)
                col, row = divmod(index % plane, rows)
                for dcol, drow, delta in offsets:
                    if not (0 <= col + dcol < cols and 0 <= row + drow < rows):
                        continue
                    others = occ_get(index + delta)
                    if others:
                        candidates.update(others)
        candidates.discard(name)
        for partner in candidates:
            pair = (name, partner) if name <= partner else (partner, name)
            if pair in self._pair_conflicts:
                continue  # the partner was dirty too and already rescanned
            conflicts = self._classify_net_pair(name, partner)
            self._pair_conflicts[pair] = conflicts
            self._pairs_by_net.setdefault(name, set()).add(pair)
            self._pairs_by_net.setdefault(partner, set()).add(pair)

    def _classify_net_pair(self, name: str, partner: str) -> List[ColorConflict]:
        conflicts: List[ColorConflict] = []
        vertex_rect = self.grid.vertex_rect
        partner_entries = self._features.get(partner, ())
        for feature, bbox in self._features.get(name, ()):
            dcolor = self.rules.color_spacing_on(feature.layer)
            reach = max(dcolor, self.rules.min_spacing)
            for other, other_bbox in partner_entries:
                if other.layer != feature.layer:
                    continue
                # The bbox gap lower-bounds every vertex-pair gap, so pairs
                # outside the reach can be skipped without exact distances.
                if bbox.distance_to(other_bbox) >= reach:
                    continue
                # Anchor the conflict at the feature vertex nearest the
                # partner so rip-up history lands where the metal clashes.
                anchor = min(
                    feature.vertices,
                    key=lambda v: (vertex_rect(v).distance_to(other_bbox), v),
                )
                conflict = self.oracle._classify_pair(feature, other, anchor, dcolor)
                if conflict is not None:
                    conflicts.append(conflict)
        return conflicts

    # ------------------------------------------------------------------
    # Reports (same shapes as the full checker)
    # ------------------------------------------------------------------

    def check(self, solution: RoutingSolution) -> ConflictReport:
        """Refresh against *solution* and return the aggregated report."""
        self.refresh(solution)
        return self.report()

    def report(self) -> ConflictReport:
        """Return a :class:`ConflictReport` assembled from the running tallies."""
        conflicts: List[ColorConflict] = []
        for pair in sorted(self._pair_conflicts):
            conflicts.extend(self._pair_conflicts[pair])
        for name in sorted(self._obstacle_conflicts):
            conflicts.extend(self._obstacle_conflicts[name])
        return ConflictReport(
            conflicts=conflicts,
            uncolored_vertices=sum(self._uncolored.values()),
        )

    def conflict_count(self) -> int:
        """Return the running conflict tally (after a refresh)."""
        return sum(len(found) for found in self._pair_conflicts.values()) + sum(
            len(found) for found in self._obstacle_conflicts.values()
        )

    def count(self, solution: RoutingSolution) -> int:
        """Refresh against *solution* and return only the conflict count."""
        self.refresh(solution)
        return self.conflict_count()

    def detach(self) -> None:
        """Stop listening to grid deltas (the tallies freeze)."""
        self.tracker.detach()
