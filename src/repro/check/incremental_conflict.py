"""Incremental counterpart of :class:`repro.tpl.conflict.ConflictChecker`.

Conflicts are counted between features (maximal same-net, same-layer,
same-mask connected runs).  A conflict between features of nets *A* and *B*
depends only on the two nets' geometry and masks, so the cached per-pair
conflict lists stay valid until one of the nets changes:

* on :meth:`refresh`, nets dirtied by grid deltas (via the
  :class:`~repro.check.dirty.DirtyRegionTracker`) or by route-object
  replacement (detected through the routes' monotone ``revision`` stamps)
  get their features re-extracted with the *same* ``_net_features``
  routine the full checker uses,
* every cached pair involving a dirty net is dropped, and partners within
  the interaction radius (``max(Dcolor, min_spacing)``, the dirty-region
  expansion applied to the net's feature vertices) are re-classified with
  the full checker's own ``_classify_pair`` / ``_obstacle_conflicts``
  helpers, so kinds and thresholds cannot drift apart,
* per-net obstacle-conflict and uncolored-vertex tallies are recomputed for
  dirty nets only.

The candidate-partner neighborhood scan runs on the tiered
:func:`repro.check.kernels.scan_hits` fast path (native ``_checkwork``
kernel or a numpy broadcast over the flat feature-owner mirror) when
:mod:`repro.accel` has an accelerated tier open; the original pure
dict/set loop is kept verbatim as the fallback and behavioral reference.

The running tallies therefore match a fresh full scan on counts, kinds and
net pairs (locations are anchored at the feature vertex nearest the
partner), which ``tests/test_incremental_check.py`` and
``tests/test_check_kernels.py`` assert after every mutation.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.check.dirty import DirtyRegionTracker
from repro.check.kernels import scan_hits, zero_owner_mirror
from repro.design import Design
from repro.geometry import GridPoint, Rect
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.tpl.conflict import ColorConflict, ConflictChecker, ConflictReport, Feature

#: Canonical unordered net-pair key.
NetPair = Tuple[str, str]


class _FeatureEntry(NamedTuple):
    """One cached feature with everything the scan/classify paths need.

    ``ordered`` / ``coords`` hold the feature's vertices in sorted order
    with their vertex-rect corner coordinates, so the conflict-anchor
    search runs over plain ints instead of rebuilding ``Rect`` objects on
    every candidate pair (the sorted order reproduces the reference
    ``min``'s smallest-vertex tie-breaking exactly).
    """

    feature: Feature
    bbox: Rect
    indices: array
    ordered: Tuple[GridPoint, ...]
    coords: Tuple[Tuple[int, int, int, int], ...]


class IncrementalConflictChecker:
    """Incrementally maintained color-conflict tallies over a solution."""

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        tracker: Optional[DirtyRegionTracker] = None,
    ) -> None:
        self.design = design
        self.grid = grid
        self.rules = grid.rules
        self.oracle = ConflictChecker(design, grid)
        self.tracker = tracker if tracker is not None else DirtyRegionTracker(grid)
        self._reset_state()

    def _reset_state(self) -> None:
        self._built = False
        self._route_revisions: Dict[str, int] = {}
        # Per net: features plus their bounding boxes (pair prefilter),
        # flat vertex indices (the scan kernels' input) and cached
        # sorted-vertex rect coordinates (the anchor search's input).
        self._features: Dict[str, List[_FeatureEntry]] = {}
        # Flat index -> names of nets with a feature vertex there.
        self._occ: Dict[int, Set[str]] = {}
        # Flat owner mirror of _occ for the scan kernels: 0 = empty,
        # interned id = single occupant, -1 = multiple occupants.
        self._occ_owner = zero_owner_mirror(self.grid.num_vertices)
        self._name_ids: Dict[str, int] = {}
        # Reverse interning table (_name_ids inverted, index = id) so the
        # hit loop resolves single-occupant cells without touching _occ.
        self._id_names: List[str] = [""]
        # Cached conflicts: per unordered net pair and per net vs obstacles.
        self._pair_conflicts: Dict[NetPair, List[ColorConflict]] = {}
        self._pairs_by_net: Dict[str, Set[NetPair]] = {}
        self._obstacle_conflicts: Dict[str, List[ColorConflict]] = {}
        self._uncolored: Dict[str, int] = {}

    def _intern(self, name: str) -> int:
        ident = self._name_ids.get(name)
        if ident is None:
            ident = len(self._name_ids) + 1
            self._name_ids[name] = ident
            self._id_names.append(name)
        return ident

    def _offsets_for(self, layer: int) -> Tuple[Tuple[int, int, int], ...]:
        # The canonical per-layer interaction radius (max(Dcolor,
        # min_spacing)) shared with the batch scheduler, cached on the grid.
        return self.grid.layer_interaction_offsets(layer)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, solution: RoutingSolution) -> Set[str]:
        """Re-validate dirty nets against *solution*; return the dirty set."""
        tracked_nets, _raw, rebuild = self.tracker.consume()
        if rebuild or not self._built:
            self._reset_state()
            self._built = True
            dirty = set(solution.routes)
        else:
            dirty = set(tracked_nets)
            for name, route in solution.routes.items():
                if self._route_revisions.get(name) != route.revision:
                    dirty.add(name)
            for name in self._route_revisions:
                if name not in solution.routes:
                    dirty.add(name)
        dirty.discard("")
        if not dirty:
            return dirty

        for name in dirty:
            self._remove_net(name)
        for name in dirty:
            route = solution.routes.get(name)
            if route is None:
                self._route_revisions.pop(name, None)
            else:
                self._route_revisions[name] = route.revision
                self._add_net(name, route)
        for name in dirty:
            if name in self._features:
                self._scan_pairs(name)
        return dirty

    # -- per-net removal / addition ----------------------------------------

    def _remove_net(self, name: str) -> None:
        owner = self._occ_owner
        for entry in self._features.pop(name, ()):
            for index in entry.indices:
                nets = self._occ.get(index)
                if nets is not None:
                    nets.discard(name)
                    if not nets:
                        del self._occ[index]
                        owner[index] = 0
                    elif len(nets) == 1:
                        owner[index] = self._intern(next(iter(nets)))
        for pair in self._pairs_by_net.pop(name, ()):
            self._pair_conflicts.pop(pair, None)
            partner = pair[1] if pair[0] == name else pair[0]
            partner_pairs = self._pairs_by_net.get(partner)
            if partner_pairs is not None:
                partner_pairs.discard(pair)
        self._obstacle_conflicts.pop(name, None)
        self._uncolored.pop(name, None)

    def _extract_features(self, route: NetRoute) -> List[Feature]:
        """Flat-index twin of the oracle's ``_net_features``.

        Returns the identical feature list -- same partition, same order,
        same fields -- built with an int-keyed union-find instead of the
        oracle's GridPoint-keyed DisjointSet.  Extraction runs for every
        dirty net on every refresh, where GridPoint hashing dominated the
        profile; group order is preserved because a group enters the result
        when its first member appears in ``vertex_colors`` order, exactly
        like the oracle's ``groups[dsu.find(vertex)]`` insertion.  The
        differential suites pin the equivalence against the oracle.
        """
        vertices = route.vertices
        colored = [
            (vertex, color)
            for vertex, color in route.vertex_colors.items()
            if vertex in vertices
        ]
        if not colored:
            return []
        index_of = self.grid.index_of
        color_at: Dict[int, int] = {}
        parent: Dict[int, int] = {}
        keyed: List[Tuple[int, GridPoint]] = []
        for vertex, color in colored:
            index = index_of(vertex)
            color_at[index] = color
            parent[index] = index
            keyed.append((index, vertex))
        color_get = color_at.get
        for a, b in route.edges:
            if a.layer != b.layer:
                continue
            ia = index_of(a)
            color_a = color_get(ia)
            if color_a is None:
                continue
            ib = index_of(b)
            if color_get(ib) != color_a:
                continue
            # Union by path-halving find; root choice cannot affect the
            # partition, which is all the oracle's grouping depends on.
            while parent[ia] != ia:
                parent[ia] = parent[parent[ia]]
                ia = parent[ia]
            while parent[ib] != ib:
                parent[ib] = parent[parent[ib]]
                ib = parent[ib]
            if ia != ib:
                parent[ib] = ia
        groups: Dict[int, List[GridPoint]] = {}
        group_colors: Dict[int, int] = {}
        for index, vertex in keyed:
            root = index
            while parent[root] != root:
                parent[root] = parent[parent[root]]
                root = parent[root]
            members = groups.get(root)
            if members is None:
                groups[root] = [vertex]
                group_colors[root] = color_at[index]
            else:
                members.append(vertex)
        name = route.net_name
        return [
            Feature(
                net_name=name,
                layer=members[0].layer,
                color=group_colors[root],
                vertices=frozenset(members),
            )
            for root, members in groups.items()
        ]

    def _add_net(self, name: str, route: NetRoute) -> None:
        features = self._extract_features(route)
        index_of = self.grid.index_of
        vertex_rect = self.grid.vertex_rect
        net_id = self._intern(name)
        owner = self._occ_owner
        entries: List[_FeatureEntry] = []
        for feature in features:
            ordered = tuple(sorted(feature.vertices))
            rects = [vertex_rect(v) for v in ordered]
            bbox = Rect.bounding(rects)
            coords = tuple((r.xlo, r.ylo, r.xhi, r.yhi) for r in rects)
            indices = array("q", [index_of(v) for v in ordered])
            entries.append(_FeatureEntry(feature, bbox, indices, ordered, coords))
            for index in indices:
                occ = self._occ.setdefault(index, set())
                occ.add(name)
                owner[index] = net_id if len(occ) == 1 else -1
        self._features[name] = entries
        if features:
            obstacle = self._obstacle_conflicts_prefiltered(entries)
            if obstacle:
                self._obstacle_conflicts[name] = obstacle
        uncolored = self._count_uncolored(route, entries)
        if uncolored:
            self._uncolored[name] = uncolored

    def _obstacle_conflicts_prefiltered(
        self, entries: List[_FeatureEntry]
    ) -> List[ColorConflict]:
        """Bbox-prefiltered twin of the oracle's ``_obstacle_conflicts``.

        The feature bbox contains every member rect, so its gap to the
        obstacle lower-bounds every member gap: pairs whose bbox gap already
        meets ``dcolor`` skip the per-vertex rect walk.  Surviving pairs run
        the oracle's exact loop over the same frozenset (same iteration
        order), so the emitted conflicts -- and their order -- are identical.
        """
        obstacles = self.design.colored_obstacles()
        if not obstacles:
            return []
        conflicts: List[ColorConflict] = []
        vertex_rect = self.grid.vertex_rect
        for entry in entries:
            feature = entry.feature
            dcolor = self.rules.color_spacing_on(feature.layer)
            bbox = entry.bbox
            for obstacle in obstacles:
                if obstacle.layer != feature.layer or obstacle.color != feature.color:
                    continue
                if bbox.distance_to(obstacle.rect) >= dcolor:
                    continue
                hit = None
                for vertex in feature.vertices:
                    if vertex_rect(vertex).distance_to(obstacle.rect) < dcolor:
                        hit = vertex
                        break
                if hit is not None:
                    conflicts.append(
                        ColorConflict(
                            net_a=feature.net_name,
                            net_b=f"__fixed__{obstacle.name or 'obstacle'}",
                            layer=feature.layer,
                            color=feature.color,
                            location=hit,
                            kind="same-mask",
                        )
                    )
        return conflicts

    def _count_uncolored(self, route: NetRoute, entries: List[_FeatureEntry]) -> int:
        """Count routed TPL-layer vertices without a mask assignment.

        Equivalent to the oracle's per-vertex ``vertex not in colors``
        membership walk: the cached feature entries hold exactly the
        colored vertices that are part of the route, so the count is the
        route's TPL-layer vertex total minus the entries' TPL-layer vertex
        total -- no per-vertex hashing.
        """
        if not route.routed:
            return 0
        layers = self.design.tech.layers
        total = sum(1 for vertex in route.vertices if layers[vertex.layer].tpl)
        colored = sum(
            len(entry.ordered)
            for entry in entries
            if layers[entry.feature.layer].tpl
        )
        return total - colored

    # -- pair scanning ------------------------------------------------------

    def _scan_pairs(self, name: str) -> None:
        """Re-classify *name* against every net within its interaction radius.

        Candidate partners are found by expanding the net's feature vertices
        by the layer's reach (the same offsets the dirty-region expansion
        uses) and reading the feature-occupancy mirror -- a net outside the
        expanded region cannot conflict with *name*.
        """
        grid = self.grid
        occ_get = self._occ.get
        self_id = self._name_ids.get(name, 0)
        candidates: Set[str] = set()
        # One scan per layer, not per feature: the features' vertex arrays
        # are concatenated so small features do not pay per-call overhead.
        by_layer: Dict[int, List[_FeatureEntry]] = {}
        for entry in self._features.get(name, ()):
            by_layer.setdefault(entry.feature.layer, []).append(entry)
        for layer, entries in by_layer.items():
            if len(entries) == 1:
                merged = entries[0].indices
            else:
                merged = array("q")
                for entry in entries:
                    merged.extend(entry.indices)
            hits = scan_hits(
                merged,
                grid.layer_interaction_offset_arrays(layer),
                self._occ_owner,
                self_id,
                grid.num_cols,
                grid.num_rows,
            )
            if hits is None:
                for entry in entries:
                    self._feature_candidates_pure(
                        entry.feature, entry.indices, candidates
                    )
                continue
            owner = self._occ_owner
            id_names = self._id_names
            for _src, dst in hits:
                # A positive owner id names the lone occupant directly; only
                # multi-occupant cells (-1) fall back to the occupancy dict.
                occupant = owner[dst]
                if occupant > 0:
                    candidates.add(id_names[occupant])
                else:
                    others = occ_get(dst)
                    if others:
                        candidates.update(others)
        candidates.discard(name)
        for partner in candidates:
            pair = (name, partner) if name <= partner else (partner, name)
            if pair in self._pair_conflicts:
                continue  # the partner was dirty too and already rescanned
            conflicts = self._classify_net_pair(name, partner)
            self._pair_conflicts[pair] = conflicts
            self._pairs_by_net.setdefault(name, set()).add(pair)
            self._pairs_by_net.setdefault(partner, set()).add(pair)

    def _feature_candidates_pure(
        self, feature: Feature, indices: array, candidates: Set[str]
    ) -> None:
        """The original dict/set scan: fallback tier and behavioral reference."""
        grid = self.grid
        rows, cols, plane = grid.num_rows, grid.num_cols, grid.plane_size
        occ_get = self._occ.get
        offsets = self._offsets_for(feature.layer)
        for index in indices:
            col, row = divmod(index % plane, rows)
            for dcol, drow, delta in offsets:
                if not (0 <= col + dcol < cols and 0 <= row + drow < rows):
                    continue
                others = occ_get(index + delta)
                if others:
                    candidates.update(others)

    def _classify_net_pair(self, name: str, partner: str) -> List[ColorConflict]:
        conflicts: List[ColorConflict] = []
        partner_entries = self._features.get(partner, ())
        for entry in self._features.get(name, ()):
            feature, bbox = entry.feature, entry.bbox
            dcolor = self.rules.color_spacing_on(feature.layer)
            reach = max(dcolor, self.rules.min_spacing)
            for other_entry in partner_entries:
                other = other_entry.feature
                if other.layer != feature.layer:
                    continue
                # The bbox gap lower-bounds every vertex-pair gap, so pairs
                # outside the reach can be skipped without exact distances.
                if bbox.distance_to(other_entry.bbox) >= reach:
                    continue
                # Anchor the conflict at the feature vertex nearest the
                # partner so rip-up history lands where the metal clashes.
                # Inlined L-infinity rect gap over the cached corner ints;
                # the sorted walk keeps only strictly closer vertices, which
                # reproduces the reference min()'s smallest-vertex
                # tie-breaking, and a zero gap cannot be beaten.
                oxlo, oylo, oxhi, oyhi = (
                    other_entry.bbox.xlo,
                    other_entry.bbox.ylo,
                    other_entry.bbox.xhi,
                    other_entry.bbox.yhi,
                )
                anchor = entry.ordered[0]
                best = None
                for vertex, (xlo, ylo, xhi, yhi) in zip(entry.ordered, entry.coords):
                    gap = oxlo - xhi
                    if xlo - oxhi > gap:
                        gap = xlo - oxhi
                    if oylo - yhi > gap:
                        gap = oylo - yhi
                    if ylo - oyhi > gap:
                        gap = ylo - oyhi
                    if gap <= 0:
                        anchor = vertex
                        break
                    if best is None or gap < best:
                        best = gap
                        anchor = vertex
                conflict = self.oracle._classify_pair(feature, other, anchor, dcolor)
                if conflict is not None:
                    conflicts.append(conflict)
        return conflicts

    # ------------------------------------------------------------------
    # Reports (same shapes as the full checker)
    # ------------------------------------------------------------------

    def check(self, solution: RoutingSolution) -> ConflictReport:
        """Refresh against *solution* and return the aggregated report."""
        self.refresh(solution)
        return self.report()

    def report(self) -> ConflictReport:
        """Return a :class:`ConflictReport` assembled from the running tallies."""
        conflicts: List[ColorConflict] = []
        for pair in sorted(self._pair_conflicts):
            conflicts.extend(self._pair_conflicts[pair])
        for name in sorted(self._obstacle_conflicts):
            conflicts.extend(self._obstacle_conflicts[name])
        return ConflictReport(
            conflicts=conflicts,
            uncolored_vertices=sum(self._uncolored.values()),
        )

    def conflict_count(self) -> int:
        """Return the running conflict tally (after a refresh)."""
        return sum(len(found) for found in self._pair_conflicts.values()) + sum(
            len(found) for found in self._obstacle_conflicts.values()
        )

    def count(self, solution: RoutingSolution) -> int:
        """Refresh against *solution* and return only the conflict count."""
        self.refresh(solution)
        return self.conflict_count()

    def detach(self) -> None:
        """Stop listening to grid deltas (the tallies freeze)."""
        self.tracker.detach()
