"""Incremental counterpart of :class:`repro.dr.drc.DRCChecker`.

The full checker re-walks the entire solution on every call; this one
maintains running tallies (shorts, spacing violations, open nets, guide and
direction statistics) and, on :meth:`refresh`, re-validates only the nets
dirtied since the previous call.  Dirtiness comes from two sources:

* the :class:`~repro.check.dirty.DirtyRegionTracker` draining the grid's
  per-net occupancy/color delta hooks, and
* route-object replacement in the :class:`~repro.grid.RoutingSolution`
  (rip-up & reroute swaps ``NetRoute`` instances; snapshot restores swap
  them back), detected by the routes' monotone ``revision`` stamps
  (identity comparison is unsound: the allocator reuses addresses of
  collected routes).

Violations between two *clean* nets cannot change -- shorts and spacing
depend only on the two nets' geometry -- so invalidation is exact: every
cached violation involving a dirty net is dropped and the dirty net's new
metal is re-scanned against the maintained occupancy mirror inside its
spacing radius (the per-vertex interaction offsets are the dirty-region
expansion of :mod:`repro.check.dirty`, applied net by net).

The neighborhood scan itself runs on the tiered
:func:`repro.check.kernels.scan_hits` fast path (native ``_checkwork``
kernel or a numpy broadcast over the flat owner mirror) when
:mod:`repro.accel` has an accelerated tier open; the original pure
dict/set loop is kept verbatim as the fallback and behavioral reference.

The full :class:`DRCChecker` remains the frozen reference oracle;
``tests/test_incremental_check.py`` and ``tests/test_check_kernels.py``
differentially prove every tier reports the same violations after every
mutation.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set, Tuple

from repro.check.dirty import DirtyRegionTracker
from repro.check.kernels import scan_hits, zero_owner_mirror
from repro.design import Design
from repro.dr.drc import DRCChecker, Violation
from repro.geometry import GridPoint
from repro.gr.guide import GuideSet
from repro.grid import RoutingGrid, RoutingSolution

#: Canonical spacing-pair key: ``(net_a, net_b, index_a, index_b)``.
#: Net names ordered ascending with each flat index kept on its net's side;
#: flat index order equals GridPoint (layer, col, row) order, so the key
#: reproduces the full checker's ``_pair_key`` canonicalisation (two nets in
#: a spacing pair never share a name) without hashing GridPoints per probe.
PairKey = Tuple[str, str, int, int]


class IncrementalDRCChecker:
    """Incrementally maintained design-rule tallies over a routing solution."""

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        guides: Optional[GuideSet] = None,
        tracker: Optional[DirtyRegionTracker] = None,
    ) -> None:
        self.design = design
        self.grid = grid
        self.guides = guides
        self.rules = grid.rules
        self.oracle = DRCChecker(design, grid, guides)
        self.tracker = tracker if tracker is not None else DirtyRegionTracker(grid)
        # Canonical offset table shared through the grid cache; the center
        # offset is dropped because exact overlap is a short, not spacing.
        self._offset_arrays = grid.interaction_offset_arrays(
            self.rules.min_spacing, include_center=False
        )
        self._spacing_offsets = self._offset_arrays.offsets
        self._reset_state()

    def _reset_state(self) -> None:
        self._built = False
        self._route_revisions: Dict[str, int] = {}
        # Per-net caches (all routes, including failed ones, mirror
        # RoutingSolution.vertex_ownership()).
        self._net_indices: Dict[str, array] = {}
        self._net_routed: Dict[str, bool] = {}
        # Flat-index mirrors.
        self._vertex_nets: Dict[int, Set[str]] = {}
        self._spacing_occ: Dict[int, Set[str]] = {}
        # Flat owner mirror of _spacing_occ for the scan kernels: 0 = empty,
        # interned id = single occupant, -1 = multiple occupants.
        self._spacing_owner = zero_owner_mirror(self.grid.num_vertices)
        self._name_ids: Dict[str, int] = {}
        # Reverse interning table (_name_ids inverted, index = id) so the
        # hit loop resolves single-occupant cells without touching the
        # occupancy dict.
        self._id_names: List[str] = [""]
        # Running tallies.
        self._shorts: Dict[int, Violation] = {}
        self._spacing: Dict[PairKey, Violation] = {}
        self._spacing_by_net: Dict[str, Set[PairKey]] = {}
        self._opens: Dict[str, Violation] = {}
        self._out_of_guide: Dict[str, int] = {}
        self._wrong_way: Dict[str, int] = {}
        self._pin_groups: Dict[str, List[List[GridPoint]]] = {}
        self._routable: Dict[str, object] = {}

    def _intern(self, name: str) -> int:
        ident = self._name_ids.get(name)
        if ident is None:
            ident = len(self._name_ids) + 1
            self._name_ids[name] = ident
            self._id_names.append(name)
        return ident

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, solution: RoutingSolution) -> Set[str]:
        """Re-validate dirty nets against *solution*; return the dirty set."""
        tracked_nets, raw_indices, rebuild = self.tracker.consume()
        if rebuild or not self._built:
            self._reset_state()
            self._built = True
            self._routable = {net.name: net for net in self.design.routable_nets()}
            dirty = set(solution.routes) | set(self._routable)
            raw_indices = set()
        else:
            dirty = set(tracked_nets)
            for name, route in solution.routes.items():
                if self._route_revisions.get(name) != route.revision:
                    dirty.add(name)
            for name in self._route_revisions:
                if name not in solution.routes:
                    dirty.add(name)
        dirty.discard("")
        if not dirty:
            return dirty

        touched = set(raw_indices)
        for name in dirty:
            self._remove_net(name, touched)
        # Register all dirty nets' metal before pair scanning so dirty-dirty
        # spacing pairs are discovered from either side.
        present: List[str] = []
        for name in dirty:
            route = solution.routes.get(name)
            if route is None:
                self._route_revisions.pop(name, None)
            else:
                self._route_revisions[name] = route.revision
                self._add_net(name, route, touched)
                present.append(name)
        self._rescan_shorts(touched)
        for name in present:
            if self._net_routed.get(name):
                self._scan_spacing(name)
        for name in dirty:
            if name in self._routable:
                self._check_open(name, solution)
        return dirty

    # -- per-net removal / addition ----------------------------------------

    def _remove_net(self, name: str, touched: Set[int]) -> None:
        routed = self._net_routed.get(name)
        owner = self._spacing_owner
        for index in self._net_indices.pop(name, ()):
            touched.add(index)
            nets = self._vertex_nets.get(index)
            if nets is not None:
                nets.discard(name)
                if not nets:
                    del self._vertex_nets[index]
            if routed:
                occ = self._spacing_occ.get(index)
                if occ is not None:
                    occ.discard(name)
                    if not occ:
                        del self._spacing_occ[index]
                        owner[index] = 0
                    elif len(occ) == 1:
                        owner[index] = self._intern(next(iter(occ)))
        self._net_routed.pop(name, None)
        for key in self._spacing_by_net.pop(name, ()):
            self._spacing.pop(key, None)
            partner = key[1] if key[0] == name else key[0]
            partner_keys = self._spacing_by_net.get(partner)
            if partner_keys is not None:
                partner_keys.discard(key)
        self._opens.pop(name, None)
        self._out_of_guide.pop(name, None)
        self._wrong_way.pop(name, None)

    def _add_net(self, name: str, route, touched: Set[int]) -> None:
        index_of = self.grid.index_of
        indices = array("q", [index_of(vertex) for vertex in route.vertices])
        self._net_indices[name] = indices
        self._net_routed[name] = bool(route.routed)
        for index in indices:
            touched.add(index)
            self._vertex_nets.setdefault(index, set()).add(name)
        if route.routed:
            net_id = self._intern(name)
            owner = self._spacing_owner
            for index in indices:
                occ = self._spacing_occ.setdefault(index, set())
                occ.add(name)
                owner[index] = net_id if len(occ) == 1 else -1
            self._wrong_way[name] = self.oracle.route_wrong_way(route)
            if self.guides is not None:
                self._out_of_guide[name] = self.oracle.route_out_of_guide(route)

    # -- shorts -------------------------------------------------------------

    def _rescan_shorts(self, touched: Set[int]) -> None:
        vertex_of = self.grid.vertex_of
        for index in touched:
            owners = self._vertex_nets.get(index, ())
            if len(owners) > 1:
                self._shorts[index] = Violation(
                    kind="short",
                    nets=tuple(sorted(owners)),
                    location=vertex_of(index),
                    detail=f"{len(owners)} nets overlap",
                )
            else:
                self._shorts.pop(index, None)

    # -- spacing ------------------------------------------------------------

    def _scan_spacing(self, name: str) -> None:
        if not self._spacing_offsets:
            return
        indices = self._net_indices.get(name)
        if not indices:
            return
        hits = scan_hits(
            indices,
            self._offset_arrays,
            self._spacing_owner,
            self._name_ids.get(name, 0),
            self.grid.num_cols,
            self.grid.num_rows,
        )
        if hits is None:
            self._scan_spacing_pure(name)
            return
        vertex_table = self.grid.vertex_table()
        detail = f"below min spacing {self.rules.min_spacing}"
        occ_get = self._spacing_occ.get
        owner = self._spacing_owner
        id_names = self._id_names
        spacing = self._spacing
        for src, dst in hits:
            # The kernel only reports occupied non-self cells; a positive
            # owner id resolves the single occupant without touching the
            # occupancy dict (the common case -- shorts are rare).
            occupant = owner[dst]
            if occupant > 0:
                others: Tuple[str, ...] = (id_names[occupant],)
            else:
                found = occ_get(dst)
                if not found:
                    continue
                others = found
            for other in others:
                if other == name:
                    continue
                key = (
                    (name, other, src, dst)
                    if name < other
                    else (other, name, dst, src)
                )
                if key in spacing:
                    continue
                spacing[key] = Violation(
                    kind="spacing",
                    nets=(key[0], key[1]),
                    location=vertex_table[key[2]],
                    detail=detail,
                )
                self._spacing_by_net.setdefault(name, set()).add(key)
                self._spacing_by_net.setdefault(other, set()).add(key)

    def _scan_spacing_pure(self, name: str) -> None:
        """The original dict/set scan: fallback tier and behavioral reference."""
        grid = self.grid
        rows, cols, plane = grid.num_rows, grid.num_cols, grid.plane_size
        vertex_table = grid.vertex_table()
        detail = f"below min spacing {self.rules.min_spacing}"
        occ_get = self._spacing_occ.get
        spacing = self._spacing
        for index in self._net_indices.get(name, ()):
            col, row = divmod(index % plane, rows)
            for dcol, drow, delta in self._spacing_offsets:
                if not (0 <= col + dcol < cols and 0 <= row + drow < rows):
                    continue
                neighbor = index + delta
                others = occ_get(neighbor)
                if not others:
                    continue
                for other in others:
                    if other == name:
                        continue
                    key = (
                        (name, other, index, neighbor)
                        if name < other
                        else (other, name, neighbor, index)
                    )
                    if key in spacing:
                        continue
                    spacing[key] = Violation(
                        kind="spacing",
                        nets=(key[0], key[1]),
                        location=vertex_table[key[2]],
                        detail=detail,
                    )
                    self._spacing_by_net.setdefault(name, set()).add(key)
                    self._spacing_by_net.setdefault(other, set()).add(key)

    # -- opens / statistics -------------------------------------------------

    def _check_open(self, name: str, solution: RoutingSolution) -> None:
        route = solution.routes.get(name)
        if route is None or not route.routed:
            self._opens[name] = Violation(
                kind="open", nets=(name,), location=GridPoint(0, 0, 0), detail="unrouted"
            )
            return
        groups = self._pin_groups.get(name)
        if groups is None:
            net = self._routable[name]
            groups = [self.grid.pin_access_vertices(pin) for pin in net.pins]
            self._pin_groups[name] = groups
        if self._route_connects_all(route, groups):
            self._opens.pop(name, None)
        else:
            anchor = next(iter(route.vertices), GridPoint(0, 0, 0))
            self._opens[name] = Violation(
                kind="open",
                nets=(name,),
                location=anchor,
                detail="routed metal does not connect every pin",
            )

    def _route_connects_all(self, route, groups: List[List[GridPoint]]) -> bool:
        """Int-keyed twin of :meth:`NetRoute.connects_all`.

        Same union structure over the same members (union-find partitions do
        not depend on root choice), keyed by flat index so the per-refresh
        open re-check skips GridPoint hashing on every union/find.
        """
        if not groups:
            return True
        index_of = self.grid.index_of
        vertices = route.vertices
        parent: Dict[int, int] = {}
        for vertex in vertices:
            index = index_of(vertex)
            parent[index] = index

        def find(index: int) -> int:
            root = parent.setdefault(index, index)
            while parent[root] != root:
                parent[root] = parent[parent[root]]
                root = parent[root]
            return root

        for a, b in route.edges:
            root_a = find(index_of(a))
            root_b = find(index_of(b))
            if root_a != root_b:
                parent[root_b] = root_a
        anchors: List[int] = []
        for group in groups:
            touched = [v for v in group if v in vertices]
            if not touched:
                return False
            first = index_of(touched[0])
            anchors.append(first)
            for vertex in touched[1:]:
                root_a = find(first)
                root_b = find(index_of(vertex))
                if root_a != root_b:
                    parent[root_b] = root_a
        root = find(anchors[0])
        return all(find(anchor) == root for anchor in anchors[1:])

    # ------------------------------------------------------------------
    # Reports (same shapes as the full checker)
    # ------------------------------------------------------------------

    def check(self, solution: RoutingSolution) -> Dict[str, List[Violation]]:
        """Refresh against *solution* and return violations grouped by kind."""
        self.refresh(solution)
        return {
            "short": sorted(self._shorts.values(), key=_violation_order),
            "spacing": sorted(self._spacing.values(), key=_violation_order),
            "open": sorted(self._opens.values(), key=_violation_order),
        }

    def summary(self, solution: RoutingSolution) -> Dict[str, int]:
        """Refresh against *solution* and return the running tallies."""
        self.refresh(solution)
        return {
            "shorts": len(self._shorts),
            "spacing": len(self._spacing),
            "opens": len(self._opens),
            "out_of_guide": sum(self._out_of_guide.values()),
            "wrong_way": sum(self._wrong_way.values()),
        }

    def shorted_nets(self) -> Set[str]:
        """Return every net currently involved in a short (after a refresh)."""
        offenders: Set[str] = set()
        for violation in self._shorts.values():
            offenders.update(violation.nets)
        return offenders

    def detach(self) -> None:
        """Stop listening to grid deltas (the tallies freeze)."""
        self.tracker.detach()


def _violation_order(violation: Violation) -> Tuple:
    return (violation.nets, violation.location, violation.detail)
