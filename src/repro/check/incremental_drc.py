"""Incremental counterpart of :class:`repro.dr.drc.DRCChecker`.

The full checker re-walks the entire solution on every call; this one
maintains running tallies (shorts, spacing violations, open nets, guide and
direction statistics) and, on :meth:`refresh`, re-validates only the nets
dirtied since the previous call.  Dirtiness comes from two sources:

* the :class:`~repro.check.dirty.DirtyRegionTracker` draining the grid's
  per-net occupancy/color delta hooks, and
* route-object replacement in the :class:`~repro.grid.RoutingSolution`
  (rip-up & reroute swaps ``NetRoute`` instances; snapshot restores swap
  them back), detected by identity comparison.

Violations between two *clean* nets cannot change -- shorts and spacing
depend only on the two nets' geometry -- so invalidation is exact: every
cached violation involving a dirty net is dropped and the dirty net's new
metal is re-scanned against the maintained occupancy mirror inside its
spacing radius (the per-vertex interaction offsets are the dirty-region
expansion of :mod:`repro.check.dirty`, applied net by net).

The full :class:`DRCChecker` remains the frozen reference oracle;
``tests/test_incremental_check.py`` differentially proves both report the
same violations after every mutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.check.dirty import DirtyRegionTracker
from repro.design import Design
from repro.dr.drc import DRCChecker, Violation
from repro.geometry import GridPoint
from repro.gr.guide import GuideSet
from repro.grid import RoutingGrid, RoutingSolution

#: Canonical spacing-pair key: ``(net_a, net_b, vertex_a, vertex_b)``.
PairKey = Tuple[str, str, GridPoint, GridPoint]


class IncrementalDRCChecker:
    """Incrementally maintained design-rule tallies over a routing solution."""

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        guides: Optional[GuideSet] = None,
        tracker: Optional[DirtyRegionTracker] = None,
    ) -> None:
        self.design = design
        self.grid = grid
        self.guides = guides
        self.rules = grid.rules
        self.oracle = DRCChecker(design, grid, guides)
        self.tracker = tracker if tracker is not None else DirtyRegionTracker(grid)
        self._spacing_offsets = [
            offset
            for offset in grid.interaction_offsets(self.rules.min_spacing)
            if offset != (0, 0, 0)  # exact overlap is a short, not spacing
        ]
        self._reset_state()

    def _reset_state(self) -> None:
        self._built = False
        self._route_ids: Dict[str, int] = {}
        # Per-net caches (all routes, including failed ones, mirror
        # RoutingSolution.vertex_ownership()).
        self._net_indices: Dict[str, List[int]] = {}
        self._net_routed: Dict[str, bool] = {}
        # Flat-index mirrors.
        self._vertex_nets: Dict[int, Set[str]] = {}
        self._spacing_occ: Dict[int, Set[str]] = {}
        # Running tallies.
        self._shorts: Dict[int, Violation] = {}
        self._spacing: Dict[PairKey, Violation] = {}
        self._spacing_by_net: Dict[str, Set[PairKey]] = {}
        self._opens: Dict[str, Violation] = {}
        self._out_of_guide: Dict[str, int] = {}
        self._wrong_way: Dict[str, int] = {}
        self._pin_groups: Dict[str, List[List[GridPoint]]] = {}
        self._routable: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, solution: RoutingSolution) -> Set[str]:
        """Re-validate dirty nets against *solution*; return the dirty set."""
        tracked_nets, raw_indices, rebuild = self.tracker.consume()
        if rebuild or not self._built:
            self._reset_state()
            self._built = True
            self._routable = {net.name: net for net in self.design.routable_nets()}
            dirty = set(solution.routes) | set(self._routable)
            raw_indices = set()
        else:
            dirty = set(tracked_nets)
            for name, route in solution.routes.items():
                if self._route_ids.get(name) != id(route):
                    dirty.add(name)
            for name in self._route_ids:
                if name not in solution.routes:
                    dirty.add(name)
        dirty.discard("")
        if not dirty:
            return dirty

        touched = set(raw_indices)
        for name in dirty:
            self._remove_net(name, touched)
        # Register all dirty nets' metal before pair scanning so dirty-dirty
        # spacing pairs are discovered from either side.
        present: List[str] = []
        for name in dirty:
            route = solution.routes.get(name)
            if route is None:
                self._route_ids.pop(name, None)
            else:
                self._route_ids[name] = id(route)
                self._add_net(name, route, touched)
                present.append(name)
        self._rescan_shorts(touched)
        for name in present:
            if self._net_routed.get(name):
                self._scan_spacing(name)
        for name in dirty:
            if name in self._routable:
                self._check_open(name, solution)
        return dirty

    # -- per-net removal / addition ----------------------------------------

    def _remove_net(self, name: str, touched: Set[int]) -> None:
        for index in self._net_indices.pop(name, ()):
            touched.add(index)
            nets = self._vertex_nets.get(index)
            if nets is not None:
                nets.discard(name)
                if not nets:
                    del self._vertex_nets[index]
            if self._net_routed.get(name):
                occ = self._spacing_occ.get(index)
                if occ is not None:
                    occ.discard(name)
                    if not occ:
                        del self._spacing_occ[index]
        self._net_routed.pop(name, None)
        for key in self._spacing_by_net.pop(name, ()):
            self._spacing.pop(key, None)
            partner = key[1] if key[0] == name else key[0]
            partner_keys = self._spacing_by_net.get(partner)
            if partner_keys is not None:
                partner_keys.discard(key)
        self._opens.pop(name, None)
        self._out_of_guide.pop(name, None)
        self._wrong_way.pop(name, None)

    def _add_net(self, name: str, route, touched: Set[int]) -> None:
        index_of = self.grid.index_of
        indices = [index_of(vertex) for vertex in route.vertices]
        self._net_indices[name] = indices
        self._net_routed[name] = bool(route.routed)
        for index in indices:
            touched.add(index)
            self._vertex_nets.setdefault(index, set()).add(name)
        if route.routed:
            for index in indices:
                self._spacing_occ.setdefault(index, set()).add(name)
            self._wrong_way[name] = self.oracle.route_wrong_way(route)
            if self.guides is not None:
                self._out_of_guide[name] = self.oracle.route_out_of_guide(route)

    # -- shorts -------------------------------------------------------------

    def _rescan_shorts(self, touched: Set[int]) -> None:
        vertex_of = self.grid.vertex_of
        for index in touched:
            owners = self._vertex_nets.get(index, ())
            if len(owners) > 1:
                self._shorts[index] = Violation(
                    kind="short",
                    nets=tuple(sorted(owners)),
                    location=vertex_of(index),
                    detail=f"{len(owners)} nets overlap",
                )
            else:
                self._shorts.pop(index, None)

    # -- spacing ------------------------------------------------------------

    def _scan_spacing(self, name: str) -> None:
        if not self._spacing_offsets:
            return
        grid = self.grid
        rows, cols, plane = grid.num_rows, grid.num_cols, grid.plane_size
        vertex_of = grid.vertex_of
        min_spacing = self.rules.min_spacing
        occ_get = self._spacing_occ.get
        for index in self._net_indices.get(name, ()):
            col, row = divmod(index % plane, rows)
            vertex: Optional[GridPoint] = None
            for dcol, drow, delta in self._spacing_offsets:
                if not (0 <= col + dcol < cols and 0 <= row + drow < rows):
                    continue
                others = occ_get(index + delta)
                if not others:
                    continue
                if vertex is None:
                    vertex = vertex_of(index)
                other_vertex = vertex_of(index + delta)
                for other in others:
                    if other == name:
                        continue
                    key = DRCChecker._pair_key(name, vertex, other, other_vertex)
                    if key in self._spacing:
                        continue
                    self._spacing[key] = Violation(
                        kind="spacing",
                        nets=tuple(sorted((name, other))),
                        location=key[2],
                        detail=f"below min spacing {min_spacing}",
                    )
                    self._spacing_by_net.setdefault(name, set()).add(key)
                    self._spacing_by_net.setdefault(other, set()).add(key)

    # -- opens / statistics -------------------------------------------------

    def _check_open(self, name: str, solution: RoutingSolution) -> None:
        route = solution.routes.get(name)
        if route is None or not route.routed:
            self._opens[name] = Violation(
                kind="open", nets=(name,), location=GridPoint(0, 0, 0), detail="unrouted"
            )
            return
        groups = self._pin_groups.get(name)
        if groups is None:
            net = self._routable[name]
            groups = [self.grid.pin_access_vertices(pin) for pin in net.pins]
            self._pin_groups[name] = groups
        if route.connects_all(groups):
            self._opens.pop(name, None)
        else:
            anchor = next(iter(route.vertices), GridPoint(0, 0, 0))
            self._opens[name] = Violation(
                kind="open",
                nets=(name,),
                location=anchor,
                detail="routed metal does not connect every pin",
            )

    # ------------------------------------------------------------------
    # Reports (same shapes as the full checker)
    # ------------------------------------------------------------------

    def check(self, solution: RoutingSolution) -> Dict[str, List[Violation]]:
        """Refresh against *solution* and return violations grouped by kind."""
        self.refresh(solution)
        return {
            "short": sorted(self._shorts.values(), key=_violation_order),
            "spacing": sorted(self._spacing.values(), key=_violation_order),
            "open": sorted(self._opens.values(), key=_violation_order),
        }

    def summary(self, solution: RoutingSolution) -> Dict[str, int]:
        """Refresh against *solution* and return the running tallies."""
        self.refresh(solution)
        return {
            "shorts": len(self._shorts),
            "spacing": len(self._spacing),
            "opens": len(self._opens),
            "out_of_guide": sum(self._out_of_guide.values()),
            "wrong_way": sum(self._wrong_way.values()),
        }

    def shorted_nets(self) -> Set[str]:
        """Return every net currently involved in a short (after a refresh)."""
        offenders: Set[str] = set()
        for violation in self._shorts.values():
            offenders.update(violation.nets)
        return offenders

    def detach(self) -> None:
        """Stop listening to grid deltas (the tallies freeze)."""
        self.tracker.detach()


def _violation_order(violation: Violation) -> Tuple:
    return (violation.nets, violation.location, violation.detail)
