"""Dirty-region tracking over :class:`~repro.grid.RoutingGrid` deltas.

Every rip-up-and-reroute iteration only touches a handful of nets, yet the
full-scan checkers re-walk the whole solution.  The tracker subscribes to
the grid's per-net occupancy/color delta hooks (commit/release, both O(|net|)
thanks to the per-net reverse occupancy index) and accumulates

* the set of **dirty nets** -- nets whose metal or masks changed since the
  tracker was last drained, and
* the set of **raw dirty flat indices** -- every vertex index touched by a
  commit, release or recolor,

which :meth:`DirtyRegionTracker.expanded_indices` grows by an interaction
radius (``Dcolor`` for color conflicts, ``min_spacing`` for DRC) into the
flat-index dirty *region*: the only vertices whose check verdicts can have
changed.  The incremental checkers in this package drain one tracker each.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.grid import RoutingGrid


class DirtyRegionTracker:
    """Accumulates per-net grid deltas into dirty-net and dirty-index sets.

    Attach with ``DirtyRegionTracker(grid)`` (subscribes itself) and drain
    with :meth:`consume` once per check refresh.  ``on_reset`` (emitted by
    :meth:`RoutingGrid.reset_routing_state`) flips :attr:`needs_rebuild` so
    consumers fall back to one full re-scan instead of trusting stale tallies.
    """

    def __init__(self, grid: RoutingGrid, subscribe: bool = True) -> None:
        self.grid = grid
        self._dirty_net_ids: Set[int] = set()
        self._dirty_indices: Set[int] = set()
        self.needs_rebuild = True
        if subscribe:
            grid.add_delta_listener(self)

    # -- grid delta hooks ---------------------------------------------------

    def on_occupy(self, net_id: int, index: int) -> None:
        """Record a single-vertex occupancy commit of *net_id*."""
        self._dirty_net_ids.add(net_id)
        self._dirty_indices.add(index)

    def on_release(self, net_id: int, indices: Set[int]) -> None:
        """Record the release of every vertex *net_id* occupied or colored."""
        self._dirty_net_ids.add(net_id)
        self._dirty_indices.update(indices)

    def on_color(self, net_id: int, index: int, color: int) -> None:
        """Record a mask (re)assignment at *index*."""
        self._dirty_net_ids.add(net_id)
        self._dirty_indices.add(index)

    def on_reset(self) -> None:
        """Record a bulk grid reset: incremental state must be rebuilt."""
        self.needs_rebuild = True
        self._dirty_net_ids.clear()
        self._dirty_indices.clear()

    # -- queries ------------------------------------------------------------

    def dirty_nets(self) -> Set[str]:
        """Return the names of nets with pending deltas."""
        return {self.grid.net_name_of(net_id) for net_id in self._dirty_net_ids}

    def raw_indices(self) -> Set[int]:
        """Return the raw (unexpanded) dirty flat-index set."""
        return set(self._dirty_indices)

    def expanded_indices(self, radius: int) -> Set[int]:
        """Return the dirty region: raw indices grown by *radius* (same layer).

        Only vertices inside this set can have gained or lost a violation or
        conflict whose interaction distance is *radius*.
        """
        grid = self.grid
        offsets = grid.interaction_offsets(radius)
        cols, rows, plane = grid.num_cols, grid.num_rows, grid.plane_size
        region: Set[int] = set()
        for index in self._dirty_indices:
            rem = index % plane
            col, row = divmod(rem, rows)
            for dcol, drow, delta in offsets:
                if 0 <= col + dcol < cols and 0 <= row + drow < rows:
                    region.add(index + delta)
        return region

    def consume(self) -> Tuple[Set[str], Set[int], bool]:
        """Drain and return ``(dirty nets, raw dirty indices, needs_rebuild)``."""
        nets = self.dirty_nets()
        indices = self._dirty_indices
        rebuild = self.needs_rebuild
        self._dirty_net_ids = set()
        self._dirty_indices = set()
        self.needs_rebuild = False
        return nets, indices, rebuild

    def detach(self) -> None:
        """Unsubscribe from the grid's delta hooks."""
        self.grid.remove_delta_listener(self)
