"""Deterministic, seeded fault injection for the supervision stack.

Worker crashes, compute hangs, slow replays, dropped pipes and torn
checkpoint writes must be *expected* events the executor absorbs -- and
proving that requires injecting them reproducibly, not ad-hoc SIGKILLs.
This module is the single switchboard: production code calls
:func:`fire` at a handful of **injection sites**, and an armed
:class:`FaultPlan` decides -- deterministically, from the plan text and
seed alone -- whether the site misbehaves on this particular hit.

Arming
------

A plan arms either programmatically (:func:`set_plan`, or the
:func:`injected` context manager tests use) or through the environment::

    REPRO_FAULT_PLAN="worker.crash:op=40;reply.delay:seconds=0.01,times=*"
    REPRO_FAULT_SEED=7

The environment is read once at import (so forked pool workers inherit
the armed plan through either the module state or the env); call
:func:`reload_from_env` after mutating ``os.environ`` in-process.

**Zero overhead when disarmed** is a hard requirement: every call site
guards with ``if faults.ARMED:`` -- a single module-attribute truth test
-- so a production campaign with no plan never pays for the hooks.

Plan grammar
------------

::

    plan    := clause (';' clause)*
    clause  := site ['@' nth] [':' params]
    params  := key '=' value (',' key '=' value)*

* ``site`` names one injection site (see :data:`SITES`); unknown sites
  are rejected at parse time.
* ``@nth`` skips the first ``nth - 1`` eligible hits of the clause (fire
  on the Nth eligible hit, 1-based).  Default: the first.
* ``times=N`` caps how often the clause fires in one process (default
  ``1``; ``times=*`` means every eligible hit).  Counters are
  per-process: a forked worker inherits the parent's counts at fork time
  and advances its own copies.
* ``p=0.5`` makes an eligible hit fire with probability 0.5 drawn from a
  per-clause :class:`random.Random` seeded by ``(seed, site, clause
  index)`` -- the chaos-sweep knob; fully deterministic for a given plan
  text and seed.
* Remaining params are site-specific triggers and tunables:
  ``worker=K`` restricts a clause to pool worker *K*; ``op=N`` makes
  ``worker.crash`` eligible only once the worker's replayed-op count has
  reached *N*; ``seconds=S`` sizes hangs and delays.

Injection sites
---------------

``worker.crash``
    Pool worker hard-exits (``os._exit``), as if SIGKILLed -- the parent
    sees a dead process / EOF mid-batch.  Checked after catch-up replay
    and between nets; ``op=N`` triggers at the first check where the
    worker's cumulative replayed-op count has reached *N*.
``worker.hang``
    Pool worker sleeps ``seconds`` (default 3600 -- effectively forever;
    the supervisor's deadline kills it) inside compute.
``reply.delay``
    Pool worker sleeps ``seconds`` (default 0.05) before replying: a
    slow replay / slow compute that must complete within the deadline.
``pipe.drop``
    Pool worker closes its pipe and exits cleanly without replying --
    the parent sees a bare EOF.
``compute.error``
    Speculative compute raises :class:`FaultError` (fires on every
    backend: thread, process and pool workers all route through
    ``_compute_speculative``).
``bootstrap.fail``
    Snapshot-bootstrapped worker fails its payload *decode* stage with a
    classified error -- exercising the fall-back-to-fork path.
``checkpoint.tear``
    ``journal_io._write_atomic`` writes a torn (truncated, non-atomic)
    document to the *final* path, simulating the power-loss window a
    non-atomic filesystem would expose.  The integrity checksum plus the
    retained-checkpoint fallback must absorb it.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.utils.env import env_int, env_str

#: Environment knobs: the plan text and the seed of probabilistic clauses.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Every legal injection site (typos in a plan must fail loudly, not
#: silently never fire).
SITES = (
    "worker.crash",
    "worker.hang",
    "reply.delay",
    "pipe.drop",
    "compute.error",
    "bootstrap.fail",
    "checkpoint.tear",
)

#: Module-level arming flag.  Call sites guard with ``if faults.ARMED:``
#: so a disarmed process pays exactly one attribute read per site hit.
ARMED: bool = False

_PLAN: Optional["FaultPlan"] = None

#: Process-scoped default fire context.  Worker entry points register
#: their identity once (``set_context(worker=index)``) so clauses with a
#: ``worker=K`` trigger can target sites -- like the compute hang inside
#: ``_compute_speculative`` -- that do not know the worker index at the
#: call site.  Explicit ``fire(**ctx)`` keys win over the defaults.
_CONTEXT: Dict[str, object] = {}


class FaultError(RuntimeError):
    """An injected failure (the payload of ``compute.error`` / ``bootstrap.fail``)."""


class PipeDropFault(Exception):
    """Raised inside a pool worker to make it drop its pipe without replying."""


@dataclass
class FaultClause:
    """One parsed clause of a fault plan."""

    site: str
    nth: int = 1
    times: Optional[int] = 1  # ``None`` = unlimited (``times=*``)
    params: Dict[str, float] = field(default_factory=dict)
    target_worker: Optional[int] = None
    probability: Optional[float] = None
    # Per-process counters (forked workers inherit a copy and advance it).
    eligible_hits: int = 0
    fired: int = 0
    _rng: Optional[random.Random] = None

    def seconds(self, default: float) -> float:
        """Return the clause's ``seconds`` tunable, or *default*."""
        return float(self.params.get("seconds", default))

    def matches(self, ctx: Dict[str, object]) -> bool:
        """Return whether this hit is *eligible* (triggers satisfied)."""
        if self.target_worker is not None and ctx.get("worker") != self.target_worker:
            return False
        op_threshold = self.params.get("op")
        if op_threshold is not None:
            ops_seen = ctx.get("ops_seen")
            if ops_seen is None or ops_seen < op_threshold:
                return False
        return True

    def should_fire(self, ctx: Dict[str, object]) -> bool:
        """Count an eligibility check; return whether the clause fires now."""
        if self.times is not None and self.fired >= self.times:
            return False
        if not self.matches(ctx):
            return False
        self.eligible_hits += 1
        if self.eligible_hits < self.nth:
            return False
        if self.probability is not None and self._rng.random() >= self.probability:
            return False
        self.fired += 1
        return True


def parse_plan(text: str, seed: int = 0) -> "FaultPlan":
    """Parse the ``REPRO_FAULT_PLAN`` grammar into a :class:`FaultPlan`."""
    clauses: List[FaultClause] = []
    for index, raw_clause in enumerate(text.split(";")):
        raw_clause = raw_clause.strip()
        if not raw_clause:
            continue
        head, _, raw_params = raw_clause.partition(":")
        site, _, raw_nth = head.strip().partition("@")
        site = site.strip()
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r} in plan clause {raw_clause!r}; "
                f"expected one of {SITES}"
            )
        nth = 1
        if raw_nth.strip():
            nth = int(raw_nth)
            if nth < 1:
                raise ValueError(f"@nth must be >= 1 in plan clause {raw_clause!r}")
        clause = FaultClause(site=site, nth=nth)
        for pair in raw_params.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise ValueError(
                    f"malformed param {pair!r} in plan clause {raw_clause!r}; "
                    "expected key=value"
                )
            if key == "times":
                clause.times = None if value == "*" else int(value)
                if clause.times is not None and clause.times < 1:
                    raise ValueError(f"times must be >= 1 or '*' in {raw_clause!r}")
            elif key == "worker":
                clause.target_worker = int(value)
            elif key == "p":
                clause.probability = float(value)
                if not 0.0 <= clause.probability <= 1.0:
                    raise ValueError(f"p must lie in [0, 1] in {raw_clause!r}")
            else:
                clause.params[key] = float(value)
        # String seeds hash stably (sha512) -- unlike tuple hashing, which
        # PYTHONHASHSEED would randomise across the campaign's processes.
        clause._rng = random.Random(f"{seed}:{site}:{index}")
        clauses.append(clause)
    return FaultPlan(clauses=clauses, seed=seed)


@dataclass
class FaultPlan:
    """A parsed, armed set of fault clauses (see module docstring grammar)."""

    clauses: List[FaultClause] = field(default_factory=list)
    seed: int = 0

    def match(self, site: str, ctx: Dict[str, object]) -> Optional[FaultClause]:
        """Return the first clause of *site* that fires on this hit."""
        for clause in self.clauses:
            if clause.site == site and clause.should_fire(ctx):
                return clause
        return None


def set_plan(plan: object, seed: int = 0) -> FaultPlan:
    """Arm *plan* (a :class:`FaultPlan` or plan text) for this process."""
    global _PLAN, ARMED
    if isinstance(plan, str):
        plan = parse_plan(plan, seed)
    _PLAN = plan
    ARMED = plan is not None and bool(plan.clauses)
    return plan


def clear_plan() -> None:
    """Disarm fault injection for this process."""
    global _PLAN, ARMED
    _PLAN = None
    ARMED = False


def active_plan() -> Optional[FaultPlan]:
    """Return the armed plan, or ``None`` when disarmed."""
    return _PLAN


def set_context(**ctx: object) -> None:
    """Register process-scoped default :func:`fire` context (worker identity)."""
    _CONTEXT.update(ctx)


def clear_context() -> None:
    """Drop the process-scoped default fire context."""
    _CONTEXT.clear()


def reload_from_env() -> Optional[FaultPlan]:
    """(Re-)arm from ``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED``; return the plan."""
    text = env_str(FAULT_PLAN_ENV)
    if text is None:
        clear_plan()
        return None
    return set_plan(text, seed=env_int(FAULT_SEED_ENV, 0))


@contextmanager
def injected(plan_text: str, seed: int = 0) -> Iterator[FaultPlan]:
    """Arm *plan_text* for the duration of the block (test helper)."""
    previous = _PLAN
    plan = set_plan(plan_text, seed=seed)
    try:
        yield plan
    finally:
        set_plan(previous) if previous is not None else clear_plan()


def fire(site: str, **ctx: object) -> Optional[FaultClause]:
    """Run injection site *site*; return the fired clause (or ``None``).

    For behavioural sites the action happens right here (crash the
    process, sleep, raise); ``checkpoint.tear`` only *reports* the fired
    clause and lets the call site do the tearing, because only it holds
    the document text.  Call sites must guard with ``if faults.ARMED:``
    so the disarmed path costs one attribute read.
    """
    plan = _PLAN
    if plan is None:
        return None
    if _CONTEXT:
        ctx = {**_CONTEXT, **ctx}
    clause = plan.match(site, ctx)
    if clause is None:
        return None
    if site == "worker.crash":
        # A hard exit, as close to SIGKILL as we can self-inflict: no
        # atexit handlers, no flushing, the pipe simply goes dead.
        os._exit(13)
    elif site == "worker.hang":
        time.sleep(clause.seconds(3600.0))
    elif site == "reply.delay":
        time.sleep(clause.seconds(0.05))
    elif site == "pipe.drop":
        raise PipeDropFault(f"injected pipe drop at worker {ctx.get('worker')}")
    elif site == "compute.error":
        raise FaultError(f"injected compute error (net {ctx.get('net')!r})")
    elif site == "bootstrap.fail":
        raise FaultError("injected snapshot payload decode failure")
    return clause


# Arm from the environment at import: forked pool workers inherit either
# this module state or the env itself, so env-driven plans reach every
# process of a campaign without plumbing.
reload_from_env()
