"""Utility data structures and helpers shared by the routing substrates.

The routers in :mod:`repro` lean on a small number of classic data
structures -- an updatable priority queue for Dijkstra-style searches, a
disjoint-set forest for connectivity bookkeeping, wall-clock timers for the
runtime columns of the experiment tables, and a seeded random-number helper
so that every synthetic benchmark is reproducible bit-for-bit.
"""

from repro.utils.priority_queue import UpdatablePriorityQueue
from repro.utils.disjoint_set import DisjointSet
from repro.utils.env import env_flag, env_float, env_int, env_str
from repro.utils.timer import Timer, Stopwatch
from repro.utils.rng import SeededRNG
from repro.utils.logging import get_logger, set_verbosity

__all__ = [
    "UpdatablePriorityQueue",
    "DisjointSet",
    "Timer",
    "Stopwatch",
    "SeededRNG",
    "env_flag",
    "env_float",
    "env_int",
    "env_str",
    "get_logger",
    "set_verbosity",
]
