"""Shared environment-knob parsing.

Every ``REPRO_*`` environment knob in the codebase goes through these
helpers so the accepted spellings are consistent everywhere: before this
module existed, ``REPRO_PURE_PYTHON=0`` disabled nothing while an integer
knob set to ``"0"`` meant zero -- now ``"0"``/``"false"``/``"no"``/``"off"``
(and the empty string) are uniformly falsy and ``"1"``/``"true"``/``"yes"``/
``"on"`` uniformly truthy, with anything else rejected loudly instead of
being silently interpreted.
"""

from __future__ import annotations

import os
from typing import Optional

#: Accepted spellings (lower-cased, stripped) of a truthy flag value.
TRUTHY = frozenset(("1", "true", "yes", "on"))

#: Accepted spellings of a falsy flag value; the empty string counts so
#: ``REPRO_FLAG= command`` behaves like an unset variable.
FALSY = frozenset(("", "0", "false", "no", "off"))


def env_flag(name: str, default: bool = False) -> bool:
    """Return boolean knob *name* from the environment.

    Unset falls back to *default*; unrecognised spellings raise
    :class:`ValueError` immediately (a typo in a gating knob must not
    silently select the wrong code path).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in TRUTHY:
        return True
    if value in FALSY:
        return False
    raise ValueError(
        f"environment knob {name} must be one of {sorted(TRUTHY | FALSY)!r}, "
        f"got {raw!r}"
    )


def env_int(name: str, fallback: int) -> int:
    """Return integer knob *name*, or *fallback* when unset/blank."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"environment knob {name} must be an integer, got {raw!r}"
        ) from None


def env_float(name: str, fallback: float) -> float:
    """Return float knob *name*, or *fallback* when unset/blank."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"environment knob {name} must be a number, got {raw!r}"
        ) from None


def env_str(name: str, fallback: Optional[str] = None) -> Optional[str]:
    """Return string knob *name* stripped, or *fallback* when unset/blank."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    return raw.strip()


def env_choice(name: str, choices, fallback: str) -> str:
    """Return enumerated knob *name*, validated against *choices*.

    Unset/blank falls back to *fallback*; matching is case-insensitive
    (``REPRO_AUTOTUNE=FULL`` means ``full``, consistent with the flag
    helpers) and the canonical lower-case spelling is returned.  A value
    outside *choices* raises :class:`ValueError` immediately (a typo in a
    mode knob must not silently select the wrong behaviour).
    """
    value = env_str(name, fallback)
    if value is not None:
        value = value.lower()
    if value not in choices:
        raise ValueError(
            f"environment knob {name} must be one of {tuple(choices)!r}, "
            f"got {value!r}"
        )
    return value
