"""Lightweight logging configuration for the routing library.

All modules obtain loggers through :func:`get_logger` so a single call to
:func:`set_verbosity` controls the whole library (examples and benchmark
harnesses use it to switch between quiet table output and verbose traces).
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger.

    ``get_logger("tpl.search")`` yields the logger ``repro.tpl.search``.
    """
    _configure_root()
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the library-wide log level (e.g. ``logging.INFO``)."""
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(level)
