"""Disjoint-set forest (union-find) with path compression and union by rank.

Used for:

* grouping routed wire shapes into connected metal components when counting
  stitches (a stitch is a mask change *inside* one connected component),
* tracking which pins of a multi-pin net have already been joined into the
  growing routing tree,
* decomposing conflict graphs into independent components before coloring.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class DisjointSet:
    """Union-find over arbitrary hashable elements.

    Elements are created lazily on first use, so callers never need to
    pre-register the universe.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._size: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def add(self, element: Hashable) -> None:
        """Register *element* as a singleton set if it is not yet present."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path directly at the root.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing *a* and *b*; return the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return ``True`` when *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def size_of(self, element: Hashable) -> int:
        """Return the number of elements in *element*'s set."""
        return self._size[self.find(element)]

    def component_count(self) -> int:
        """Return the number of disjoint sets."""
        return sum(1 for node, parent in self._parent.items() if node == parent)

    def components(self) -> Iterator[Set[Hashable]]:
        """Yield every set as a Python :class:`set` of its members."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        yield from groups.values()

    def members(self, element: Hashable) -> List[Hashable]:
        """Return all elements in the same set as *element*."""
        root = self.find(element)
        return [e for e in self._parent if self.find(e) == root]
