"""An updatable (decrease-key) priority queue for maze routing searches.

Dijkstra / A* style searches over the routing grid need a priority queue that
supports decreasing the key of an element that is already enqueued: during
color-state searching (paper Algorithm 2) the same vertex can be relaxed
several times with progressively better costs and color states.

The implementation uses the standard "lazy deletion" technique on top of
:mod:`heapq`: every push creates a fresh heap entry, and stale entries are
skipped on pop.  A monotonically increasing tie-breaking counter keeps the
ordering deterministic, which matters for reproducible routing results.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple


class UpdatablePriorityQueue:
    """Min-priority queue with ``O(log n)`` push/pop and key updates.

    Items must be hashable.  Priorities may be any totally ordered value
    (ints, floats, tuples).  Pushing an item that is already present updates
    its priority (either direction); the old heap entry is lazily discarded.

    Example
    -------
    >>> pq = UpdatablePriorityQueue()
    >>> pq.push("a", 3.0)
    >>> pq.push("b", 1.0)
    >>> pq.push("a", 0.5)          # decrease key
    >>> pq.pop()
    ('a', 0.5)
    >>> pq.pop()
    ('b', 1.0)
    """

    _REMOVED = object()

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._entries: Dict[Hashable, List[Any]] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def push(self, item: Hashable, priority: Any) -> None:
        """Insert *item* or update its priority if already present."""
        if item in self._entries:
            self._discard_entry(item)
        entry = [priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    def push_if_better(self, item: Hashable, priority: Any) -> bool:
        """Insert *item* only if it is new or *priority* improves on the
        currently stored priority.  Returns ``True`` when the queue changed."""
        current = self._entries.get(item)
        if current is not None and current[0] <= priority:
            return False
        self.push(item, priority)
        return True

    def priority_of(self, item: Hashable) -> Optional[Any]:
        """Return the current priority of *item*, or ``None`` if absent."""
        entry = self._entries.get(item)
        return None if entry is None else entry[0]

    def pop(self) -> Tuple[Hashable, Any]:
        """Remove and return ``(item, priority)`` with the smallest priority.

        Raises :class:`KeyError` when the queue is empty.
        """
        while self._heap:
            priority, _count, item = heapq.heappop(self._heap)
            if item is not self._REMOVED and item in self._entries:
                # The entry may be stale if the item was re-pushed; only the
                # live entry (identity match) is authoritative.
                live = self._entries[item]
                if live[0] == priority and live[1] == _count:
                    del self._entries[item]
                    return item, priority
        raise KeyError("pop from an empty priority queue")

    def peek(self) -> Tuple[Hashable, Any]:
        """Return, without removing, the smallest ``(item, priority)``."""
        while self._heap:
            priority, _count, item = self._heap[0]
            if item is not self._REMOVED and item in self._entries:
                live = self._entries[item]
                if live[0] == priority and live[1] == _count:
                    return item, priority
            heapq.heappop(self._heap)
        raise KeyError("peek at an empty priority queue")

    def discard(self, item: Hashable) -> bool:
        """Remove *item* if present.  Returns ``True`` when it was removed."""
        if item not in self._entries:
            return False
        self._discard_entry(item)
        return True

    def clear(self) -> None:
        """Remove every element from the queue."""
        self._heap.clear()
        self._entries.clear()

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate over live ``(item, priority)`` pairs in arbitrary order."""
        for item, entry in self._entries.items():
            yield item, entry[0]

    # -- internal helpers --------------------------------------------------

    def _discard_entry(self, item: Hashable) -> None:
        entry = self._entries.pop(item)
        entry[2] = self._REMOVED
