"""Wall-clock timers used for the runtime columns of the experiment tables."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@dataclass
class Stopwatch:
    """Accumulating multi-phase stopwatch.

    Each named phase accumulates time across repeated start/stop cycles so a
    router can report, e.g., how long was spent in search versus backtrace.
    """

    phases: Dict[str, float] = field(default_factory=dict)
    _running: Dict[str, float] = field(default_factory=dict)

    def start(self, phase: str) -> None:
        """Begin timing *phase* (no-op if already running)."""
        self._running.setdefault(phase, time.perf_counter())

    def stop(self, phase: str) -> float:
        """Stop timing *phase* and return its accumulated total."""
        started = self._running.pop(phase, None)
        if started is None:
            raise RuntimeError(f"phase {phase!r} was never started")
        self.phases[phase] = self.phases.get(phase, 0.0) + (
            time.perf_counter() - started
        )
        return self.phases[phase]

    def total(self) -> float:
        """Return the sum of all completed phase times."""
        return sum(self.phases.values())

    def report(self) -> str:
        """Render a small human-readable phase breakdown."""
        lines = [f"{name:<24s} {seconds:10.4f} s" for name, seconds in self.phases.items()]
        lines.append(f"{'total':<24s} {self.total():10.4f} s")
        return "\n".join(lines)
