"""Deterministic random helpers for the synthetic benchmark generator.

Every benchmark case in :mod:`repro.bench` is produced from an explicit seed
so that the experiment tables are reproducible across runs and machines.
``SeededRNG`` is a thin convenience wrapper around :class:`random.Random`
with a few domain-specific draws (grid coordinates, weighted pin counts).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class SeededRNG:
    """A seeded pseudo-random generator with layout-flavoured helpers."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def randint(self, low: int, high: int) -> int:
        """Return an integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniformly drawn from ``[low, high)``."""
        return self._rng.uniform(low, high)

    def random(self) -> float:
        """Return a float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniformly chosen element of *seq*."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Return *k* distinct elements of *seq* in random order."""
        return self._rng.sample(seq, k)

    def shuffle(self, seq: List[T]) -> None:
        """Shuffle *seq* in place."""
        self._rng.shuffle(seq)

    def weighted_choice(self, values: Sequence[T], weights: Sequence[float]) -> T:
        """Return one of *values* with probability proportional to *weights*."""
        return self._rng.choices(list(values), weights=list(weights), k=1)[0]

    def grid_point(self, width: int, height: int) -> Tuple[int, int]:
        """Return a random ``(x, y)`` inside a ``width x height`` grid."""
        return self._rng.randrange(width), self._rng.randrange(height)

    def pin_count(
        self,
        minimum: int = 2,
        maximum: int = 6,
        multi_pin_bias: float = 0.55,
    ) -> int:
        """Draw a net degree.

        ``multi_pin_bias`` is the probability of drawing a net with more than
        two pins; the paper's contribution specifically targets those nets, so
        the synthetic suites keep them frequent.
        """
        if maximum <= minimum:
            return minimum
        if self._rng.random() >= multi_pin_bias:
            return minimum
        return self._rng.randint(minimum + 1, maximum)

    def spawn(self, salt: int) -> "SeededRNG":
        """Return an independent child generator derived from this seed."""
        return SeededRNG(self.seed * 1_000_003 + salt)
