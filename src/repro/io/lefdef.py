"""A LEF/DEF-lite text format for designs.

The ISPD benchmarks use LEF (library) and DEF (design) files; this module
implements a readable subset with the same overall shape so the parsing code
path of a real router is exercised:

.. code-block:: text

    DESIGN example ;
    DIEAREA ( 0 0 ) ( 400 400 ) ;
    LAYERS 4 ;
    OBS M2 ( 40 40 ) ( 80 80 ) COLOR 1 ;
    NET n1 ;
      PIN p1 M1 ( 8 8 ) ( 12 12 ) ;
      PIN p2 M1 ( 120 8 ) ( 124 12 ) ;
    END NET
    END DESIGN

Layer names are ``M1`` .. ``Mn`` (1-based, as in LEF); colors are 1-based
mask numbers in the file and 0-based in memory, matching how foundry decks
number masks starting at 1.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.design import Design, Net, Obstacle, Pin
from repro.geometry import Rect
from repro.tech import DesignRules, make_default_tech

PathLike = Union[str, Path]


def _layer_name(index: int) -> str:
    return f"M{index + 1}"


def _layer_index(name: str) -> int:
    if not name.startswith("M"):
        raise ValueError(f"unknown layer name {name!r}")
    return int(name[1:]) - 1


def write_def_lite(design: Design, path: PathLike) -> None:
    """Write *design* in the DEF-lite text format."""
    lines: List[str] = []
    lines.append(f"DESIGN {design.name} ;")
    die = design.die_area
    lines.append(f"DIEAREA ( {die.xlo} {die.ylo} ) ( {die.xhi} {die.yhi} ) ;")
    lines.append(f"LAYERS {design.tech.num_layers} ;")
    lines.append(f"COLORSPACING {design.tech.rules.color_spacing} ;")
    for obstacle in design.obstacles:
        rect = obstacle.rect
        color_part = f" COLOR {obstacle.color + 1}" if obstacle.is_colored else ""
        lines.append(
            f"OBS {_layer_name(obstacle.layer)} ( {rect.xlo} {rect.ylo} ) "
            f"( {rect.xhi} {rect.yhi} ){color_part} ;"
        )
    for net in design.nets:
        lines.append(f"NET {net.name} ;")
        for pin in net.pins:
            for shape in pin.shapes:
                rect = shape.rect
                lines.append(
                    f"  PIN {pin.full_name.replace('/', '.')} {_layer_name(shape.layer)} "
                    f"( {rect.xlo} {rect.ylo} ) ( {rect.xhi} {rect.yhi} ) ;"
                )
        lines.append("END NET")
    lines.append("END DESIGN")
    Path(path).write_text("\n".join(lines) + "\n")


def read_def_lite(path: PathLike, rules: Optional[DesignRules] = None) -> Design:
    """Read a DEF-lite file written by :func:`write_def_lite`.

    Cell instances are not part of the format (pins are stored flat), so the
    returned design contains ports, nets and obstacles -- everything the
    routers need.
    """
    text = Path(path).read_text()
    name = "design"
    die = Rect(0, 0, 100, 100)
    num_layers = 3
    color_spacing = 8
    obstacles: List[Obstacle] = []
    nets: List[Net] = []
    current_net: Optional[Net] = None
    obstacle_counter = 0

    for raw_line in text.splitlines():
        tokens = raw_line.replace("(", " ").replace(")", " ").split()
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword == "DESIGN":
            name = tokens[1]
        elif keyword == "DIEAREA":
            xlo, ylo, xhi, yhi = (int(tokens[i]) for i in (1, 2, 3, 4))
            die = Rect(xlo, ylo, xhi, yhi)
        elif keyword == "LAYERS":
            num_layers = int(tokens[1])
        elif keyword == "COLORSPACING":
            color_spacing = int(tokens[1])
        elif keyword == "OBS":
            layer = _layer_index(tokens[1])
            xlo, ylo, xhi, yhi = (int(tokens[i]) for i in (2, 3, 4, 5))
            color = -1
            if "COLOR" in tokens:
                color = int(tokens[tokens.index("COLOR") + 1]) - 1
            obstacles.append(
                Obstacle(
                    layer=layer,
                    rect=Rect(xlo, ylo, xhi, yhi),
                    name=f"obs_{obstacle_counter}",
                    color=color,
                )
            )
            obstacle_counter += 1
        elif keyword == "NET":
            current_net = Net(name=tokens[1])
        elif keyword == "PIN" and current_net is not None:
            pin_name = tokens[1]
            layer = _layer_index(tokens[2])
            xlo, ylo, xhi, yhi = (int(tokens[i]) for i in (3, 4, 5, 6))
            pin = Pin(name=pin_name)
            pin.add_shape(layer, Rect(xlo, ylo, xhi, yhi))
            current_net.add_pin(pin)
        elif keyword == "END" and len(tokens) > 1 and tokens[1] == "NET":
            if current_net is not None:
                nets.append(current_net)
                current_net = None

    if rules is None:
        rules = DesignRules(color_spacing=color_spacing, min_spacing=1, wire_width=1)
    tech = make_default_tech(
        num_layers=num_layers, color_spacing=color_spacing, rules=rules
    )
    design = Design(name=name, tech=tech, die_area=die)
    for obstacle in obstacles:
        design.add_obstacle(obstacle)
    for net in nets:
        design.add_net(net)
    return design
