"""JSON serialization of designs and routing solutions.

The JSON schema is intentionally simple and explicit: every geometric object
becomes a small dictionary of integers, so saved files diff cleanly and can
be inspected by hand.  Cell masters/instances are flattened into top-level
port pins on save (the router only needs chip-space pin shapes), which keeps
the round-trip lossless with respect to the routing problem.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.design import Design, Net, Obstacle, Pin
from repro.geometry import GridPoint, Rect
from repro.grid import NetRoute, RoutingSolution, Stitch
from repro.tech import DesignRules, Layer, LayerDirection, TechStack

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Designs
# ----------------------------------------------------------------------

def _rect_to_dict(rect: Rect) -> Dict[str, int]:
    return {"xlo": rect.xlo, "ylo": rect.ylo, "xhi": rect.xhi, "yhi": rect.yhi}


def _rect_from_dict(data: Dict[str, int]) -> Rect:
    return Rect(data["xlo"], data["ylo"], data["xhi"], data["yhi"])


def design_to_dict(design: Design) -> Dict[str, Any]:
    """Serialise *design* to a JSON-compatible dictionary."""
    tech = design.tech
    return {
        "name": design.name,
        "die_area": _rect_to_dict(design.die_area),
        "tech": {
            "name": tech.name,
            "layers": [
                {
                    "index": layer.index,
                    "name": layer.name,
                    "direction": layer.direction.value,
                    "pitch": layer.pitch,
                    "width": layer.width,
                    "spacing": layer.spacing,
                    "offset": layer.offset,
                    "tpl": layer.tpl,
                }
                for layer in tech.layers
            ],
            "rules": {
                "color_spacing": tech.rules.color_spacing,
                "min_spacing": tech.rules.min_spacing,
                "wire_width": tech.rules.wire_width,
                "alpha": tech.rules.alpha,
                "beta": tech.rules.beta,
                "gamma": tech.rules.gamma,
                "via_cost": tech.rules.via_cost,
                "wrong_way_penalty": tech.rules.wrong_way_penalty,
                "out_of_guide_penalty": tech.rules.out_of_guide_penalty,
                "history_weight": tech.rules.history_weight,
                "occupancy_penalty": tech.rules.occupancy_penalty,
                "stitch_cost": tech.rules.stitch_cost,
                "conflict_cost": tech.rules.conflict_cost,
                "max_ripup_iterations": tech.rules.max_ripup_iterations,
                "color_spacing_per_layer": {
                    str(k): v for k, v in tech.rules.color_spacing_per_layer.items()
                },
            },
        },
        "obstacles": [
            {
                "layer": obstacle.layer,
                "rect": _rect_to_dict(obstacle.rect),
                "name": obstacle.name,
                "color": obstacle.color,
            }
            for obstacle in design.obstacles
        ],
        "nets": [
            {
                "name": net.name,
                "weight": net.weight,
                "pins": [
                    {
                        "name": pin.full_name,
                        "shapes": [
                            {"layer": shape.layer, "rect": _rect_to_dict(shape.rect)}
                            for shape in pin.shapes
                        ],
                    }
                    for pin in net.pins
                ],
            }
            for net in design.nets
        ],
    }


def design_from_dict(data: Dict[str, Any]) -> Design:
    """Rebuild a design from :func:`design_to_dict` output."""
    rules_data = data["tech"]["rules"]
    rules = DesignRules(
        color_spacing=rules_data["color_spacing"],
        min_spacing=rules_data["min_spacing"],
        wire_width=rules_data["wire_width"],
        alpha=rules_data["alpha"],
        beta=rules_data["beta"],
        gamma=rules_data["gamma"],
        via_cost=rules_data["via_cost"],
        wrong_way_penalty=rules_data["wrong_way_penalty"],
        out_of_guide_penalty=rules_data["out_of_guide_penalty"],
        history_weight=rules_data["history_weight"],
        occupancy_penalty=rules_data["occupancy_penalty"],
        stitch_cost=rules_data["stitch_cost"],
        conflict_cost=rules_data["conflict_cost"],
        max_ripup_iterations=rules_data["max_ripup_iterations"],
        color_spacing_per_layer={
            int(k): v for k, v in rules_data.get("color_spacing_per_layer", {}).items()
        },
    )
    layers = [
        Layer(
            index=layer["index"],
            name=layer["name"],
            direction=LayerDirection(layer["direction"]),
            pitch=layer["pitch"],
            width=layer["width"],
            spacing=layer["spacing"],
            offset=layer["offset"],
            tpl=layer["tpl"],
        )
        for layer in data["tech"]["layers"]
    ]
    tech = TechStack(layers=layers, rules=rules, name=data["tech"]["name"])
    design = Design(
        name=data["name"],
        tech=tech,
        die_area=_rect_from_dict(data["die_area"]),
    )
    for obstacle in data["obstacles"]:
        design.add_obstacle(
            Obstacle(
                layer=obstacle["layer"],
                rect=_rect_from_dict(obstacle["rect"]),
                name=obstacle["name"],
                color=obstacle["color"],
            )
        )
    for net_data in data["nets"]:
        net = Net(name=net_data["name"], weight=net_data.get("weight", 1.0))
        for pin_data in net_data["pins"]:
            pin = Pin(name=pin_data["name"])
            for shape in pin_data["shapes"]:
                pin.add_shape(shape["layer"], _rect_from_dict(shape["rect"]))
            net.add_pin(pin)
        design.add_net(net)
    return design


def save_design_json(design: Design, path: PathLike) -> None:
    """Write *design* to *path* as JSON."""
    Path(path).write_text(json.dumps(design_to_dict(design), indent=2))


def load_design_json(path: PathLike) -> Design:
    """Read a design previously written by :func:`save_design_json`."""
    return design_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Routing solutions
# ----------------------------------------------------------------------

def _vertex_to_list(vertex: GridPoint) -> List[int]:
    return [vertex.layer, vertex.col, vertex.row]


def _vertex_from_list(data: List[int]) -> GridPoint:
    return GridPoint(data[0], data[1], data[2])


def route_to_dict(route: NetRoute) -> Dict[str, Any]:
    """Serialise one net route to a JSON-compatible dictionary.

    The round-trip through :func:`route_from_dict` is lossless (every
    ``NetRoute`` field travels), which the campaign checkpoints rely on:
    a resumed rip-up loop must see exactly the routes the interrupted
    process held.
    """
    return {
        "net": route.net_name,
        "routed": route.routed,
        "failure_reason": route.failure_reason,
        "vertices": [_vertex_to_list(v) for v in sorted(route.vertices)],
        "edges": [
            [_vertex_to_list(a), _vertex_to_list(b)] for a, b in sorted(route.edges)
        ],
        "colors": [
            [_vertex_to_list(v), color]
            for v, color in sorted(route.vertex_colors.items())
        ],
        "stitches": [
            [_vertex_to_list(s.a), _vertex_to_list(s.b)]
            for s in sorted(route.stitches, key=lambda s: (s.a, s.b))
        ],
    }


def route_from_dict(route_data: Dict[str, Any]) -> NetRoute:
    """Rebuild one net route from :func:`route_to_dict` output."""
    route = NetRoute(
        net_name=route_data["net"],
        routed=route_data["routed"],
        failure_reason=route_data.get("failure_reason", ""),
    )
    for vertex in route_data["vertices"]:
        route.vertices.add(_vertex_from_list(vertex))
    for a, b in route_data["edges"]:
        route.add_edge(_vertex_from_list(a), _vertex_from_list(b))
    for vertex, color in route_data["colors"]:
        route.set_color(_vertex_from_list(vertex), color)
    for a, b in route_data.get("stitches", []):
        route.add_stitch(_vertex_from_list(a), _vertex_from_list(b))
    return route


def solution_to_dict(solution: RoutingSolution) -> Dict[str, Any]:
    """Serialise a routing solution to a JSON-compatible dictionary."""
    return {
        "design_name": solution.design_name,
        "router_name": solution.router_name,
        "runtime_seconds": solution.runtime_seconds,
        "iterations": solution.iterations,
        "routes": [route_to_dict(route) for route in solution.routes.values()],
    }


def solution_from_dict(data: Dict[str, Any]) -> RoutingSolution:
    """Rebuild a routing solution from :func:`solution_to_dict` output."""
    solution = RoutingSolution(
        design_name=data["design_name"],
        router_name=data.get("router_name", ""),
        runtime_seconds=data.get("runtime_seconds", 0.0),
        iterations=data.get("iterations", 0),
    )
    for route_data in data["routes"]:
        solution.add_route(route_from_dict(route_data))
    return solution


def save_solution_json(solution: RoutingSolution, path: PathLike) -> None:
    """Write *solution* to *path* as JSON."""
    Path(path).write_text(json.dumps(solution_to_dict(solution), indent=2))


def load_solution_json(path: PathLike) -> RoutingSolution:
    """Read a solution previously written by :func:`save_solution_json`."""
    return solution_from_dict(json.loads(Path(path).read_text()))
