"""ISPD-style route guide files.

The contests exchange global-routing results as ``.guide`` files: one block
per net listing guide rectangles with their layer.  The same format is used
here so guides can be persisted, inspected, and re-loaded into the detailed
routers without re-running global routing.

.. code-block:: text

    net_12
    (
    0 0 64 32 M2
    32 0 96 32 M3
    )
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.geometry import Rect
from repro.gr.guide import GuideSet, RouteGuide
from repro.grid.gcell import GCell, GCellGrid

PathLike = Union[str, Path]


def _layer_name(index: int) -> str:
    return f"M{index + 1}"


def _layer_index(name: str) -> int:
    return int(name[1:]) - 1


def write_guides(guides: GuideSet, path: PathLike) -> None:
    """Write *guides* in the ISPD ``.guide`` format."""
    grid = guides.gcell_grid
    lines: List[str] = []
    for net_name in guides.net_names():
        guide = guides.guide_of(net_name)
        lines.append(net_name)
        lines.append("(")
        for layer, rect in guide.rectangles(grid):
            lines.append(f"{rect.xlo} {rect.ylo} {rect.xhi} {rect.yhi} {_layer_name(layer)}")
        lines.append(")")
    Path(path).write_text("\n".join(lines) + "\n")


def read_guides(path: PathLike, gcell_grid: GCellGrid) -> GuideSet:
    """Read a ``.guide`` file back into a :class:`GuideSet`.

    Each rectangle is mapped onto the GCells it covers on its layer, so the
    round trip is exact as long as the same GCell grid is used for writing
    and reading.
    """
    guides = GuideSet(gcell_grid)
    current_name: str = ""
    current_guide: RouteGuide = RouteGuide("")
    in_block = False
    for raw_line in Path(path).read_text().splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line == "(":
            in_block = True
            continue
        if line == ")":
            if current_name:
                guides.add(current_guide)
            in_block = False
            current_name = ""
            continue
        if not in_block:
            current_name = line
            current_guide = RouteGuide(current_name)
            continue
        tokens = line.split()
        xlo, ylo, xhi, yhi = (int(tokens[i]) for i in range(4))
        layer = _layer_index(tokens[4])
        # Shrink by one DBU so a rectangle that ends exactly on a GCell
        # boundary does not bleed into the neighbouring cell on read-back.
        rect = Rect(xlo, ylo, max(xlo, xhi - 1), max(ylo, yhi - 1))
        current_guide.add_cells(gcell_grid.cells_covering(layer, rect))
    return guides
