"""JSON persistence of grid mutation journals and campaign checkpoints.

A :class:`~repro.journal.MutationJournal` is a list of flat op tuples, so it
serialises to JSON with no custom encoders.  On top of the plain journal
round-trip this module defines the **checkpoint**: one JSON document holding
the design, the journal of every grid mutation since construction, the
(possibly in-progress) routing solution and the campaign cursor.  Loading a
checkpoint rebuilds the grid bit-identically to the one that was saved --
by full journal replay for complete logs, or snapshot-restore plus suffix
replay for folded ones -- which makes long rip-up campaigns resume-able
(see :func:`repro.eval.experiments.route_with_checkpoint`).

Checkpoint formats
------------------

``repro-checkpoint-v1``
    Design + complete journal (+ optional finished solution).  Still
    loaded; a v1 document is simply a v2 document with no fold snapshot
    and no campaign section.

``repro-checkpoint-v2`` (written by :func:`save_checkpoint`)
    The journal dictionary may carry a **fold snapshot** (``base`` +
    ``snapshot``; see :meth:`MutationJournal.fold`), so the document holds
    *snapshot + suffix* instead of the whole campaign history -- size and
    restore time are bounded by the grid plus the ops since the last fold,
    not by campaign age.  An optional ``campaign`` section records the
    rip-up loop position (iteration cursor, best-iteration tracking,
    completion flag) so a preempted campaign resumes from its last
    completed iteration.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.campaign import CampaignState
from repro.design import Design
from repro.grid import RoutingGrid, RoutingSolution
from repro.io.json_io import (
    design_from_dict,
    design_to_dict,
    route_from_dict,
    route_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.journal import MutationJournal, ops_from_jsonable, ops_to_jsonable

PathLike = Union[str, Path]

#: Schema tags of the checkpoint document generations.
CHECKPOINT_FORMAT_V1 = "repro-checkpoint-v1"
CHECKPOINT_FORMAT_V2 = "repro-checkpoint-v2"

#: The tag :func:`save_checkpoint` writes (newest generation).
CHECKPOINT_FORMAT = CHECKPOINT_FORMAT_V2

#: Every tag :func:`load_checkpoint` accepts.
CHECKPOINT_FORMATS = (CHECKPOINT_FORMAT_V1, CHECKPOINT_FORMAT_V2)


def _write_atomic(path: PathLike, text: str) -> None:
    """Durably write *text* to *path* via a same-directory temp file + rename.

    A crash mid-write must never leave a truncated or stale document
    behind: a half-written checkpoint would make every later resume
    attempt fail instead of falling back to routing.  Three properties
    make the write preemption-safe:

    * the scratch name is unique per call (``mkstemp``), so concurrent
      writers to the same target never clobber each other's temp file;
    * the temp file is flushed **and fsynced before** ``os.replace`` --
      rename-before-data-reaches-disk is exactly the crash window that
      surfaces a zero-length file under the final name after power loss;
    * the directory is fsynced after the rename so the new directory
      entry itself is durable.
    """
    target = Path(path)
    fd, scratch = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
    except BaseException:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    dir_fd = os.open(str(target.parent) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# ----------------------------------------------------------------------
# Journals
# ----------------------------------------------------------------------

def journal_to_dict(journal: MutationJournal) -> Dict[str, Any]:
    """Serialise *journal* to a JSON-compatible dictionary.

    Only journals that can still rebuild a fresh grid may be persisted: a
    complete log, or a **folded** one (:meth:`MutationJournal.fold`), which
    serialises as its fold snapshot plus the op suffix past it.  A journal
    compacted without (or past) its fold snapshot has lost its prefix for
    good and is refused.
    """
    if journal.base and journal.snapshot is None:
        raise ValueError(
            "cannot persist a compacted journal "
            f"(ops before cursor {journal.base} were dropped); "
            "fold() it instead of compact() to keep it persistable"
        )
    if journal.snapshot is not None and journal.snapshot_cursor < journal.base:
        raise ValueError(
            "cannot persist a journal compacted past its fold snapshot "
            f"(snapshot at {journal.snapshot_cursor}, base {journal.base})"
        )
    document: Dict[str, Any] = {"ops": ops_to_jsonable(journal.ops)}
    if journal.snapshot is not None:
        document["base"] = journal.base
        document["snapshot"] = journal.snapshot
    return document


def journal_from_dict(data: Dict[str, Any]) -> MutationJournal:
    """Rebuild (and validate) a journal from :func:`journal_to_dict` output."""
    return MutationJournal(
        ops_from_jsonable(data["ops"]),
        base=data.get("base", 0),
        snapshot=data.get("snapshot"),
    )


def save_journal_json(journal: MutationJournal, path: PathLike) -> None:
    """Write *journal* to *path* as JSON (atomically)."""
    _write_atomic(path, json.dumps(journal_to_dict(journal)))


def load_journal_json(path: PathLike) -> MutationJournal:
    """Read a journal previously written by :func:`save_journal_json`."""
    return journal_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Campaign state
# ----------------------------------------------------------------------

def campaign_to_dict(campaign: CampaignState) -> Dict[str, Any]:
    """Serialise the rip-up loop position (without the solution).

    The in-progress solution travels in the checkpoint's own ``solution``
    slot -- the campaign section holds only the cursor and the
    best-iteration tracking.
    """
    return {
        "iteration": campaign.iteration,
        "done": campaign.done,
        "best_defects": (
            list(campaign.best_defects) if campaign.best_defects is not None else None
        ),
        "best_routes": (
            [route_to_dict(route) for route in campaign.best_routes.values()]
            if campaign.best_routes is not None
            else None
        ),
    }


def campaign_from_dict(
    data: Dict[str, Any], solution: Optional[RoutingSolution]
) -> CampaignState:
    """Rebuild a :class:`CampaignState` around the checkpoint's *solution*."""
    best_routes = None
    if data.get("best_routes") is not None:
        routes = [route_from_dict(route_data) for route_data in data["best_routes"]]
        best_routes = {route.net_name: route for route in routes}
    best_defects = data.get("best_defects")
    return CampaignState(
        iteration=data.get("iteration", 0),
        solution=solution,
        best_defects=tuple(best_defects) if best_defects is not None else None,
        best_routes=best_routes,
        done=data.get("done", False),
    )


# ----------------------------------------------------------------------
# Checkpoints (design + journal + solution + campaign)
# ----------------------------------------------------------------------

def checkpoint_to_dict(
    design: Design,
    journal: MutationJournal,
    solution: Optional[RoutingSolution] = None,
    campaign: Optional[CampaignState] = None,
) -> Dict[str, Any]:
    """Serialise a campaign checkpoint to a JSON-compatible dictionary."""
    document: Dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "design": design_to_dict(design),
        "journal": journal_to_dict(journal),
    }
    if solution is not None:
        document["solution"] = solution_to_dict(solution)
    if campaign is not None:
        document["campaign"] = campaign_to_dict(campaign)
    return document


def checkpoint_from_dict(
    data: Dict[str, Any],
) -> Tuple[Design, RoutingGrid, MutationJournal, Optional[RoutingSolution]]:
    """Rebuild ``(design, grid, journal, solution)`` from a checkpoint dict.

    Accepts both checkpoint generations.  The grid is reconstructed by
    :meth:`MutationJournal.bootstrap` -- full replay for a complete log
    (every v1 document), snapshot-restore + suffix replay for a folded v2
    journal; bit-identical to the grid that was saved either way.  The
    journal is then re-attached so a resumed campaign keeps appending to
    the same log (saving again extends the checkpoint instead of
    forgetting history).  Use :func:`checkpoint_campaign` for the campaign
    section.
    """
    if data.get("format") not in CHECKPOINT_FORMATS:
        raise ValueError(
            f"not a {' / '.join(CHECKPOINT_FORMATS)} document "
            f"(format={data.get('format')!r})"
        )
    design = design_from_dict(data["design"])
    journal = journal_from_dict(data["journal"])
    grid = RoutingGrid(design)
    journal.bootstrap(grid)
    grid.attach_journal(journal)
    solution = (
        solution_from_dict(data["solution"]) if "solution" in data else None
    )
    return design, grid, journal, solution


def checkpoint_campaign(
    data: Dict[str, Any], solution: Optional[RoutingSolution]
) -> Optional[CampaignState]:
    """Return the checkpoint's campaign state, or ``None`` when absent.

    v1 documents have no campaign section: they were only ever written for
    finished campaigns, so absence means "complete".
    """
    if "campaign" not in data:
        return None
    return campaign_from_dict(data["campaign"], solution)


def save_checkpoint(
    path: PathLike,
    design: Design,
    journal: MutationJournal,
    solution: Optional[RoutingSolution] = None,
    campaign: Optional[CampaignState] = None,
) -> None:
    """Write a campaign checkpoint to *path* as JSON (atomically + durably)."""
    _write_atomic(
        path, json.dumps(checkpoint_to_dict(design, journal, solution, campaign))
    )


def load_checkpoint(
    path: PathLike,
) -> Tuple[Design, RoutingGrid, MutationJournal, Optional[RoutingSolution]]:
    """Read a checkpoint previously written by :func:`save_checkpoint`."""
    return checkpoint_from_dict(load_checkpoint_document(path))


def load_checkpoint_document(path: PathLike) -> Dict[str, Any]:
    """Read a checkpoint file as its raw JSON dictionary (no rebuild)."""
    return json.loads(Path(path).read_text())
