"""JSON persistence of grid mutation journals and campaign checkpoints.

A :class:`~repro.journal.MutationJournal` is a list of flat op tuples, so it
serialises to JSON with no custom encoders.  On top of the plain journal
round-trip this module defines the **checkpoint**: one JSON document holding
the design, the journal of every grid mutation since construction, and
(optionally) the routing solution.  Loading a checkpoint rebuilds the grid
by constructing it from the design and replaying the journal through
:meth:`RoutingGrid.apply_op` -- bit-identical to the grid that was saved,
by the journal replay guarantee -- which makes long rip-up campaigns
resume-able (see :func:`repro.eval.experiments.route_with_checkpoint`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.design import Design
from repro.grid import RoutingGrid, RoutingSolution
from repro.io.json_io import (
    design_from_dict,
    design_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.journal import MutationJournal, ops_from_jsonable, ops_to_jsonable

PathLike = Union[str, Path]

#: Schema tag written into every checkpoint document.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"


def _write_atomic(path: PathLike, text: str) -> None:
    """Write *text* to *path* via a same-directory temp file + rename.

    A crash mid-write must never leave a truncated document behind: a
    half-written checkpoint would make every later resume attempt fail
    instead of falling back to routing.
    """
    target = Path(path)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(text)
    os.replace(scratch, target)


# ----------------------------------------------------------------------
# Journals
# ----------------------------------------------------------------------

def journal_to_dict(journal: MutationJournal) -> Dict[str, Any]:
    """Serialise *journal* to a JSON-compatible dictionary.

    Only complete logs may be persisted: a compacted journal (non-zero
    :attr:`~repro.journal.MutationJournal.base`) has lost its prefix and
    could no longer rebuild a fresh grid on load.
    """
    if journal.base:
        raise ValueError(
            "cannot persist a compacted journal "
            f"(ops before cursor {journal.base} were dropped)"
        )
    return {"ops": ops_to_jsonable(journal.ops)}


def journal_from_dict(data: Dict[str, Any]) -> MutationJournal:
    """Rebuild (and validate) a journal from :func:`journal_to_dict` output."""
    return MutationJournal(ops_from_jsonable(data["ops"]))


def save_journal_json(journal: MutationJournal, path: PathLike) -> None:
    """Write *journal* to *path* as JSON (atomically)."""
    _write_atomic(path, json.dumps(journal_to_dict(journal)))


def load_journal_json(path: PathLike) -> MutationJournal:
    """Read a journal previously written by :func:`save_journal_json`."""
    return journal_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Checkpoints (design + journal + optional solution)
# ----------------------------------------------------------------------

def checkpoint_to_dict(
    design: Design,
    journal: MutationJournal,
    solution: Optional[RoutingSolution] = None,
) -> Dict[str, Any]:
    """Serialise a campaign checkpoint to a JSON-compatible dictionary."""
    document: Dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "design": design_to_dict(design),
        "journal": journal_to_dict(journal),
    }
    if solution is not None:
        document["solution"] = solution_to_dict(solution)
    return document


def checkpoint_from_dict(
    data: Dict[str, Any],
) -> Tuple[Design, RoutingGrid, MutationJournal, Optional[RoutingSolution]]:
    """Rebuild ``(design, grid, journal, solution)`` from a checkpoint dict.

    The grid is reconstructed by replaying the journal onto a fresh grid
    over the loaded design, then the journal is re-attached so a resumed
    campaign keeps appending to the same log (saving again extends the
    checkpoint instead of forgetting history).
    """
    if data.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"not a {CHECKPOINT_FORMAT} document (format={data.get('format')!r})"
        )
    design = design_from_dict(data["design"])
    journal = journal_from_dict(data["journal"])
    grid = RoutingGrid(design)
    journal.replay_onto(grid)
    grid.attach_journal(journal)
    solution = (
        solution_from_dict(data["solution"]) if "solution" in data else None
    )
    return design, grid, journal, solution


def save_checkpoint(
    path: PathLike,
    design: Design,
    journal: MutationJournal,
    solution: Optional[RoutingSolution] = None,
) -> None:
    """Write a campaign checkpoint to *path* as JSON (atomically)."""
    _write_atomic(path, json.dumps(checkpoint_to_dict(design, journal, solution)))


def load_checkpoint(
    path: PathLike,
) -> Tuple[Design, RoutingGrid, MutationJournal, Optional[RoutingSolution]]:
    """Read a checkpoint previously written by :func:`save_checkpoint`."""
    return checkpoint_from_dict(json.loads(Path(path).read_text()))
