"""JSON persistence of grid mutation journals and campaign checkpoints.

A :class:`~repro.journal.MutationJournal` is a list of flat op tuples, so it
serialises to JSON with no custom encoders.  On top of the plain journal
round-trip this module defines the **checkpoint**: one JSON document holding
the design, the journal of every grid mutation since construction, the
(possibly in-progress) routing solution and the campaign cursor.  Loading a
checkpoint rebuilds the grid bit-identically to the one that was saved --
by full journal replay for complete logs, or snapshot-restore plus suffix
replay for folded ones -- which makes long rip-up campaigns resume-able
(see :func:`repro.eval.experiments.route_with_checkpoint`).

Checkpoint formats
------------------

``repro-checkpoint-v1``
    Design + complete journal (+ optional finished solution).  Still
    loaded; a v1 document is simply a v2 document with no fold snapshot
    and no campaign section.

``repro-checkpoint-v2`` (written by :func:`save_checkpoint`)
    The journal dictionary may carry a **fold snapshot** (``base`` +
    ``snapshot``; see :meth:`MutationJournal.fold`), so the document holds
    *snapshot + suffix* instead of the whole campaign history -- size and
    restore time are bounded by the grid plus the ops since the last fold,
    not by campaign age.  An optional ``campaign`` section records the
    rip-up loop position (iteration cursor, best-iteration tracking,
    completion flag) so a preempted campaign resumes from its last
    completed iteration.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.campaign import CampaignState
from repro.design import Design
from repro.grid import RoutingGrid, RoutingSolution
from repro.io.json_io import (
    design_from_dict,
    design_to_dict,
    route_from_dict,
    route_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.journal import MutationJournal, ops_from_jsonable, ops_to_jsonable
from repro.utils.env import env_int

PathLike = Union[str, Path]

#: How many checkpoint generations :func:`save_checkpoint` retains
#: (``path`` plus ``path.1`` .. ``path.K-1``); at least 1.
CHECKPOINT_KEEP_ENV = "REPRO_CHECKPOINT_KEEP"
DEFAULT_CHECKPOINT_KEEP = 2


class CheckpointIntegrityError(ValueError):
    """A checkpoint file is corrupt: unreadable JSON, a truncated (torn)
    write, or a checksum mismatch.

    Classified separately from "no checkpoint" (``FileNotFoundError``) and
    "valid but wrong campaign" (plain ``ValueError``) so callers can fall
    back to an older retained generation instead of aborting the resume.
    """

#: Schema tags of the checkpoint document generations.
CHECKPOINT_FORMAT_V1 = "repro-checkpoint-v1"
CHECKPOINT_FORMAT_V2 = "repro-checkpoint-v2"

#: The tag :func:`save_checkpoint` writes (newest generation).
CHECKPOINT_FORMAT = CHECKPOINT_FORMAT_V2

#: Every tag :func:`load_checkpoint` accepts.
CHECKPOINT_FORMATS = (CHECKPOINT_FORMAT_V1, CHECKPOINT_FORMAT_V2)


def _write_atomic(path: PathLike, text: str) -> None:
    """Durably write *text* to *path* via a same-directory temp file + rename.

    A crash mid-write must never leave a truncated or stale document
    behind: a half-written checkpoint would make every later resume
    attempt fail instead of falling back to routing.  Three properties
    make the write preemption-safe:

    * the scratch name is unique per call (``mkstemp``), so concurrent
      writers to the same target never clobber each other's temp file;
    * the temp file is flushed **and fsynced before** ``os.replace`` --
      rename-before-data-reaches-disk is exactly the crash window that
      surfaces a zero-length file under the final name after power loss;
    * the directory is fsynced after the rename so the new directory
      entry itself is durable.
    """
    target = Path(path)
    if faults.ARMED and faults.fire("checkpoint.tear", path=str(target)) is not None:
        # Injected torn write: bypass the temp-file dance and leave a
        # truncated document under the final name -- the power-loss window
        # a non-atomic writer would expose.  The integrity checksum plus
        # the retained-checkpoint fallback must absorb exactly this.
        with open(target, "w") as handle:
            handle.write(text[: len(text) // 2])
        return
    fd, scratch = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
    except BaseException:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    dir_fd = os.open(str(target.parent) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# ----------------------------------------------------------------------
# Journals
# ----------------------------------------------------------------------

def journal_to_dict(journal: MutationJournal) -> Dict[str, Any]:
    """Serialise *journal* to a JSON-compatible dictionary.

    Only journals that can still rebuild a fresh grid may be persisted: a
    complete log, or a **folded** one (:meth:`MutationJournal.fold`), which
    serialises as its fold snapshot plus the op suffix past it.  A journal
    compacted without (or past) its fold snapshot has lost its prefix for
    good and is refused.
    """
    if journal.base and journal.snapshot is None:
        raise ValueError(
            "cannot persist a compacted journal "
            f"(ops before cursor {journal.base} were dropped); "
            "fold() it instead of compact() to keep it persistable"
        )
    if journal.snapshot is not None and journal.snapshot_cursor < journal.base:
        raise ValueError(
            "cannot persist a journal compacted past its fold snapshot "
            f"(snapshot at {journal.snapshot_cursor}, base {journal.base})"
        )
    document: Dict[str, Any] = {"ops": ops_to_jsonable(journal.ops)}
    if journal.snapshot is not None:
        document["base"] = journal.base
        document["snapshot"] = journal.snapshot
    return document


def journal_from_dict(data: Dict[str, Any]) -> MutationJournal:
    """Rebuild (and validate) a journal from :func:`journal_to_dict` output."""
    return MutationJournal(
        ops_from_jsonable(data["ops"]),
        base=data.get("base", 0),
        snapshot=data.get("snapshot"),
    )


def save_journal_json(journal: MutationJournal, path: PathLike) -> None:
    """Write *journal* to *path* as JSON (atomically)."""
    _write_atomic(path, json.dumps(journal_to_dict(journal)))


def load_journal_json(path: PathLike) -> MutationJournal:
    """Read a journal previously written by :func:`save_journal_json`."""
    return journal_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Campaign state
# ----------------------------------------------------------------------

def campaign_to_dict(campaign: CampaignState) -> Dict[str, Any]:
    """Serialise the rip-up loop position (without the solution).

    The in-progress solution travels in the checkpoint's own ``solution``
    slot -- the campaign section holds only the cursor and the
    best-iteration tracking.
    """
    document: Dict[str, Any] = {
        "iteration": campaign.iteration,
        "done": campaign.done,
        "best_defects": (
            list(campaign.best_defects) if campaign.best_defects is not None else None
        ),
        "best_routes": (
            [route_to_dict(route) for route in campaign.best_routes.values()]
            if campaign.best_routes is not None
            else None
        ),
    }
    if campaign.executor_stats is not None:
        # The campaign's cumulative failure history (retries, demotions,
        # replacements, timeouts, ...): a preempted-and-resumed campaign
        # must not forget what its earlier life survived.
        document["executor_stats"] = dict(campaign.executor_stats)
    return document


def campaign_from_dict(
    data: Dict[str, Any], solution: Optional[RoutingSolution]
) -> CampaignState:
    """Rebuild a :class:`CampaignState` around the checkpoint's *solution*."""
    best_routes = None
    if data.get("best_routes") is not None:
        routes = [route_from_dict(route_data) for route_data in data["best_routes"]]
        best_routes = {route.net_name: route for route in routes}
    best_defects = data.get("best_defects")
    return CampaignState(
        iteration=data.get("iteration", 0),
        solution=solution,
        best_defects=tuple(best_defects) if best_defects is not None else None,
        best_routes=best_routes,
        done=data.get("done", False),
        executor_stats=data.get("executor_stats"),
    )


# ----------------------------------------------------------------------
# Checkpoints (design + journal + solution + campaign)
# ----------------------------------------------------------------------

def checkpoint_to_dict(
    design: Design,
    journal: MutationJournal,
    solution: Optional[RoutingSolution] = None,
    campaign: Optional[CampaignState] = None,
) -> Dict[str, Any]:
    """Serialise a campaign checkpoint to a JSON-compatible dictionary."""
    document: Dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "design": design_to_dict(design),
        "journal": journal_to_dict(journal),
    }
    if solution is not None:
        document["solution"] = solution_to_dict(solution)
    if campaign is not None:
        document["campaign"] = campaign_to_dict(campaign)
    document["checksum"] = checkpoint_checksum(document)
    return document


def checkpoint_checksum(document: Dict[str, Any]) -> str:
    """Return the integrity checksum of a checkpoint dictionary.

    SHA-256 over the canonical (sorted-keys, tight-separator) JSON of the
    document minus its ``checksum`` field -- so verification is independent
    of key order and whitespace, and a document round-tripped through
    ``json`` still validates.
    """
    payload = {key: value for key, value in document.items() if key != "checksum"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def checkpoint_from_dict(
    data: Dict[str, Any],
) -> Tuple[Design, RoutingGrid, MutationJournal, Optional[RoutingSolution]]:
    """Rebuild ``(design, grid, journal, solution)`` from a checkpoint dict.

    Accepts both checkpoint generations.  The grid is reconstructed by
    :meth:`MutationJournal.bootstrap` -- full replay for a complete log
    (every v1 document), snapshot-restore + suffix replay for a folded v2
    journal; bit-identical to the grid that was saved either way.  The
    journal is then re-attached so a resumed campaign keeps appending to
    the same log (saving again extends the checkpoint instead of
    forgetting history).  Use :func:`checkpoint_campaign` for the campaign
    section.
    """
    if data.get("format") not in CHECKPOINT_FORMATS:
        raise ValueError(
            f"not a {' / '.join(CHECKPOINT_FORMATS)} document "
            f"(format={data.get('format')!r})"
        )
    design = design_from_dict(data["design"])
    journal = journal_from_dict(data["journal"])
    grid = RoutingGrid(design)
    journal.bootstrap(grid)
    grid.attach_journal(journal)
    solution = (
        solution_from_dict(data["solution"]) if "solution" in data else None
    )
    return design, grid, journal, solution


def checkpoint_campaign(
    data: Dict[str, Any], solution: Optional[RoutingSolution]
) -> Optional[CampaignState]:
    """Return the checkpoint's campaign state, or ``None`` when absent.

    v1 documents have no campaign section: they were only ever written for
    finished campaigns, so absence means "complete".
    """
    if "campaign" not in data:
        return None
    return campaign_from_dict(data["campaign"], solution)


def resolve_checkpoint_keep(explicit: Optional[int] = None) -> int:
    """Return the retained-generation count (arg > env > default, min 1)."""
    if explicit is not None:
        return max(1, explicit)
    return max(1, env_int(CHECKPOINT_KEEP_ENV, DEFAULT_CHECKPOINT_KEEP))


def checkpoint_candidates(path: PathLike, keep: Optional[int] = None) -> List[Path]:
    """Return the retained checkpoint paths, newest first.

    Generation 0 is *path* itself; older generations live at ``path.1`` ..
    ``path.{keep-1}`` (rotated by :func:`rotate_checkpoints`).
    """
    target = Path(path)
    keep = resolve_checkpoint_keep(keep)
    return [target] + [
        target.with_name(f"{target.name}.{age}") for age in range(1, keep)
    ]


def rotate_checkpoints(path: PathLike, keep: Optional[int] = None) -> None:
    """Shift the retained generations down one slot before a new save.

    ``path`` -> ``path.1`` -> ... -> ``path.{keep-1}`` (the oldest falls
    off).  The aged generations shift by rename; the live ``path`` itself
    is *copied* into ``path.1`` rather than moved or hard-linked, so
    there is never a window -- even under SIGKILL mid-save -- where no
    document exists at ``path``, and a torn in-place overwrite of
    ``path`` can never reach back and corrupt the retained generation
    through a shared inode.
    """
    candidates = checkpoint_candidates(path, keep)
    if len(candidates) < 2:
        return
    aged = candidates[1:]
    for older, newer in zip(reversed(aged[1:]), reversed(aged[:-1])):
        if newer.exists():
            os.replace(newer, older)
    live, first_age = candidates[0], aged[0]
    if live.exists():
        first_age.write_bytes(live.read_bytes())


def save_checkpoint(
    path: PathLike,
    design: Design,
    journal: MutationJournal,
    solution: Optional[RoutingSolution] = None,
    campaign: Optional[CampaignState] = None,
    keep: Optional[int] = None,
) -> None:
    """Write a campaign checkpoint to *path* as JSON (atomically + durably).

    With ``keep > 1`` (default: the ``REPRO_CHECKPOINT_KEEP`` env knob,
    2), the previous generations are rotated to ``path.1`` .. first, so a
    save that lands torn (filesystem without atomic rename, injected
    ``checkpoint.tear`` fault) still leaves an older complete document for
    :func:`load_checkpoint_document_with_fallback` to resume from.
    """
    if resolve_checkpoint_keep(keep) > 1:
        rotate_checkpoints(path, keep)
    _write_atomic(
        path, json.dumps(checkpoint_to_dict(design, journal, solution, campaign))
    )


def load_checkpoint(
    path: PathLike,
) -> Tuple[Design, RoutingGrid, MutationJournal, Optional[RoutingSolution]]:
    """Read a checkpoint previously written by :func:`save_checkpoint`."""
    return checkpoint_from_dict(load_checkpoint_document(path))


def load_checkpoint_document(path: PathLike) -> Dict[str, Any]:
    """Read and integrity-check a checkpoint file as its raw JSON dictionary.

    Raises :class:`CheckpointIntegrityError` for unreadable JSON (torn or
    truncated writes), a non-dictionary document, or a checksum mismatch;
    a missing file stays ``FileNotFoundError``.  Documents without a
    ``checksum`` field (pre-hardening checkpoints) are accepted as-is.
    """
    target = Path(path)
    try:
        document = json.loads(target.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointIntegrityError(
            f"checkpoint {target} is corrupt (torn or truncated write): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise CheckpointIntegrityError(
            f"checkpoint {target} is not a JSON object "
            f"(got {type(document).__name__})"
        )
    expected = document.get("checksum")
    if expected is not None and checkpoint_checksum(document) != expected:
        raise CheckpointIntegrityError(
            f"checkpoint {target} failed its integrity check "
            "(checksum mismatch: bit rot or a partially overwritten file)"
        )
    return document


def load_checkpoint_document_with_fallback(
    path: PathLike, keep: Optional[int] = None
) -> Tuple[Dict[str, Any], Path]:
    """Load the newest valid retained checkpoint document.

    Tries *path* first, then the rotated generations ``path.1`` .. in age
    order; returns ``(document, used_path)``.  Raises ``FileNotFoundError``
    when no generation exists at all, and :class:`CheckpointIntegrityError`
    (describing every candidate's failure) when generations exist but all
    are corrupt.
    """
    errors: List[str] = []
    found_any = False
    for candidate in checkpoint_candidates(path, keep):
        try:
            return load_checkpoint_document(candidate), candidate
        except FileNotFoundError:
            continue
        except CheckpointIntegrityError as exc:
            found_any = True
            errors.append(str(exc))
    if not found_any:
        raise FileNotFoundError(f"no checkpoint found at {path} (or rotations)")
    raise CheckpointIntegrityError(
        "every retained checkpoint generation is corrupt: " + "; ".join(errors)
    )
