"""Design and result I/O.

* :mod:`repro.io.json_io` -- lossless JSON round-trip of designs and routing
  solutions (the format the examples persist their outputs in),
* :mod:`repro.io.lefdef` -- a LEF/DEF-lite text format: a small, readable
  subset of the contest formats (die area, instances, nets, obstacles) that
  keeps the parsing code path of a real router exercised without shipping
  the multi-hundred-megabyte originals,
* :mod:`repro.io.guide_io` -- ISPD-style ``.guide`` files for route guides,
* :mod:`repro.io.journal_io` -- grid mutation journals and campaign
  checkpoints (design + journal + solution; the grid is rebuilt by journal
  replay on load, making rip-up campaigns resume-able).
"""

from repro.io.journal_io import (
    campaign_from_dict,
    campaign_to_dict,
    checkpoint_campaign,
    checkpoint_from_dict,
    checkpoint_to_dict,
    journal_from_dict,
    journal_to_dict,
    load_checkpoint,
    load_checkpoint_document,
    load_journal_json,
    save_checkpoint,
    save_journal_json,
)
from repro.io.json_io import (
    design_to_dict,
    design_from_dict,
    save_design_json,
    load_design_json,
    route_to_dict,
    route_from_dict,
    solution_to_dict,
    solution_from_dict,
    save_solution_json,
    load_solution_json,
)
from repro.io.lefdef import write_def_lite, read_def_lite
from repro.io.guide_io import write_guides, read_guides

__all__ = [
    "design_to_dict",
    "design_from_dict",
    "save_design_json",
    "load_design_json",
    "route_to_dict",
    "route_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "save_solution_json",
    "load_solution_json",
    "write_def_lite",
    "read_def_lite",
    "write_guides",
    "read_guides",
    "campaign_from_dict",
    "campaign_to_dict",
    "checkpoint_campaign",
    "checkpoint_from_dict",
    "checkpoint_to_dict",
    "journal_from_dict",
    "journal_to_dict",
    "load_checkpoint",
    "load_checkpoint_document",
    "load_journal_json",
    "save_checkpoint",
    "save_journal_json",
]
