"""Closed integer intervals.

Intervals show up when reasoning about track spans, wire segment extents and
spacing checks along one axis.  The convention is *closed* on both ends:
``Interval(2, 5)`` contains 2, 3, 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi`` enforced."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        # Swap rather than raise: callers frequently construct from two
        # unordered endpoints of a wire segment.
        if self.lo > self.hi:
            lo, hi = self.hi, self.lo
            object.__setattr__(self, "lo", lo)
            object.__setattr__(self, "hi", hi)

    @classmethod
    def from_endpoints(cls, a: int, b: int) -> "Interval":
        """Build an interval from two unordered endpoints."""
        return cls(min(a, b), max(a, b))

    @property
    def length(self) -> int:
        """Return ``hi - lo`` (zero for a degenerate single-point interval)."""
        return self.hi - self.lo

    @property
    def center(self) -> float:
        """Return the midpoint."""
        return (self.lo + self.hi) / 2.0

    def contains(self, value: int) -> bool:
        """Return ``True`` when *value* lies inside the interval."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` when *other* is entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` when the two closed intervals share any point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def distance_to(self, other: "Interval") -> int:
        """Return the gap between intervals (0 when they touch or overlap)."""
        if self.overlaps(other):
            return 0
        return other.lo - self.hi if other.lo > self.hi else self.lo - other.hi

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlapping interval, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union_span(self, other: "Interval") -> "Interval":
        """Return the smallest interval covering both (even if disjoint)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expanded(self, amount: int) -> "Interval":
        """Return the interval grown by *amount* on both sides."""
        return Interval(self.lo - amount, self.hi + amount)

    def shifted(self, amount: int) -> "Interval":
        """Return the interval translated by *amount*."""
        return Interval(self.lo + amount, self.hi + amount)
