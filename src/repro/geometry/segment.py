"""Rectilinear wire segments.

A :class:`Segment` is a horizontal or vertical run of wire on one routing
layer, described by its two grid-aligned endpoints in database units plus a
wire width.  Routed paths are decomposed into segments (and vias) for metric
computation, conflict detection and export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, order=True)
class Segment:
    """A horizontal or vertical wire piece on a single routing layer."""

    layer: int
    start: Point
    end: Point
    width: int = 0

    def __post_init__(self) -> None:
        if self.start.x != self.end.x and self.start.y != self.end.y:
            raise ValueError(
                f"segment endpoints must share a coordinate: {self.start} .. {self.end}"
            )
        # Normalise so start <= end; keeps hashing / equality canonical.
        if (self.end.x, self.end.y) < (self.start.x, self.start.y):
            start, end = self.end, self.start
            object.__setattr__(self, "start", start)
            object.__setattr__(self, "end", end)

    @property
    def is_horizontal(self) -> bool:
        """Return ``True`` for a horizontal run (may also be a point)."""
        return self.start.y == self.end.y

    @property
    def is_vertical(self) -> bool:
        """Return ``True`` for a vertical run (may also be a point)."""
        return self.start.x == self.end.x

    @property
    def is_point(self) -> bool:
        """Return ``True`` when both endpoints coincide (e.g. a via landing)."""
        return self.start == self.end

    @property
    def length(self) -> int:
        """Return the centre-line length in DBU."""
        return self.start.manhattan_distance(self.end)

    def bounding_box(self) -> Rect:
        """Return the metal rectangle: the centre line bloated by half-width."""
        half = self.width // 2
        return Rect(
            min(self.start.x, self.end.x) - half,
            min(self.start.y, self.end.y) - half,
            max(self.start.x, self.end.x) + half,
            max(self.start.y, self.end.y) + half,
        )

    def contains_point(self, point: Point) -> bool:
        """Return ``True`` when *point* lies on the segment centre line."""
        if self.is_horizontal and point.y == self.start.y:
            return min(self.start.x, self.end.x) <= point.x <= max(self.start.x, self.end.x)
        if self.is_vertical and point.x == self.start.x:
            return min(self.start.y, self.end.y) <= point.y <= max(self.start.y, self.end.y)
        return False

    def overlaps(self, other: "Segment") -> bool:
        """Return ``True`` when metal rectangles of two segments intersect."""
        if self.layer != other.layer:
            return False
        return self.bounding_box().overlaps(other.bounding_box())

    def spacing_to(self, other: "Segment") -> int:
        """Return the metal-to-metal spacing (0 when touching or overlapping)."""
        return self.bounding_box().distance_to(other.bounding_box())

    def merged_with(self, other: "Segment") -> Optional["Segment"]:
        """Return the union segment when the two are collinear and touching.

        Returns ``None`` when the segments cannot be merged into one straight
        run (different layers / widths, not collinear, or a gap between them).
        """
        if self.layer != other.layer or self.width != other.width:
            return None
        if self.is_horizontal and other.is_horizontal and self.start.y == other.start.y:
            lo = min(self.start.x, other.start.x)
            hi = max(self.end.x, other.end.x)
            if max(self.start.x, other.start.x) <= min(self.end.x, other.end.x):
                return Segment(self.layer, Point(lo, self.start.y), Point(hi, self.start.y), self.width)
        if self.is_vertical and other.is_vertical and self.start.x == other.start.x:
            lo = min(self.start.y, other.start.y)
            hi = max(self.end.y, other.end.y)
            if max(self.start.y, other.start.y) <= min(self.end.y, other.end.y):
                return Segment(self.layer, Point(self.start.x, lo), Point(self.start.x, hi), self.width)
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"M{self.layer} {self.start}->{self.end} w={self.width}"
