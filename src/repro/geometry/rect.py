"""Axis-aligned rectangles in database units.

Rectangles represent pin shapes, obstacles, routed wire metal (a segment
bloated by half its width) and GR guide regions.  The convention is closed
on all four sides, matching :class:`repro.geometry.interval.Interval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.geometry.interval import Interval
from repro.geometry.point import Point


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            xlo, xhi = sorted((self.xlo, self.xhi))
            ylo, yhi = sorted((self.ylo, self.yhi))
            object.__setattr__(self, "xlo", xlo)
            object.__setattr__(self, "xhi", xhi)
            object.__setattr__(self, "ylo", ylo)
            object.__setattr__(self, "yhi", yhi)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Return the bounding box of two points."""
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @classmethod
    def from_center(cls, center: Point, half_width: int, half_height: int) -> "Rect":
        """Return a rectangle centred on *center*."""
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @classmethod
    def bounding(cls, rects: List["Rect"]) -> "Rect":
        """Return the bounding box of a non-empty list of rectangles."""
        if not rects:
            raise ValueError("Rect.bounding() needs at least one rectangle")
        return cls(
            min(r.xlo for r in rects),
            min(r.ylo for r in rects),
            max(r.xhi for r in rects),
            max(r.yhi for r in rects),
        )

    # -- basic properties ----------------------------------------------------

    @property
    def width(self) -> int:
        """Return the horizontal extent."""
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        """Return the vertical extent."""
        return self.yhi - self.ylo

    @property
    def area(self) -> int:
        """Return ``width * height``."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Return the (integer-truncated) centre point."""
        return Point((self.xlo + self.xhi) // 2, (self.ylo + self.yhi) // 2)

    @property
    def x_interval(self) -> Interval:
        """Return the horizontal span as an interval."""
        return Interval(self.xlo, self.xhi)

    @property
    def y_interval(self) -> Interval:
        """Return the vertical span as an interval."""
        return Interval(self.ylo, self.yhi)

    def corners(self) -> Iterator[Point]:
        """Yield the four corner points counter-clockwise from lower-left."""
        yield Point(self.xlo, self.ylo)
        yield Point(self.xhi, self.ylo)
        yield Point(self.xhi, self.yhi)
        yield Point(self.xlo, self.yhi)

    # -- predicates -----------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """Return ``True`` when *point* is inside or on the boundary."""
        return self.xlo <= point.x <= self.xhi and self.ylo <= point.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """Return ``True`` when *other* is fully inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and other.xhi <= self.xhi
            and self.ylo <= other.ylo
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """Return ``True`` when the closed rectangles share any point."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def overlaps_strictly(self, other: "Rect") -> bool:
        """Return ``True`` when the rectangles share interior area (not just an edge)."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    # -- measurements ----------------------------------------------------------

    def distance_to(self, other: "Rect") -> int:
        """Return the rectilinear gap between rectangles (0 when touching/overlapping).

        This is the spacing measure used by the design-rule and color-conflict
        checks: the maximum of the per-axis gaps when the projections are
        disjoint, i.e. the L-infinity distance between closest corners, which
        matches how Euclidean-free spacing tables are applied on grids.
        """
        dx = self.x_interval.distance_to(other.x_interval)
        dy = self.y_interval.distance_to(other.y_interval)
        return max(dx, dy)

    def manhattan_distance_to(self, other: "Rect") -> int:
        """Return ``dx + dy`` gap between the rectangles."""
        dx = self.x_interval.distance_to(other.x_interval)
        dy = self.y_interval.distance_to(other.y_interval)
        return dx + dy

    def distance_to_point(self, point: Point) -> int:
        """Return the L-infinity distance from *point* to this rectangle."""
        dx = 0 if self.xlo <= point.x <= self.xhi else min(
            abs(point.x - self.xlo), abs(point.x - self.xhi)
        )
        dy = 0 if self.ylo <= point.y <= self.yhi else min(
            abs(point.y - self.ylo), abs(point.y - self.yhi)
        )
        return max(dx, dy)

    # -- constructive operations -----------------------------------------------

    def expanded(self, amount: int) -> "Rect":
        """Return the rectangle bloated by *amount* on all four sides."""
        return Rect(self.xlo - amount, self.ylo - amount, self.xhi + amount, self.yhi + amount)

    def expanded_xy(self, dx: int, dy: int) -> "Rect":
        """Return the rectangle bloated by *dx* horizontally and *dy* vertically."""
        return Rect(self.xlo - dx, self.ylo - dy, self.xhi + dx, self.yhi + dy)

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return the rectangle shifted by ``(dx, dy)``."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Return the overlap rectangle, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        """Return the bounding box of both rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def clipped_to(self, bounds: "Rect") -> Optional["Rect"]:
        """Return this rectangle clipped to *bounds* (``None`` if outside)."""
        return self.intersection(bounds)

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Return ``(xlo, ylo, xhi, yhi)``."""
        return self.xlo, self.ylo, self.xhi, self.yhi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.xlo},{self.ylo} .. {self.xhi},{self.yhi}]"
