"""A uniform-bucket spatial index for rectangle proximity queries.

The router repeatedly asks "which shapes lie within distance *d* of this
rectangle on this layer?" -- for spacing checks, color-conflict costing, and
final conflict counting.  A uniform grid of buckets is simple, has no
balancing cost, and is fast enough at the benchmark sizes used here (the
same structure Dr.CU uses for its R-tree-free fast path).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, Iterator, List, Set, Tuple, TypeVar

from repro.geometry.rect import Rect

T = TypeVar("T")


class SpatialIndex(Generic[T]):
    """Bucketed index mapping rectangles to arbitrary payload objects.

    Payloads must be hashable.  One index instance covers a single layer;
    callers keep one index per routing layer.
    """

    def __init__(self, bucket_size: int = 64) -> None:
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self._bucket_size = bucket_size
        self._buckets: Dict[Tuple[int, int], List[Tuple[Rect, T]]] = defaultdict(list)
        self._items: Dict[T, List[Rect]] = defaultdict(list)

    def __len__(self) -> int:
        return sum(len(rects) for rects in self._items.values())

    def __contains__(self, item: T) -> bool:
        return item in self._items

    # -- mutation ------------------------------------------------------------

    def insert(self, rect: Rect, item: T) -> None:
        """Register *rect* with payload *item*."""
        for key in self._bucket_keys(rect):
            self._buckets[key].append((rect, item))
        self._items[item].append(rect)

    def remove_item(self, item: T) -> int:
        """Remove every rectangle registered under *item*; return the count."""
        rects = self._items.pop(item, [])
        if not rects:
            return 0
        removed = 0
        for rect in rects:
            for key in self._bucket_keys(rect):
                bucket = self._buckets.get(key)
                if not bucket:
                    continue
                before = len(bucket)
                bucket[:] = [(r, i) for (r, i) in bucket if not (i == item and r == rect)]
                removed += before - len(bucket)
        return len(rects)

    def clear(self) -> None:
        """Drop every entry."""
        self._buckets.clear()
        self._items.clear()

    # -- queries ---------------------------------------------------------------

    def query(self, region: Rect) -> Iterator[Tuple[Rect, T]]:
        """Yield ``(rect, item)`` pairs whose rectangles overlap *region*.

        Each stored rectangle is yielded at most once even when it spans
        several buckets.
        """
        seen: Set[Tuple[Rect, int]] = set()
        for key in self._bucket_keys(region):
            for rect, item in self._buckets.get(key, ()):
                token = (rect, id(item))
                if token in seen:
                    continue
                seen.add(token)
                if rect.overlaps(region):
                    yield rect, item

    def query_items(self, region: Rect) -> Set[T]:
        """Return the set of payloads overlapping *region*."""
        return {item for _rect, item in self.query(region)}

    def within(self, rect: Rect, distance: int) -> Iterator[Tuple[Rect, T]]:
        """Yield ``(rect, item)`` whose spacing to *rect* is strictly below *distance*.

        This is the query shape used by color-conflict costing: shapes closer
        than the same-mask spacing ``Dcolor`` interact; shapes exactly at the
        threshold are legal.
        """
        region = rect.expanded(max(distance, 0))
        for other, item in self.query(region):
            if other.distance_to(rect) < distance:
                yield other, item

    def items(self) -> Iterator[Tuple[Rect, T]]:
        """Iterate over all stored ``(rect, item)`` pairs."""
        for item, rects in self._items.items():
            for rect in rects:
                yield rect, item

    def rectangles_of(self, item: T) -> List[Rect]:
        """Return the rectangles registered under *item*."""
        return list(self._items.get(item, ()))

    # -- internals ----------------------------------------------------------

    def _bucket_keys(self, rect: Rect) -> Iterable[Tuple[int, int]]:
        size = self._bucket_size
        x0 = rect.xlo // size
        x1 = rect.xhi // size
        y0 = rect.ylo // size
        y1 = rect.yhi // size
        for bx in range(x0, x1 + 1):
            for by in range(y0, y1 + 1):
                yield bx, by
