"""Placement orientations and transforms for cell / macro instances.

Standard cells and macros are described once as masters in their own local
coordinate system; instances place them at an offset with one of the eight
standard orientations (DEF ``N, S, W, E, FN, FS, FW, FE``).  The transform
maps master-space shapes (pins, obstructions) into chip space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Orientation(Enum):
    """The eight DEF placement orientations."""

    N = "N"    # no rotation
    S = "S"    # 180 degrees
    W = "W"    # 90 degrees counter-clockwise
    E = "E"    # 90 degrees clockwise
    FN = "FN"  # mirrored about the Y axis
    FS = "FS"  # mirrored about the X axis
    FW = "FW"  # mirrored then rotated 90 CCW
    FE = "FE"  # mirrored then rotated 90 CW

    @property
    def swaps_axes(self) -> bool:
        """Return ``True`` for orientations that exchange width and height."""
        return self in (Orientation.W, Orientation.E, Orientation.FW, Orientation.FE)


@dataclass(frozen=True)
class Transform:
    """A placement transform: orientation about the origin, then translation.

    The master's bounding box is assumed to have its lower-left corner at the
    origin with size ``(width, height)``; this matches LEF macro conventions
    and lets every orientation be expressed with simple coordinate swaps.
    """

    offset: Point
    orientation: Orientation = Orientation.N
    width: int = 0
    height: int = 0

    def apply_to_point(self, point: Point) -> Point:
        """Map a master-space point into chip space."""
        x, y = point.x, point.y
        w, h = self.width, self.height
        orient = self.orientation
        if orient is Orientation.N:
            tx, ty = x, y
        elif orient is Orientation.S:
            tx, ty = w - x, h - y
        elif orient is Orientation.W:
            tx, ty = h - y, x
        elif orient is Orientation.E:
            tx, ty = y, w - x
        elif orient is Orientation.FN:
            tx, ty = w - x, y
        elif orient is Orientation.FS:
            tx, ty = x, h - y
        elif orient is Orientation.FW:
            tx, ty = y, x
        elif orient is Orientation.FE:
            tx, ty = h - y, w - x
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown orientation {orient}")
        return Point(tx + self.offset.x, ty + self.offset.y)

    def apply_to_rect(self, rect: Rect) -> Rect:
        """Map a master-space rectangle into chip space."""
        a = self.apply_to_point(Point(rect.xlo, rect.ylo))
        b = self.apply_to_point(Point(rect.xhi, rect.yhi))
        return Rect.from_points(a, b)

    def placed_size(self) -> Point:
        """Return the instance footprint size after orientation."""
        if self.orientation.swaps_axes:
            return Point(self.height, self.width)
        return Point(self.width, self.height)
