"""Integer points in layout space and on the routing grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A 2-D point in database units.

    Points are immutable and hashable so they can key dictionaries and sets
    (pin access points, via locations, conflict sites).
    """

    x: int
    y: int

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """Return the L1 distance to *other*."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_distance(self, other: "Point") -> int:
        """Return the L-infinity distance to *other*."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(x, y)``."""
        return self.x, self.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x}, {self.y})"


@dataclass(frozen=True, order=True)
class GridPoint:
    """A vertex address on the 3-D routing grid: ``(layer, col, row)``.

    ``layer`` indexes the routing layer stack (0 = lowest routing layer),
    ``col``/``row`` index tracks, not DBU.  The routing grid translates grid
    points to physical :class:`Point` coordinates.
    """

    layer: int
    col: int
    row: int

    def __iter__(self) -> Iterator[int]:
        yield self.layer
        yield self.col
        yield self.row

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return ``(layer, col, row)``."""
        return self.layer, self.col, self.row

    def neighbor(self, dlayer: int = 0, dcol: int = 0, drow: int = 0) -> "GridPoint":
        """Return the grid point offset by the given deltas."""
        return GridPoint(self.layer + dlayer, self.col + dcol, self.row + drow)

    def planar_distance(self, other: "GridPoint") -> int:
        """Return the Manhattan distance ignoring the layer dimension."""
        return abs(self.col - other.col) + abs(self.row - other.row)

    def distance(self, other: "GridPoint", via_weight: int = 1) -> int:
        """Return Manhattan distance with layer hops scaled by *via_weight*."""
        return self.planar_distance(other) + via_weight * abs(self.layer - other.layer)

    def same_layer(self, other: "GridPoint") -> bool:
        """Return ``True`` when both points are on the same routing layer."""
        return self.layer == other.layer

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"M{self.layer}({self.col}, {self.row})"
