"""Integer geometry kernel used throughout the router.

All coordinates are integers in database units (DBU), matching how detailed
routers and the ISPD contest benchmarks represent layouts.  The kernel
provides points (2-D and 3-D with a layer index), axis-aligned rectangles,
closed integer intervals, rectilinear wire segments, macro placement
transforms, and a uniform-bucket spatial index used for spacing / color
conflict queries.
"""

from repro.geometry.point import Point, GridPoint
from repro.geometry.interval import Interval
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.transform import Orientation, Transform
from repro.geometry.spatial import SpatialIndex

__all__ = [
    "Point",
    "GridPoint",
    "Interval",
    "Rect",
    "Segment",
    "Orientation",
    "Transform",
    "SpatialIndex",
]
