"""Global routing: Steiner topology, congestion-aware GR, and route guides.

Mr.TPL's flow (paper Fig. 2) "calculates color cost by GR guide": the
detailed router prefers to stay inside the per-net guide produced here, and
the color-aware cost terms are evaluated within that region.  The global
router is a congestion-negotiating maze router over the GCell grid with an
rectilinear-Steiner-tree topology step, which is the standard structure of
the GR stage feeding Dr.CU-class detailed routers.
"""

from repro.gr.steiner import SteinerTree, build_steiner_tree, rectilinear_mst
from repro.gr.guide import RouteGuide, GuideSet
from repro.gr.global_router import GlobalRouter

__all__ = [
    "SteinerTree",
    "build_steiner_tree",
    "rectilinear_mst",
    "RouteGuide",
    "GuideSet",
    "GlobalRouter",
]
