"""Rectilinear Steiner tree construction for net topology generation.

Both the global router and the DAC-2012 baseline need a net topology: the
global router to decide which 2-pin connections to route on the GCell grid,
the baseline because it decomposes every multi-pin net into independent
2-pin connections (which is precisely what causes its stitch blow-up).

The implementation provides:

* :func:`rectilinear_mst` -- Prim's algorithm under the Manhattan metric,
* :func:`hanan_steiner_points` -- candidate Steiner points on the Hanan grid,
* :func:`build_steiner_tree` -- iterated 1-Steiner heuristic: greedily insert
  the Hanan point that reduces the MST length most, until no improvement.

The 1-Steiner heuristic is the classic Kahng/Robins approach and is accurate
enough for topology generation (it is not the wirelength bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.geometry import Point


@dataclass
class SteinerTree:
    """A tree over terminal and Steiner points under the Manhattan metric."""

    terminals: List[Point]
    steiner_points: List[Point] = field(default_factory=list)
    edges: List[Tuple[Point, Point]] = field(default_factory=list)

    @property
    def points(self) -> List[Point]:
        """Return terminals followed by Steiner points."""
        return list(self.terminals) + list(self.steiner_points)

    def length(self) -> int:
        """Return the total Manhattan length of the tree edges."""
        return sum(a.manhattan_distance(b) for a, b in self.edges)

    def two_pin_connections(self) -> List[Tuple[Point, Point]]:
        """Return the tree edges as a list of 2-pin connections."""
        return list(self.edges)

    def degree_of(self, point: Point) -> int:
        """Return the number of tree edges incident to *point*."""
        return sum(1 for a, b in self.edges if a == point or b == point)

    def is_connected(self) -> bool:
        """Return ``True`` when the edges span every terminal."""
        if not self.terminals:
            return True
        if not self.edges:
            return len(set(self.terminals)) <= 1
        adjacency: Dict[Point, Set[Point]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        seen: Set[Point] = set()
        stack = [self.terminals[0]]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return all(terminal in seen for terminal in set(self.terminals))


def rectilinear_mst(points: Sequence[Point]) -> List[Tuple[Point, Point]]:
    """Return the edges of a minimum spanning tree under the Manhattan metric.

    Uses Prim's algorithm in ``O(n^2)``, which is fine for net degrees in the
    single or low double digits (contest nets rarely exceed a few tens of
    pins and the synthetic suites cap the degree at six).
    """
    unique = list(dict.fromkeys(points))
    if len(unique) <= 1:
        return []
    in_tree = {unique[0]}
    remaining = set(unique[1:])
    best_link: Dict[Point, Tuple[int, Point]] = {
        p: (unique[0].manhattan_distance(p), unique[0]) for p in remaining
    }
    edges: List[Tuple[Point, Point]] = []
    while remaining:
        nearest = min(remaining, key=lambda p: (best_link[p][0], p.x, p.y))
        distance, anchor = best_link[nearest]
        edges.append((anchor, nearest))
        in_tree.add(nearest)
        remaining.discard(nearest)
        del best_link[nearest]
        for p in remaining:
            candidate = nearest.manhattan_distance(p)
            if candidate < best_link[p][0]:
                best_link[p] = (candidate, nearest)
    return edges


def mst_length(points: Sequence[Point]) -> int:
    """Return the Manhattan MST length of *points*."""
    return sum(a.manhattan_distance(b) for a, b in rectilinear_mst(points))


def hanan_steiner_points(points: Sequence[Point]) -> List[Point]:
    """Return the Hanan grid points that are not already terminals.

    The Hanan grid is the set of intersections of horizontal and vertical
    lines through the terminals; an optimal rectilinear Steiner tree only
    needs Steiner points from this grid.
    """
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    terminals = set(points)
    return [Point(x, y) for x in xs for y in ys if Point(x, y) not in terminals]


def build_steiner_tree(points: Sequence[Point], max_steiner_points: int = 16) -> SteinerTree:
    """Build a rectilinear Steiner tree with the iterated 1-Steiner heuristic.

    Parameters
    ----------
    points:
        The net terminals (pin centres).
    max_steiner_points:
        Upper bound on inserted Steiner points; net degrees here are small so
        the default is never reached in practice, but it guards the worst case.
    """
    terminals = list(dict.fromkeys(points))
    if len(terminals) <= 1:
        return SteinerTree(terminals=terminals, edges=[])
    current_points: List[Point] = list(terminals)
    steiner: List[Point] = []
    current_length = mst_length(current_points)
    for _ in range(max_steiner_points):
        candidates = hanan_steiner_points(current_points)
        best_gain = 0
        best_candidate = None
        for candidate in candidates:
            new_length = mst_length(current_points + [candidate])
            gain = current_length - new_length
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
        if best_candidate is None:
            break
        steiner.append(best_candidate)
        current_points.append(best_candidate)
        current_length -= best_gain
    edges = rectilinear_mst(current_points)
    # Drop Steiner points of degree <= 1: they do not help the tree.
    tree = SteinerTree(terminals=terminals, steiner_points=steiner, edges=edges)
    pruned = [p for p in steiner if tree.degree_of(p) >= 2]
    if len(pruned) != len(steiner):
        edges = rectilinear_mst(terminals + pruned)
        tree = SteinerTree(terminals=terminals, steiner_points=pruned, edges=edges)
    return tree
