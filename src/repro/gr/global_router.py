"""A congestion-aware global router producing per-net route guides.

The global router is deliberately simple -- its job in this reproduction is
to provide realistic GR guides for the detailed routers (the paper's flow
"calculate[s] color cost by GR guide"), not to compete with industrial GR:

1. compute a rectilinear Steiner topology per net (:mod:`repro.gr.steiner`),
2. route each 2-pin connection of the topology over the GCell grid with a
   congestion-penalised Dijkstra search (layer 0 is reserved for pin access,
   planar routing happens on layers 1+ in their preferred direction),
3. accumulate boundary usage so later nets avoid congested regions,
4. emit a :class:`~repro.gr.guide.GuideSet` with one expanded guide per net.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.design import Design, Net
from repro.geometry import Point
from repro.gr.guide import GuideSet, RouteGuide
from repro.gr.steiner import build_steiner_tree
from repro.grid.gcell import GCell, GCellGrid
from repro.utils import UpdatablePriorityQueue, get_logger

_LOG = get_logger("gr.global_router")


class GlobalRouter:
    """Guide-producing global router over the GCell grid."""

    def __init__(
        self,
        design: Design,
        gcell_size: int = 16,
        capacity: int = 6,
        guide_margin: int = 1,
    ) -> None:
        self.design = design
        self.gcell_grid = GCellGrid(design, gcell_size=gcell_size, capacity=capacity)
        self.guide_margin = guide_margin

    # -- public API -----------------------------------------------------------

    def route(self) -> GuideSet:
        """Globally route every routable net and return the guide set.

        Nets are processed in increasing half-perimeter wirelength order so
        short nets (hard to detour) claim their resources first -- the usual
        net-ordering heuristic of sequential global routers.
        """
        guides = GuideSet(self.gcell_grid)
        nets = sorted(
            self.design.routable_nets(),
            key=lambda net: (net.half_perimeter_wirelength(), net.name),
        )
        for net in nets:
            guide = self.route_net(net)
            guides.add(guide.expanded(self.gcell_grid, self.guide_margin))
        _LOG.info(
            "global routing done: %d nets, overflow %.1f",
            len(nets),
            self.gcell_grid.total_overflow(),
        )
        return guides

    def route_net(self, net: Net) -> RouteGuide:
        """Globally route one net and return its (unexpanded) guide."""
        guide = RouteGuide(net.name)
        pin_points = [pin.center() for pin in net.pins]
        pin_cells = [self.gcell_grid.cell_of_point(0, point) for point in pin_points]
        for cell in pin_cells:
            guide.add_cell(cell)
        if len(set(pin_cells)) <= 1:
            return guide
        tree = build_steiner_tree(pin_points)
        for start, end in tree.two_pin_connections():
            path = self._route_two_pin(start, end)
            for cell in path:
                guide.add_cell(cell)
            for a, b in zip(path, path[1:]):
                if a.layer == b.layer:
                    self.gcell_grid.add_usage(a, b)
        return guide

    # -- 2-pin GCell routing --------------------------------------------------

    def _route_two_pin(self, start: Point, end: Point) -> List[GCell]:
        """Route one topology edge on the GCell grid; returns the cell path."""
        grid = self.gcell_grid
        source = grid.cell_of_point(0, start)
        target = grid.cell_of_point(0, end)
        if source == target:
            return [source]
        frontier: UpdatablePriorityQueue = UpdatablePriorityQueue()
        frontier.push(source, 0.0)
        best_cost: Dict[GCell, float] = {source: 0.0}
        parent: Dict[GCell, Optional[GCell]] = {source: None}
        target_planar = (target.gx, target.gy)
        found: Optional[GCell] = None
        while frontier:
            cell, _priority = frontier.pop()
            cost = best_cost[cell]
            if (cell.gx, cell.gy) == target_planar:
                found = cell
                break
            for nbr in grid.neighbors(cell):
                step = self._edge_cost(cell, nbr)
                candidate = cost + step
                if candidate < best_cost.get(nbr, float("inf")):
                    best_cost[nbr] = candidate
                    parent[nbr] = cell
                    heuristic = self._lower_bound(nbr, target)
                    frontier.push(nbr, candidate + heuristic)
        if found is None:
            # Unreachable targets should not happen on an open GCell grid, but
            # fall back to the straight bounding-box guide rather than failing.
            return self._bounding_box_cells(source, target)
        path: List[GCell] = []
        cursor: Optional[GCell] = found
        while cursor is not None:
            path.append(cursor)
            cursor = parent[cursor]
        path.reverse()
        return path

    def _edge_cost(self, a: GCell, b: GCell) -> float:
        grid = self.gcell_grid
        if a.layer != b.layer:
            return 2.0
        layer = self.design.tech.layers[a.layer]
        horizontal_move = a.gy == b.gy
        preferred = (layer.is_horizontal and horizontal_move) or (
            layer.is_vertical and not horizontal_move
        )
        direction_penalty = 1.0 if preferred else 2.5
        # Layer 0 carries pins and cell obstructions: discourage planar use.
        if a.layer == 0:
            direction_penalty *= 4.0
        return direction_penalty * grid.congestion_cost(a, b)

    def _lower_bound(self, cell: GCell, target: GCell) -> float:
        return abs(cell.gx - target.gx) + abs(cell.gy - target.gy)

    def _bounding_box_cells(self, a: GCell, b: GCell) -> List[GCell]:
        cells = []
        for gx in range(min(a.gx, b.gx), max(a.gx, b.gx) + 1):
            for gy in range(min(a.gy, b.gy), max(a.gy, b.gy) + 1):
                for layer in range(self.gcell_grid.num_layers):
                    cells.append(GCell(layer, gx, gy))
        return cells
