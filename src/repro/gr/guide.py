"""Route guides: the interface between global and detailed routing.

A guide is, per net, a set of GCells (per layer) the detailed router should
stay inside.  The ISPD 2018/2019 contests deliver guides as rectangles per
layer in a ``.guide`` file; here the guide also answers point-membership
queries directly against detailed-grid coordinates so the detailed routers
can charge the out-of-guide penalty of the contest cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.geometry import Point, Rect
from repro.grid.gcell import GCell, GCellGrid


@dataclass
class RouteGuide:
    """The guide region of a single net."""

    net_name: str
    cells: Set[GCell] = field(default_factory=set)

    def add_cell(self, cell: GCell) -> None:
        """Include *cell* in the guide."""
        self.cells.add(cell)

    def add_cells(self, cells: Iterable[GCell]) -> None:
        """Include every cell of *cells* in the guide."""
        self.cells.update(cells)

    def covers_cell(self, cell: GCell) -> bool:
        """Return ``True`` when *cell* is part of the guide."""
        return cell in self.cells

    def layers(self) -> Set[int]:
        """Return the set of layers the guide touches."""
        return {cell.layer for cell in self.cells}

    def rectangles(self, gcell_grid: GCellGrid) -> List[Tuple[int, Rect]]:
        """Return the guide as per-cell ``(layer, rect)`` rectangles."""
        return [(cell.layer, gcell_grid.cell_rect(cell)) for cell in sorted(self.cells)]

    def expanded(self, gcell_grid: GCellGrid, margin_cells: int = 1) -> "RouteGuide":
        """Return a guide grown by *margin_cells* GCells in every direction.

        Detailed routers conventionally bloat guides slightly so pin access
        and small detours remain in-guide.
        """
        grown: Set[GCell] = set()
        for cell in self.cells:
            for dgx in range(-margin_cells, margin_cells + 1):
                for dgy in range(-margin_cells, margin_cells + 1):
                    candidate = GCell(cell.layer, cell.gx + dgx, cell.gy + dgy)
                    if gcell_grid.in_bounds(candidate):
                        grown.add(candidate)
            # Guides should also cover the layers directly above/below so the
            # detailed router can drop vias without leaving the guide.
            for dlayer in (-1, 1):
                candidate = GCell(cell.layer + dlayer, cell.gx, cell.gy)
                if gcell_grid.in_bounds(candidate):
                    grown.add(candidate)
        return RouteGuide(self.net_name, grown)


class GuideSet:
    """All route guides of a design plus fast point membership queries."""

    def __init__(self, gcell_grid: GCellGrid) -> None:
        self.gcell_grid = gcell_grid
        self._guides: Dict[str, RouteGuide] = {}

    def __len__(self) -> int:
        return len(self._guides)

    def __contains__(self, net_name: str) -> bool:
        return net_name in self._guides

    def add(self, guide: RouteGuide) -> None:
        """Register the guide of ``guide.net_name`` (replacing any previous one)."""
        self._guides[guide.net_name] = guide

    def guide_of(self, net_name: str) -> Optional[RouteGuide]:
        """Return the guide of *net_name*, or ``None`` when absent."""
        return self._guides.get(net_name)

    def net_names(self) -> List[str]:
        """Return the guided net names, sorted for determinism."""
        return sorted(self._guides)

    def covers_point(self, net_name: str, layer: int, point: Point) -> bool:
        """Return ``True`` when *point* on *layer* lies inside the net's guide.

        Nets without a guide are treated as unguided: everything is
        considered in-guide so they incur no out-of-guide penalty.
        """
        guide = self._guides.get(net_name)
        if guide is None or not guide.cells:
            return True
        cell = self.gcell_grid.cell_of_point(layer, point)
        return guide.covers_cell(cell)

    def coverage_statistics(self) -> Dict[str, float]:
        """Return aggregate guide statistics for reports."""
        if not self._guides:
            return {"nets": 0, "mean_cells": 0.0, "max_cells": 0}
        sizes = [len(guide.cells) for guide in self._guides.values()]
        return {
            "nets": len(sizes),
            "mean_cells": sum(sizes) / len(sizes),
            "max_cells": max(sizes),
        }
