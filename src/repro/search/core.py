"""The shared best-first search engine over flat vertex indices.

All three routers in this repository run the same algorithm -- multi-source
Dijkstra/A* over the routing grid -- and differ only in their *label*:

* the plain maze router labels a vertex with a cost,
* color-state searching (paper Alg. 2) adds a 3-bit
  :class:`~repro.tpl.color_state.ColorState` merged on equal-cost revisits,
* the DAC-2012 baseline searches the mask-expanded graph, i.e. its node
  space is ``vertex_index * 3 + mask`` with extra in-place mask-switch
  edges.

:class:`SearchCore` owns the one queue/relaxation loop all of them share.
Nodes are plain ints (flat grid indices, optionally mask-expanded with a
*stride*), labels are ``(cost, aux)`` where ``aux`` is an engine-specific
small int (a color-state bitmask, or 0 when unused).

Label storage (zero-allocation hot path)
----------------------------------------

Labels live in preallocated flat buffers owned by the core -- ``array('d')``
cost, ``array('i')`` aux/parent -- validated by an ``array('q')`` epoch
stamp: a label is live only while its stamp equals the current run's epoch,
so the buffers are reused across runs without clearing.  Per relaxation the
loop performs array reads/writes only; no dict hashing, no per-run maps.
The returned :class:`CoreResult` views the live buffers; starting the next
run on the same core snapshots (C-level ``array`` slice copies) any previous
result still referenced, so late inspection (tests, debugging) stays
correct while the common drop-after-backtrace pattern costs nothing.

Expand protocols
----------------

Engines supply an expansion callback.  The **buffered protocol** (all
production adapters) writes successors into preallocated output buffers and
returns a count::

    count = expand(node, cost, aux, succ_node, succ_cost, succ_aux)

eliminating the per-expansion tuple-list allocation of the legacy protocol,
which is kept as a compatibility path (``buffered=False``): ``expand(node,
cost, aux)`` yielding ``(successor, new_cost, new_aux)`` tuples, as the
:mod:`repro.search.legacy` parity harnesses and external callers used.

The loop uses :mod:`heapq` with lazy deletion and a monotone push counter,
which reproduces the pop order of the repo's ``UpdatablePriorityQueue``
(entries replaced on a strict improvement sort by the new, larger counter;
ties between distinct nodes resolve by push order) -- so the reference
engines in :mod:`repro.search.legacy` yield bit-identical results.
"""

from __future__ import annotations

import weakref
from array import array
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.accel import get_native_kernel, get_numpy
from repro.native.spec import ACCEPT_ALWAYS

if TYPE_CHECKING:  # imported lazily to keep this module dependency-free
    from repro.dr.cost import CostModel, TargetBounds
    from repro.grid import RoutingGrid

#: Default strict-improvement epsilon (matches the seed maze router).
IMPROVE_EPS = 1e-12

#: Default equal-cost tolerance for aux (color-state) merging; matches the
#: seed color-state search's ``_COST_TOLERANCE``.
TIE_EPS = 1e-9

#: Capacity of the preallocated successor buffers handed to buffered expand
#: callbacks.  The densest expansion is the DAC-2012 mask-expanded graph
#: (2 mask switches + 6 moves = 8 successors); 32 leaves generous headroom.
SUCC_CAPACITY = 32


class CoreResult:
    """Raw outcome of one :meth:`SearchCore.run` call (int-node space).

    Views the core's live label buffers; the owning core snapshots the
    buffers into this result (cheap ``array`` slice copies) before reusing
    them for a subsequent run, so the result stays valid indefinitely.  The
    legacy dict views (:attr:`cost` / :attr:`aux` / :attr:`parent`) are
    materialised on first access by scanning the epoch stamps.
    """

    __slots__ = (
        "reached",
        "expansions",
        "_cost_buf",
        "_aux_buf",
        "_parent_buf",
        "_stamp_buf",
        "_epoch",
        "_cost_map",
        "_aux_map",
        "_parent_map",
        "_detached",
        "__weakref__",
    )

    def __init__(
        self,
        reached: int,
        expansions: int,
        cost_buf: array,
        aux_buf: array,
        parent_buf: array,
        stamp_buf: array,
        epoch: int,
    ) -> None:
        self.reached = reached  #: reached node, or -1 when the search failed
        self.expansions = expansions
        self._cost_buf = cost_buf
        self._aux_buf = aux_buf
        self._parent_buf = parent_buf
        self._stamp_buf = stamp_buf
        self._epoch = epoch
        self._cost_map: Optional[Dict[int, float]] = None
        self._aux_map: Optional[Dict[int, int]] = None
        self._parent_map: Optional[Dict[int, int]] = None
        self._detached = False

    @property
    def found(self) -> bool:
        """Return ``True`` when a target node was reached."""
        return self.reached >= 0

    def _detach(self) -> None:
        """Snapshot the shared buffers before the owning core reuses them."""
        if self._detached:
            return
        self._cost_buf = self._cost_buf[:]
        self._aux_buf = self._aux_buf[:]
        self._parent_buf = self._parent_buf[:]
        self._stamp_buf = self._stamp_buf[:]
        self._detached = True

    # -- per-node accessors (hot consumers: backtrace, color_state_of) ----

    def cost_at(self, node: int) -> float:
        """Return the best cost labelled at *node* (must be labelled)."""
        return self._cost_buf[node]

    def aux_at(self, node: int) -> int:
        """Return the aux bits labelled at *node* (must be labelled)."""
        return self._aux_buf[node]

    def is_labelled(self, node: int) -> bool:
        """Return ``True`` when *node* received a label during the run."""
        return self._stamp_buf[node] == self._epoch

    def node_path(self, node: Optional[int] = None) -> List[int]:
        """Return the node path from *node* (default: reached) back to a seed.

        Ordered destination-first, the order Algorithm 3's backtrace walks.
        Raises :class:`ValueError` on a failed search.
        """
        if node is None:
            node = self.reached
        if node < 0:
            raise ValueError("cannot backtrace a failed search")
        parent = self._parent_buf
        path: List[int] = []
        cursor = node
        while cursor >= 0:
            path.append(cursor)
            cursor = parent[cursor]
        return path

    # -- dict views (legacy compatibility surface; built on demand) -------

    def _labelled_nodes(self) -> List[int]:
        stamp, epoch = self._stamp_buf, self._epoch
        np = get_numpy()
        if np is not None:
            return np.flatnonzero(np.frombuffer(stamp, dtype=np.int64) == epoch).tolist()
        return [node for node, mark in enumerate(stamp) if mark == epoch]

    def labelled_planar_box(
        self, plane_size: int, num_rows: int, node_stride: int = 1
    ) -> Optional[Tuple[int, int, int, int]]:
        """Return the planar ``(col_lo, row_lo, col_hi, row_hi)`` bounding box
        of every vertex labelled during the run, or ``None`` when no node was
        labelled.

        Every vertex whose mutable grid state the search *read* (successor
        generation, target acceptance, backtrace cost queries) is labelled,
        so this box bounds the state the result depends on -- the
        speculative batch executor compares it against committed batch-mate
        deltas to decide whether a snapshot-computed route is still exact.
        """
        stamp, epoch = self._stamp_buf, self._epoch
        np = get_numpy()
        if np is not None:
            nodes = np.flatnonzero(np.frombuffer(stamp, dtype=np.int64) == epoch)
            if not nodes.size:
                return None
            if node_stride != 1:
                nodes = nodes // node_stride
            rem = nodes % plane_size
            cols = rem // num_rows
            rows = rem % num_rows
            return (int(cols.min()), int(rows.min()), int(cols.max()), int(rows.max()))
        box = None
        for node, mark in enumerate(stamp):
            if mark != epoch:
                continue
            rem = (node // node_stride if node_stride != 1 else node) % plane_size
            col, row = divmod(rem, num_rows)
            if box is None:
                box = [col, row, col, row]
            else:
                if col < box[0]:
                    box[0] = col
                elif col > box[2]:
                    box[2] = col
                if row < box[1]:
                    box[1] = row
                elif row > box[3]:
                    box[3] = row
        return None if box is None else tuple(box)

    @property
    def cost(self) -> Dict[int, float]:
        """Return the ``node -> best cost`` map (materialised on demand)."""
        if self._cost_map is None:
            buf = self._cost_buf
            self._cost_map = {node: buf[node] for node in self._labelled_nodes()}
        return self._cost_map

    @property
    def aux(self) -> Dict[int, int]:
        """Return the ``node -> aux bits`` map (materialised on demand)."""
        if self._aux_map is None:
            buf = self._aux_buf
            self._aux_map = {node: buf[node] for node in self._labelled_nodes()}
        return self._aux_map

    @property
    def parent(self) -> Dict[int, int]:
        """Return the ``node -> predecessor`` map (``-1`` for seeds)."""
        if self._parent_map is None:
            buf = self._parent_buf
            self._parent_map = {node: buf[node] for node in self._labelled_nodes()}
        return self._parent_map


class SearchCore:
    """Shared Dijkstra/A* engine over int nodes with pluggable relaxation.

    Parameters
    ----------
    grid:
        The routing grid; supplies dimensions for the inline heuristic.
    cost_model:
        Used only for the rules (alpha / via cost) of the A* lower bound;
        edge costs are entirely the ``expand`` callback's business.
    max_expansions:
        Expansion budget per :meth:`run` call.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 2_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions
        # Flat label buffers, allocated on first run and reused (epoch-
        # validated) ever after; capacity grows with the node stride.
        self._capacity = 0
        self._cost_buf: Optional[array] = None
        self._aux_buf: Optional[array] = None
        self._parent_buf: Optional[array] = None
        self._stamp_buf: Optional[array] = None
        # "Expanded with label" tracking, epoch-stamped like the labels.
        self._exp_cost_buf: Optional[array] = None
        self._exp_aux_buf: Optional[array] = None
        self._exp_stamp_buf: Optional[array] = None
        self._epoch = 0
        # Successor output buffers shared with buffered expand callbacks.
        self._succ_node: List[int] = [0] * SUCC_CAPACITY
        self._succ_cost: List[float] = [0.0] * SUCC_CAPACITY
        self._succ_aux: List[int] = [0] * SUCC_CAPACITY
        # The previous run's (possibly still referenced) result: snapshot it
        # before its buffers are overwritten.
        self._last_result: Optional[weakref.ref] = None
        # Cached per-vertex coordinate arrays for the vectorised heuristic.
        self._coord_cache: Optional[Tuple[object, object, object]] = None
        # Per-(target bounds, stride) heuristic tables, reused across the
        # searches of one net and across rip-up iterations: the lower bound
        # reads only the target box and the grid's immutable geometry/rules,
        # never mutable grid state, so entries stay exact for the life of
        # the core regardless of RoutingGrid.mutation_epoch.
        self._heur_tables: Dict[Tuple["TargetBounds", int], List[float]] = {}
        # Per-node target flags for the native kernel (set before a kernel
        # call, cleared right after; allocated lazily with the labels).
        self._target_flags: Optional[bytearray] = None
        # Optional observer called with every finished CoreResult while its
        # label buffers are guaranteed live (the batch executor's explored-
        # region tracker hooks in here without forcing buffer snapshots).
        self.on_result: Optional[Callable[[CoreResult], None]] = None

    # ------------------------------------------------------------------

    def _ensure_buffers(self, num_nodes: int) -> None:
        if num_nodes <= self._capacity:
            return
        self._capacity = num_nodes
        self._cost_buf = array("d", [0.0]) * num_nodes
        self._aux_buf = array("i", [0]) * num_nodes
        self._parent_buf = array("i", [-1]) * num_nodes
        self._stamp_buf = array("q", [0]) * num_nodes
        self._exp_cost_buf = array("d", [0.0]) * num_nodes
        self._exp_aux_buf = array("i", [0]) * num_nodes
        self._exp_stamp_buf = array("q", [0]) * num_nodes

    #: Cap on cached per-bounds heuristic tables; a router cycling through
    #: more distinct target boxes than this simply rebuilds (correctness is
    #: unaffected, the cache only saves the O(V) vectorised pass).
    _HEUR_CACHE_LIMIT = 128

    def _heuristic_table(
        self, bounds: "TargetBounds", node_stride: int
    ) -> Optional[List[float]]:
        """Return per-node A* lower bounds as a flat list, or ``None``.

        Vectorised hoist of the inline heuristic: the bounding box changes
        per *net*, but the per-vertex coordinate decomposition is fixed, so
        one numpy pass produces every node's ``h`` value with the exact
        scalar arithmetic (``alpha * (planar + dlayer * via_cost)``).
        Tables are cached per ``(bounds, stride)`` -- a net's target box
        recurs across its multi-pin searches and across every rip-up
        iteration that reroutes it, and the bound depends on no mutable
        grid state, so the rebuild-per-search of earlier revisions was
        pure waste.
        """
        np = get_numpy()
        if np is None:
            return None
        key = (bounds, node_stride)
        cached = self._heur_tables.get(key)
        if cached is not None:
            return cached
        grid = self.grid
        if self._coord_cache is None:
            indices = np.arange(grid.num_vertices)
            layer, rem = np.divmod(indices, grid.plane_size)
            col, row = np.divmod(rem, grid.num_rows)
            self._coord_cache = (layer, col, row)
        layer, col, row = self._coord_cache
        zero = 0
        dcol = np.maximum(np.maximum(bounds.min_col - col, zero), col - bounds.max_col)
        drow = np.maximum(np.maximum(bounds.min_row - row, zero), row - bounds.max_row)
        dlayer = np.maximum(
            np.maximum(bounds.min_layer - layer, zero), layer - bounds.max_layer
        )
        rules = self.grid.rules
        heights = (dcol + drow).astype(float) + dlayer.astype(float) * rules.via_cost
        table = rules.alpha * heights
        if node_stride != 1:
            table = np.repeat(table, node_stride)
        result = table.tolist()
        if len(self._heur_tables) >= self._HEUR_CACHE_LIMIT:
            self._heur_tables.clear()
        self._heur_tables[key] = result
        return result

    def _try_run_native(
        self,
        seeds: Iterable[Tuple[int, int]],
        targets: "set[int]",
        expand: Callable[..., object],
        bounds: Optional[TargetBounds],
        node_stride: int,
        merge_aux: bool,
        improve_eps: float,
        tie_eps: float,
        accept: Optional[Callable[[int], bool]],
        epoch: int,
    ) -> Optional[CoreResult]:
        """Run the search on the compiled kernel, or ``None`` to fall back.

        Dispatches only when the kernel is loaded, the expand closure
        carries a :class:`repro.native.spec.NativeExpandSpec` whose stride
        matches the call, and the accept predicate (if any) carries a
        native descriptor.  The kernel mutates the exact label buffers the
        Python loop would, so the returned :class:`CoreResult` is
        indistinguishable from an interpreted run.
        """
        spec = getattr(expand, "native_spec", None)
        if spec is None or spec.node_stride != node_stride:
            return None
        kernel = get_native_kernel()
        if kernel is None:
            return None
        if accept is None:
            accept_kind = ACCEPT_ALWAYS
            owner = None
            net_id = 0
        else:
            accept_spec = getattr(accept, "native_spec", None)
            if accept_spec is None:
                return None
            accept_kind = accept_spec.kind
            owner = accept_spec.owner
            net_id = accept_spec.net_id

        seed_node = array("i")
        seed_aux = array("i")
        for node, node_aux in seeds:
            seed_node.append(node)
            seed_aux.append(node_aux)

        flags = self._target_flags
        if flags is None or len(flags) < self._capacity:
            flags = self._target_flags = bytearray(self._capacity)
        for node in targets:
            flags[node] = 1
        try:
            grid = self.grid
            rules = grid.rules
            if bounds is not None:
                use_bounds = 1
                min_layer, max_layer = bounds.min_layer, bounds.max_layer
                min_col, max_col = bounds.min_col, bounds.max_col
                min_row, max_row = bounds.min_row, bounds.max_row
            else:
                use_bounds = 0
                min_layer = max_layer = min_col = max_col = min_row = max_row = 0
            reached, expansions = kernel.run_search(
                spec.mode,
                grid.num_vertices * node_stride,
                node_stride,
                self._cost_buf,
                self._aux_buf,
                self._parent_buf,
                self._stamp_buf,
                self._exp_cost_buf,
                self._exp_aux_buf,
                self._exp_stamp_buf,
                epoch,
                seed_node,
                seed_aux,
                len(seed_node),
                flags,
                use_bounds,
                min_layer,
                max_layer,
                min_col,
                max_col,
                min_row,
                max_row,
                rules.alpha,
                rules.via_cost,
                grid.plane_size,
                grid.num_rows,
                improve_eps,
                tie_eps,
                1 if merge_aux else 0,
                self.max_expansions,
                accept_kind,
                owner,
                net_id,
                spec.neighbor,
                spec.blocked,
                spec.base_costs,
                spec.congestion,
                spec.guide,
                spec.pressure,
                spec.stitch,
                spec.tolerance,
            )
        finally:
            for node in targets:
                flags[node] = 0

        result = CoreResult(
            reached,
            expansions,
            self._cost_buf,
            self._aux_buf,
            self._parent_buf,
            self._stamp_buf,
            epoch,
        )
        self._last_result = weakref.ref(result)
        if self.on_result is not None:
            self.on_result(result)
        return result

    def run(
        self,
        seeds: Iterable[Tuple[int, int]],
        targets: "set[int]",
        expand: Callable[..., object],
        bounds: Optional[TargetBounds] = None,
        node_stride: int = 1,
        merge_aux: bool = False,
        improve_eps: float = IMPROVE_EPS,
        tie_eps: float = TIE_EPS,
        accept: Optional[Callable[[int], bool]] = None,
        buffered: bool = False,
    ) -> CoreResult:
        """Run one multi-source search.

        Parameters
        ----------
        seeds:
            ``(node, aux)`` pairs, each starting at cost 0, in deterministic
            order (the order fixes tie-breaking).
        targets:
            Node set whose first accepted pop ends the search.
        expand:
            The expansion callback.  With ``buffered=True`` (the production
            protocol): ``expand(node, cost, aux, succ_node, succ_cost,
            succ_aux) -> count`` filling the three preallocated output
            buffers (capacity :data:`SUCC_CAPACITY`).  With the default
            compatibility protocol: ``expand(node, cost, aux)`` yielding
            ``(successor, new_cost, new_aux)`` tuples.  Successors must be
            valid (in-bounds, unblocked) nodes either way.
        bounds:
            Target bounding box for the admissible A* lower bound (grid
            coordinates); ``None`` disables the heuristic.
        node_stride:
            Nodes per grid vertex (1, or 3 on the mask-expanded graph);
            ``node // node_stride`` must be the flat vertex index.
        merge_aux:
            When ``True``, a revisit within *tie_eps* of the stored cost
            OR-merges the aux bits instead of being discarded, and the node
            is re-expanded if the merge widened its bits after it had
            already been expanded (Alg. 2's color-state union).
        improve_eps:
            A revisit must undercut the stored cost by more than this to
            replace the label.
        accept:
            Optional extra predicate a popped target must satisfy (e.g. the
            maze router's occupied-target rule).
        buffered:
            Selects the expand protocol (see *expand*).
        """
        previous = self._last_result() if self._last_result is not None else None
        if previous is not None:
            previous._detach()

        grid = self.grid
        self._ensure_buffers(grid.num_vertices * node_stride)
        self._epoch += 1
        epoch = self._epoch

        if buffered:
            # Native tier: when the adapter attached a kernel descriptor to
            # its expand closure (and the accept predicate, if any, is
            # representable), the whole relaxation loop runs compiled over
            # the same buffers -- bit-identical by the kernel's contract,
            # proven by tests/test_native_kernel.py.  Any missing piece
            # falls through to the interpreted loop below.
            result = self._try_run_native(
                seeds,
                targets,
                expand,
                bounds,
                node_stride,
                merge_aux,
                improve_eps,
                tie_eps,
                accept,
                epoch,
            )
            if result is not None:
                return result

        cost = self._cost_buf
        aux = self._aux_buf
        parent = self._parent_buf
        stamp = self._stamp_buf
        exp_cost = self._exp_cost_buf
        exp_aux = self._exp_aux_buf
        exp_stamp = self._exp_stamp_buf
        succ_node = self._succ_node
        succ_cost = self._succ_cost
        succ_aux = self._succ_aux

        heur_table: Optional[List[float]] = None
        if bounds is not None:
            heur_table = self._heuristic_table(bounds, node_stride)
        if heur_table is not None:
            heur = heur_table.__getitem__
        elif bounds is not None:
            rules = grid.rules
            alpha = rules.alpha
            via_cost = rules.via_cost
            rows = grid.num_rows
            plane = grid.plane_size
            min_layer, max_layer = bounds.min_layer, bounds.max_layer
            min_col, max_col = bounds.min_col, bounds.max_col
            min_row, max_row = bounds.min_row, bounds.max_row

            def heur(node: int) -> float:
                vertex = node // node_stride if node_stride != 1 else node
                layer, rem = divmod(vertex, plane)
                col, row = divmod(rem, rows)
                dcol = max(min_col - col, 0, col - max_col)
                drow = max(min_row - row, 0, row - max_row)
                dlayer = max(min_layer - layer, 0, layer - max_layer)
                return alpha * (float(dcol + drow) + float(dlayer) * via_cost)
        else:
            def heur(_node: int) -> float:
                return 0.0

        heap: List[Tuple[float, int, int, float]] = []  # (f, counter, node, g)
        counter = 0
        for node, node_aux in seeds:
            cost[node] = 0.0
            aux[node] = node_aux
            parent[node] = -1
            stamp[node] = epoch
            heappush(heap, (heur(node), counter, node, 0.0))
            counter += 1

        expansions = 0
        reached = -1
        max_expansions = self.max_expansions
        while heap:
            _f, _cnt, node, g_pushed = heappop(heap)
            g_cur = cost[node]
            if g_pushed - g_cur > improve_eps:
                continue  # stale entry superseded by a strict improvement
            a_cur = aux[node]
            if (
                exp_stamp[node] == epoch
                and exp_cost[node] == g_cur
                and exp_aux[node] == a_cur
            ):
                continue  # already expanded with this exact label
            exp_stamp[node] = epoch
            exp_cost[node] = g_cur
            exp_aux[node] = a_cur
            expansions += 1
            if node in targets and (accept is None or accept(node)):
                reached = node
                break
            if expansions > max_expansions:
                break
            if buffered:
                count = expand(node, g_cur, a_cur, succ_node, succ_cost, succ_aux)
                for slot in range(count):
                    succ = succ_node[slot]
                    g_new = succ_cost[slot]
                    if stamp[succ] != epoch:
                        stamp[succ] = epoch
                        cost[succ] = g_new
                        aux[succ] = succ_aux[slot]
                        parent[succ] = node
                        heappush(heap, (g_new + heur(succ), counter, succ, g_new))
                        counter += 1
                        continue
                    g_old = cost[succ]
                    if g_new < g_old - improve_eps:
                        cost[succ] = g_new
                        aux[succ] = succ_aux[slot]
                        parent[succ] = node
                        heappush(heap, (g_new + heur(succ), counter, succ, g_new))
                        counter += 1
                    elif (
                        merge_aux
                        and g_new <= g_old + tie_eps
                        and (succ_aux[slot] | aux[succ]) != aux[succ]
                    ):
                        # Equal-cost revisit with extra mask freedom: widen
                        # the stored color state (paper Alg. 2 merge) keeping
                        # the established cost and parent.  If the successor
                        # was already expanded with the narrower state, queue
                        # it again so the widening propagates downstream; a
                        # pending queue entry will pick the merged state up
                        # at pop time.
                        aux[succ] |= succ_aux[slot]
                        if exp_stamp[succ] == epoch:
                            heappush(heap, (g_old + heur(succ), counter, succ, g_old))
                            counter += 1
            else:
                for succ, g_new, a_new in expand(node, g_cur, a_cur):
                    if stamp[succ] != epoch:
                        stamp[succ] = epoch
                        cost[succ] = g_new
                        aux[succ] = a_new
                        parent[succ] = node
                        heappush(heap, (g_new + heur(succ), counter, succ, g_new))
                        counter += 1
                        continue
                    g_old = cost[succ]
                    if g_new < g_old - improve_eps:
                        cost[succ] = g_new
                        aux[succ] = a_new
                        parent[succ] = node
                        heappush(heap, (g_new + heur(succ), counter, succ, g_new))
                        counter += 1
                    elif (
                        merge_aux
                        and g_new <= g_old + tie_eps
                        and (a_new | aux[succ]) != aux[succ]
                    ):
                        aux[succ] |= a_new
                        if exp_stamp[succ] == epoch:
                            heappush(heap, (g_old + heur(succ), counter, succ, g_old))
                            counter += 1

        result = CoreResult(
            reached, expansions, cost, aux, parent, stamp, epoch
        )
        self._last_result = weakref.ref(result)
        if self.on_result is not None:
            self.on_result(result)
        return result
