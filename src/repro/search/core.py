"""The shared best-first search engine over flat vertex indices.

All three routers in this repository run the same algorithm -- multi-source
Dijkstra/A* over the routing grid -- and differ only in their *label*:

* the plain maze router labels a vertex with a cost,
* color-state searching (paper Alg. 2) adds a 3-bit
  :class:`~repro.tpl.color_state.ColorState` merged on equal-cost revisits,
* the DAC-2012 baseline searches the mask-expanded graph, i.e. its node
  space is ``vertex_index * 3 + mask`` with extra in-place mask-switch
  edges.

:class:`SearchCore` owns the one queue/relaxation loop all of them share.
Nodes are plain ints (flat grid indices, optionally mask-expanded with a
*stride*), labels are ``(cost, aux)`` where ``aux`` is an engine-specific
small int (a color-state bitmask, or 0 when unused).  Engines supply an
``expand(node, cost, aux)`` callback producing successor labels; the core
handles seeding, the A* bounding-box heuristic, deterministic tie-breaking,
stale-entry skipping, equal-cost aux merging with re-expansion, target
acceptance and backtracing.

The loop uses :mod:`heapq` with lazy deletion and a monotone push counter,
which reproduces the pop order of the repo's ``UpdatablePriorityQueue``
(entries replaced on a strict improvement sort by the new, larger counter;
ties between distinct nodes resolve by push order) -- so the reference
engines in :mod:`repro.search.legacy` yield bit-identical results.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # imported lazily to keep this module dependency-free
    from repro.dr.cost import CostModel, TargetBounds
    from repro.grid import RoutingGrid

#: Default strict-improvement epsilon (matches the seed maze router).
IMPROVE_EPS = 1e-12

#: Default equal-cost tolerance for aux (color-state) merging; matches the
#: seed color-state search's ``_COST_TOLERANCE``.
TIE_EPS = 1e-9


class CoreResult:
    """Raw outcome of one :meth:`SearchCore.run` call (int-node space)."""

    __slots__ = ("reached", "cost", "aux", "parent", "expansions")

    def __init__(
        self,
        reached: int,
        cost: Dict[int, float],
        aux: Dict[int, int],
        parent: Dict[int, int],
        expansions: int,
    ) -> None:
        self.reached = reached  #: reached node, or -1 when the search failed
        self.cost = cost        #: node -> best cost
        self.aux = aux          #: node -> aux bits (engine-specific)
        self.parent = parent    #: node -> predecessor node (-1 for seeds)
        self.expansions = expansions

    @property
    def found(self) -> bool:
        """Return ``True`` when a target node was reached."""
        return self.reached >= 0

    def node_path(self, node: Optional[int] = None) -> List[int]:
        """Return the node path from *node* (default: reached) back to a seed.

        Ordered destination-first, the order Algorithm 3's backtrace walks.
        Raises :class:`ValueError` on a failed search.
        """
        if node is None:
            node = self.reached
        if node < 0:
            raise ValueError("cannot backtrace a failed search")
        path: List[int] = []
        cursor = node
        while cursor >= 0:
            path.append(cursor)
            cursor = self.parent[cursor]
        return path


class SearchCore:
    """Shared Dijkstra/A* engine over int nodes with pluggable relaxation.

    Parameters
    ----------
    grid:
        The routing grid; supplies dimensions for the inline heuristic.
    cost_model:
        Used only for the rules (alpha / via cost) of the A* lower bound;
        edge costs are entirely the ``expand`` callback's business.
    max_expansions:
        Expansion budget per :meth:`run` call.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 2_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions

    def run(
        self,
        seeds: Iterable[Tuple[int, int]],
        targets: "set[int]",
        expand: Callable[[int, float, int], Iterable[Tuple[int, float, int]]],
        bounds: Optional[TargetBounds] = None,
        node_stride: int = 1,
        merge_aux: bool = False,
        improve_eps: float = IMPROVE_EPS,
        tie_eps: float = TIE_EPS,
        accept: Optional[Callable[[int], bool]] = None,
    ) -> CoreResult:
        """Run one multi-source search.

        Parameters
        ----------
        seeds:
            ``(node, aux)`` pairs, each starting at cost 0, in deterministic
            order (the order fixes tie-breaking).
        targets:
            Node set whose first accepted pop ends the search.
        expand:
            ``expand(node, cost, aux)`` yielding ``(successor, new_cost,
            new_aux)`` tuples; successors must be valid (in-bounds,
            unblocked) nodes.
        bounds:
            Target bounding box for the admissible A* lower bound (grid
            coordinates); ``None`` disables the heuristic.
        node_stride:
            Nodes per grid vertex (1, or 3 on the mask-expanded graph);
            ``node // node_stride`` must be the flat vertex index.
        merge_aux:
            When ``True``, a revisit within *tie_eps* of the stored cost
            OR-merges the aux bits instead of being discarded, and the node
            is re-expanded if the merge widened its bits after it had
            already been expanded (Alg. 2's color-state union).
        improve_eps:
            A revisit must undercut the stored cost by more than this to
            replace the label.
        accept:
            Optional extra predicate a popped target must satisfy (e.g. the
            maze router's occupied-target rule).
        """
        grid = self.grid
        rules = grid.rules
        alpha = rules.alpha
        via_cost = rules.via_cost
        rows = grid.num_rows
        plane = grid.plane_size

        if bounds is not None:
            min_layer, max_layer = bounds.min_layer, bounds.max_layer
            min_col, max_col = bounds.min_col, bounds.max_col
            min_row, max_row = bounds.min_row, bounds.max_row

            def heur(node: int) -> float:
                vertex = node // node_stride if node_stride != 1 else node
                layer, rem = divmod(vertex, plane)
                col, row = divmod(rem, rows)
                dcol = max(min_col - col, 0, col - max_col)
                drow = max(min_row - row, 0, row - max_row)
                dlayer = max(min_layer - layer, 0, layer - max_layer)
                return alpha * (float(dcol + drow) + float(dlayer) * via_cost)
        else:
            def heur(_node: int) -> float:
                return 0.0

        heap: List[Tuple[float, int, int, float]] = []  # (f, counter, node, g)
        counter = 0
        cost: Dict[int, float] = {}
        aux: Dict[int, int] = {}
        parent: Dict[int, int] = {}
        expanded: Dict[int, Tuple[float, int]] = {}

        for node, node_aux in seeds:
            cost[node] = 0.0
            aux[node] = node_aux
            parent[node] = -1
            heappush(heap, (heur(node), counter, node, 0.0))
            counter += 1

        expansions = 0
        reached = -1
        max_expansions = self.max_expansions
        while heap:
            _f, _cnt, node, g_pushed = heappop(heap)
            g_cur = cost[node]
            if g_pushed - g_cur > improve_eps:
                continue  # stale entry superseded by a strict improvement
            a_cur = aux[node]
            label = (g_cur, a_cur)
            if expanded.get(node) == label:
                continue  # already expanded with this exact label
            expanded[node] = label
            expansions += 1
            if node in targets and (accept is None or accept(node)):
                reached = node
                break
            if expansions > max_expansions:
                break
            for succ, g_new, a_new in expand(node, g_cur, a_cur):
                g_old = cost.get(succ)
                if g_old is None or g_new < g_old - improve_eps:
                    cost[succ] = g_new
                    aux[succ] = a_new
                    parent[succ] = node
                    heappush(heap, (g_new + heur(succ), counter, succ, g_new))
                    counter += 1
                elif (
                    merge_aux
                    and g_new <= g_old + tie_eps
                    and (a_new | aux[succ]) != aux[succ]
                ):
                    # Equal-cost revisit with extra mask freedom: widen the
                    # stored color state (paper Alg. 2 merge) keeping the
                    # established cost and parent.  If the successor was
                    # already expanded with the narrower state, queue it
                    # again so the widening propagates downstream; a pending
                    # queue entry will pick the merged state up at pop time.
                    aux[succ] |= a_new
                    if succ in expanded:
                        heappush(heap, (g_old + heur(succ), counter, succ, g_old))
                        counter += 1

        return CoreResult(reached, cost, aux, parent, expansions)
