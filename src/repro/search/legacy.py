"""Frozen ``GridPoint``-dict reference search engines (the seed architecture).

These classes preserve the repository's original search implementations --
per-vertex :class:`~repro.geometry.GridPoint` keys, dict/set state queries
through the grid's compatibility shims, and the
:class:`~repro.utils.UpdatablePriorityQueue` -- exactly as they looked
before the flat-index :class:`repro.search.SearchCore` refactor (plus the
Alg. 2 equal-cost color-state merge fix, applied to both generations so
they stay semantically identical).

They exist for two reasons only:

* **parity tests** route the same designs through a legacy engine and the
  flat-index adapter and assert bit-identical solutions, proving the
  refactor changed the representation, not the algorithm;
* **micro-benchmarks** (:mod:`repro.bench.micro`) measure the speedup of
  the flat engines against this reference.

Production routers never instantiate them; new behaviour goes into the
adapters, not here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.dr.cost import CostModel, TargetBounds
from repro.dr.maze import SearchResult
from repro.geometry import GridPoint
from repro.grid import ALL_DIRECTIONS, RoutingGrid
from repro.tpl.color_state import ALL_COLORS, ColorState
from repro.tpl.search import ColorSearchResult, VertexLabel, _COST_TOLERANCE
from repro.utils import UpdatablePriorityQueue

#: (vertex, mask) state on the DAC-2012 mask-expanded graph.
MaskedVertex = Tuple[GridPoint, int]


class LegacyMazeSearch:
    """The seed multi-source maze search (drop-in for ``MazeRouter``)."""

    def __init__(self, grid: RoutingGrid, cost_model: CostModel, max_expansions: int = 2_000_000) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions

    def search(
        self,
        sources: Iterable[GridPoint],
        targets: Set[GridPoint],
        net_name: str,
        allow_occupied_targets: bool = True,
    ) -> SearchResult:
        """Search from *sources* to any vertex in *targets* (seed algorithm)."""
        if not targets:
            return SearchResult()
        bounds = TargetBounds.from_targets(targets)
        queue: UpdatablePriorityQueue = UpdatablePriorityQueue()
        costs: Dict[GridPoint, float] = {}
        parents: Dict[GridPoint, Optional[GridPoint]] = {}
        for source in sources:
            if not self.grid.in_bounds(source):
                continue
            if self.grid.is_blocked(source):
                continue
            costs[source] = 0.0
            parents[source] = None
            queue.push(source, self.cost_model.heuristic_bounds(source, bounds))
        expansions = 0
        reached: Optional[GridPoint] = None
        while queue:
            vertex, _priority = queue.pop()
            cost_here = costs[vertex]
            expansions += 1
            if vertex in targets:
                if allow_occupied_targets or not self.grid.is_occupied_by_other(vertex, net_name):
                    reached = vertex
                    break
            if expansions > self.max_expansions:
                break
            for direction in ALL_DIRECTIONS:
                neighbor = self.grid.neighbor(vertex, direction)
                if neighbor is None or self.grid.is_blocked(neighbor):
                    continue
                step = self.cost_model.weighted_traditional_cost(
                    vertex, direction, neighbor, net_name
                )
                candidate = cost_here + step
                if candidate < costs.get(neighbor, float("inf")) - 1e-12:
                    costs[neighbor] = candidate
                    parents[neighbor] = vertex
                    priority = candidate + self.cost_model.heuristic_bounds(neighbor, bounds)
                    queue.push(neighbor, priority)
        return SearchResult(
            reached=reached, parents=parents, costs=costs, expansions=expansions
        )


class LegacyColorStateSearch:
    """The seed Alg. 2 color-state search (drop-in for ``ColorStateSearch``).

    Includes the equal-cost color-state *merge*: a re-visit within
    ``_COST_TOLERANCE`` of the stored cost whose state holds extra masks
    widens the stored state (and re-queues the vertex if it was already
    expanded) instead of being dropped -- the same rule the flat engine
    applies, so both produce identical labels.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 2_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.rules = grid.rules
        self.max_expansions = max_expansions

    def search(
        self,
        sources: Mapping[GridPoint, ColorState],
        targets: Set[GridPoint],
        net_name: str,
    ) -> ColorSearchResult:
        """Search from *sources* to any vertex of *targets* (seed algorithm)."""
        if not targets:
            return ColorSearchResult()
        bounds = TargetBounds.from_targets(targets)
        labels: Dict[GridPoint, VertexLabel] = {}
        queue: UpdatablePriorityQueue = UpdatablePriorityQueue()

        for vertex, state in sources.items():
            if not self.grid.in_bounds(vertex) or self.grid.is_blocked(vertex):
                continue
            labels[vertex] = VertexLabel(cost=0.0, color_state=state)
            queue.push(vertex, self.cost_model.heuristic_bounds(vertex, bounds))

        expansions = 0
        reached: Optional[GridPoint] = None
        while queue:
            vertex, _priority = queue.pop()
            label = labels[vertex]
            expansions += 1
            if vertex in targets:
                reached = vertex
                break
            if expansions > self.max_expansions:
                break
            for direction in ALL_DIRECTIONS:
                neighbor = self.grid.neighbor(vertex, direction)
                if neighbor is None or self.grid.is_blocked(neighbor):
                    continue
                step_cost, new_state = self._direction_cost(
                    vertex, label.color_state, direction, neighbor, net_name
                )
                candidate = label.cost + step_cost
                existing = labels.get(neighbor)
                if existing is None or candidate < existing.cost - _COST_TOLERANCE:
                    labels[neighbor] = VertexLabel(
                        cost=candidate,
                        color_state=new_state,
                        parent=vertex,
                        parent_direction=direction,
                    )
                    priority = candidate + self.cost_model.heuristic_bounds(neighbor, bounds)
                    queue.push(neighbor, priority)
                elif (
                    candidate <= existing.cost + _COST_TOLERANCE
                    and new_state.union(existing.color_state) != existing.color_state
                ):
                    # Equal-cost revisit with extra mask freedom: merge the
                    # states so the backtrace keeps every cost-optimal mask
                    # (paper Alg. 2); keep the established cost and parent.
                    existing.color_state = existing.color_state.union(new_state)
                    if neighbor not in queue:
                        # Already expanded with the narrower state: queue it
                        # again so the widening propagates downstream.
                        queue.push(
                            neighbor,
                            existing.cost
                            + self.cost_model.heuristic_bounds(neighbor, bounds),
                        )

        return ColorSearchResult(reached=reached, labels=labels, expansions=expansions)

    # ------------------------------------------------------------------

    def _direction_cost(
        self,
        vertex: GridPoint,
        state: ColorState,
        direction,
        neighbor: GridPoint,
        net_name: str,
    ) -> Tuple[float, ColorState]:
        """Return ``(min cost, resulting color state)`` for one direction."""
        base = self.cost_model.weighted_traditional_cost(vertex, direction, neighbor, net_name)
        color_costs = self.cost_model.color_costs(neighbor, net_name)
        stitch_penalty = self.cost_model.stitch_cost()

        per_color: List[Tuple[float, int]] = []
        for color in ALL_COLORS:
            cost = base + color_costs[color]
            if not direction.is_via and not state.allows(color):
                cost += stitch_penalty
            per_color.append((cost, color))

        min_cost = min(cost for cost, _color in per_color)
        allowed = [
            color for cost, color in per_color if cost <= min_cost + _COST_TOLERANCE
        ]
        return min_cost, ColorState.from_colors(allowed)


class LegacyMaskExpandedSearch:
    """The seed DAC-2012 2-pin search on the mask-expanded graph."""

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 6_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.max_expansions = max_expansions

    def search(
        self,
        sources: List[MaskedVertex],
        targets: Set[GridPoint],
        net_name: str,
    ) -> Optional[List[MaskedVertex]]:
        """Search *sources* -> *targets* (any mask); seed algorithm."""
        if not targets:
            return None
        bounds = TargetBounds.from_targets(targets)
        queue: UpdatablePriorityQueue = UpdatablePriorityQueue()
        costs: Dict[MaskedVertex, float] = {}
        parents: Dict[MaskedVertex, Optional[MaskedVertex]] = {}

        for vertex, color in sources:
            state: MaskedVertex = (vertex, color)
            costs[state] = 0.0
            parents[state] = None
            queue.push(state, self.cost_model.heuristic_bounds(vertex, bounds))

        reached: Optional[MaskedVertex] = None
        expansions = 0
        stitch_penalty = self.cost_model.stitch_cost()
        while queue:
            state, _priority = queue.pop()
            vertex, color = state
            cost_here = costs[state]
            expansions += 1
            if vertex in targets:
                reached = state
                break
            if expansions > self.max_expansions:
                break
            # Mask change in place: a stitch on the expanded graph.
            for other_color in ALL_COLORS:
                if other_color == color:
                    continue
                switched: MaskedVertex = (vertex, other_color)
                candidate = cost_here + stitch_penalty
                if candidate < costs.get(switched, float("inf")) - 1e-12:
                    costs[switched] = candidate
                    parents[switched] = state
                    queue.push(
                        switched,
                        candidate + self.cost_model.heuristic_bounds(vertex, bounds),
                    )
            # Planar and via moves keeping the mask.
            for direction in ALL_DIRECTIONS:
                neighbor = self.grid.neighbor(vertex, direction)
                if neighbor is None or self.grid.is_blocked(neighbor):
                    continue
                step = self.cost_model.weighted_traditional_cost(
                    vertex, direction, neighbor, net_name
                )
                moved: MaskedVertex = (neighbor, color)
                candidate = cost_here + step
                candidate = candidate + self.cost_model.color_costs(neighbor, net_name)[color]
                if candidate < costs.get(moved, float("inf")) - 1e-12:
                    costs[moved] = candidate
                    parents[moved] = state
                    queue.push(
                        moved,
                        candidate + self.cost_model.heuristic_bounds(neighbor, bounds),
                    )

        if reached is None:
            return None

        path: List[MaskedVertex] = []
        cursor: Optional[MaskedVertex] = reached
        while cursor is not None:
            path.append(cursor)
            cursor = parents[cursor]
        path.reverse()
        return path
