"""Shared search-engine substrate for all routers.

:class:`SearchCore` is the one Dijkstra/A* loop behind the plain maze
router, the Mr.TPL color-state search and the DAC-2012 mask-expanded
baseline; the router-specific modules are thin adapters supplying an
expansion callback over flat grid indices.

:mod:`repro.search.legacy` keeps frozen ``GridPoint``-dict reference
implementations of the three searches (the seed architecture) for parity
testing and the engine micro-benchmarks; production routers never use them.
"""

from repro.search.core import (
    IMPROVE_EPS,
    SUCC_CAPACITY,
    TIE_EPS,
    CoreResult,
    SearchCore,
)

__all__ = [
    "SearchCore",
    "CoreResult",
    "IMPROVE_EPS",
    "SUCC_CAPACITY",
    "TIE_EPS",
]
