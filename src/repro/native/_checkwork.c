/* Compiled inner loop of the incremental-check neighborhood scan.
 *
 * One entry point, scan_hits(): for every dirty-net flat vertex index,
 * walk the precomputed planar interaction offsets (dcol, drow, flat
 * delta), bounds-check the neighbor column/row, and report the neighbors
 * whose occupancy-owner slot holds *another* net (owner != 0 and
 * owner != self_id; the multi-owner sentinel -1 always reports).  The
 * caller post-processes the surviving (source, neighbor) pairs through
 * the exact per-hit Python logic the pure loop uses, so reports are
 * identical by construction -- this kernel only removes the
 * overwhelmingly common empty / same-net neighbor probes from the
 * interpreter.
 *
 * Everything is integer arithmetic over caller-owned flat buffers
 * (int64 little-endian as produced by array('q') / numpy int64), so
 * there is no floating-point rounding contract to defend; the loop runs
 * with the GIL released.
 *
 * ABI: bump KERNEL_ABI_VERSION whenever the argument contract changes;
 * the loader (repro.native.load_check_kernel) refuses binaries whose
 * version does not match its expectation.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>

#define KERNEL_ABI_VERSION 1

typedef struct {
    Py_buffer view;
    int held;
} BufferSlot;

static int
acquire(PyObject *obj, BufferSlot *slot, int writable, void **ptr)
{
    slot->held = 0;
    if (obj == Py_None) {
        *ptr = NULL;
        return 0;
    }
    if (PyObject_GetBuffer(obj, &slot->view, writable ? PyBUF_WRITABLE : PyBUF_SIMPLE) < 0) {
        return -1;
    }
    slot->held = 1;
    *ptr = slot->view.buf;
    return 0;
}

static void
release_all(BufferSlot *slots, int count)
{
    for (int i = 0; i < count; i++) {
        if (slots[i].held) {
            PyBuffer_Release(&slots[i].view);
        }
    }
}

/* scan_hits(indices, dcols, drows, deltas, owner, num_cols, num_rows,
 *           self_id, out_src, out_dst) -> count
 *
 * indices           int64[n_idx]   dirty-net flat vertex indices
 * dcols/drows/deltas int64[n_off]  planar offset table (parallel arrays)
 * owner             int64[num_vertices]  0 = empty, >0 = single net id,
 *                                        -1 = multi-owner (consult dicts)
 * num_cols/num_rows Py_ssize_t     plane geometry
 * self_id           int64          owner id of the net being scanned
 * out_src/out_dst   int64[>= n_idx * n_off]  hit pairs, i-major order
 */
static PyObject *
py_scan_hits(PyObject *self, PyObject *args)
{
    PyObject *indices_obj, *dcols_obj, *drows_obj, *deltas_obj, *owner_obj;
    PyObject *out_src_obj, *out_dst_obj;
    Py_ssize_t num_cols, num_rows;
    long long self_id;

    if (!PyArg_ParseTuple(
            args, "OOOOOnnLOO:scan_hits",
            &indices_obj, &dcols_obj, &drows_obj, &deltas_obj, &owner_obj,
            &num_cols, &num_rows, &self_id, &out_src_obj, &out_dst_obj)) {
        return NULL;
    }

    BufferSlot slots[7];
    int held = 0;
    const int64_t *indices, *dcols, *drows, *deltas, *owner;
    int64_t *out_src, *out_dst;

#define ACQUIRE(obj, writable, target)                                        \
    do {                                                                      \
        void *ptr = NULL;                                                     \
        if (acquire((obj), &slots[held], (writable), &ptr) < 0) {             \
            release_all(slots, held);                                         \
            return NULL;                                                      \
        }                                                                     \
        held++;                                                               \
        (target) = ptr;                                                       \
    } while (0)

    ACQUIRE(indices_obj, 0, *(const void **)&indices);
    ACQUIRE(dcols_obj, 0, *(const void **)&dcols);
    ACQUIRE(drows_obj, 0, *(const void **)&drows);
    ACQUIRE(deltas_obj, 0, *(const void **)&deltas);
    ACQUIRE(owner_obj, 0, *(const void **)&owner);
    ACQUIRE(out_src_obj, 1, *(void **)&out_src);
    ACQUIRE(out_dst_obj, 1, *(void **)&out_dst);
#undef ACQUIRE

    Py_ssize_t n_idx = slots[0].view.len / (Py_ssize_t)sizeof(int64_t);
    Py_ssize_t n_off = slots[3].view.len / (Py_ssize_t)sizeof(int64_t);
    Py_ssize_t n_owner = slots[4].view.len / (Py_ssize_t)sizeof(int64_t);
    Py_ssize_t capacity = slots[5].view.len / (Py_ssize_t)sizeof(int64_t);
    Py_ssize_t dst_capacity = slots[6].view.len / (Py_ssize_t)sizeof(int64_t);

    if (slots[1].view.len != slots[3].view.len ||
        slots[2].view.len != slots[3].view.len) {
        release_all(slots, held);
        PyErr_SetString(PyExc_ValueError, "offset arrays disagree on length");
        return NULL;
    }
    if (capacity < n_idx * n_off || dst_capacity < n_idx * n_off) {
        release_all(slots, held);
        PyErr_SetString(PyExc_ValueError, "output buffers too small");
        return NULL;
    }
    if (num_cols <= 0 || num_rows <= 0 ||
        n_owner < (Py_ssize_t)0) {
        release_all(slots, held);
        PyErr_SetString(PyExc_ValueError, "bad plane geometry");
        return NULL;
    }

    const int64_t plane = (int64_t)num_cols * (int64_t)num_rows;
    const int64_t cols = (int64_t)num_cols;
    const int64_t rows = (int64_t)num_rows;
    const int64_t own = (int64_t)self_id;
    Py_ssize_t count = 0;
    int bad_index = 0;

    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t i = 0; i < n_idx; i++) {
        const int64_t index = indices[i];
        if (index < 0 || index >= (int64_t)n_owner) {
            bad_index = 1;
            break;
        }
        const int64_t pos = index % plane;
        const int64_t col = pos / rows;
        const int64_t row = pos - col * rows;
        for (Py_ssize_t k = 0; k < n_off; k++) {
            const int64_t ncol = col + dcols[k];
            const int64_t nrow = row + drows[k];
            if (ncol < 0 || ncol >= cols || nrow < 0 || nrow >= rows) {
                continue;
            }
            const int64_t neighbor = index + deltas[k];
            const int64_t occupant = owner[neighbor];
            if (occupant == 0 || occupant == own) {
                continue;
            }
            out_src[count] = index;
            out_dst[count] = neighbor;
            count++;
        }
    }
    Py_END_ALLOW_THREADS

    release_all(slots, held);
    if (bad_index) {
        PyErr_SetString(PyExc_ValueError, "vertex index out of range");
        return NULL;
    }
    return PyLong_FromSsize_t(count);
}

static PyMethodDef checkwork_methods[] = {
    {"scan_hits", py_scan_hits, METH_VARARGS,
     "Scan dirty-vertex neighborhoods against the owner mirror; "
     "write surviving (src, dst) pairs and return their count."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef checkwork_module = {
    PyModuleDef_HEAD_INIT,
    "_checkwork",
    "Compiled incremental-check neighborhood scan.",
    -1,
    checkwork_methods,
};

PyMODINIT_FUNC
PyInit__checkwork(void)
{
    PyObject *module = PyModule_Create(&checkwork_module);
    if (module == NULL) {
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "KERNEL_ABI_VERSION", KERNEL_ABI_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
