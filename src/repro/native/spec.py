"""Native-dispatch descriptors bridging adapters and the compiled kernel.

The router adapters express their expansion logic as Python closures; the
compiled kernel re-implements the same three expansions natively.  To let
:meth:`repro.search.SearchCore.run` switch between them transparently, each
adapter factory *attaches* a :class:`NativeExpandSpec` to the closure it
returns (``expand.native_spec = ...``): a declarative bundle of the flat
tables and scalars the kernel needs to reproduce that closure bit for bit.
The core dispatches natively only when a spec is present, the kernel is
loaded, and every run argument is representable -- otherwise the closure
runs as before, so the Python path remains the always-available fallback
and the differential oracle.

Specs are built only when the native tier is active
(:func:`repro.accel.get_native_kernel`), so Python-tier runs never pay the
table materialisation.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Expansion modes -- values mirror the C kernel's constants.
MODE_TRADITIONAL = 0
MODE_COLOR_STATE = 1
MODE_MASK_EXPANDED = 2

#: Accept-predicate modes: no predicate, or the maze router's
#: free-or-own-occupancy target rule.
ACCEPT_ALWAYS = 0
ACCEPT_FREE_OR_OWN = 1


class NativeExpandSpec:
    """Everything the kernel needs to run one adapter's expansion natively.

    All table attributes are flat buffers (``array``/``bytearray``) the C
    side reads through the buffer protocol; they alias the exact objects
    the Python closure reads, so the two paths can never diverge on data.
    """

    __slots__ = (
        "mode",
        "node_stride",
        "neighbor",
        "blocked",
        "base_costs",
        "congestion",
        "guide",
        "pressure",
        "stitch",
        "tolerance",
    )

    def __init__(
        self,
        mode: int,
        node_stride: int,
        neighbor,
        blocked,
        base_costs,
        congestion,
        guide,
        pressure=None,
        stitch: float = 0.0,
        tolerance: float = 0.0,
    ) -> None:
        self.mode = mode
        self.node_stride = node_stride
        self.neighbor = neighbor
        self.blocked = blocked
        self.base_costs = base_costs
        self.congestion = congestion
        self.guide = guide
        self.pressure = pressure
        self.stitch = stitch
        self.tolerance = tolerance


class NativeAcceptSpec:
    """Native form of a target-accept predicate (see ``ACCEPT_*``)."""

    __slots__ = ("kind", "owner", "net_id")

    def __init__(self, kind: int, owner=None, net_id: int = 0) -> None:
        self.kind = kind
        self.owner = owner
        self.net_id = net_id


def attach_native_spec(
    expand: Callable,
    mode: int,
    grid,
    cost_model,
    net_name: str,
    net_id: int,
    stitch: float = 0.0,
    tolerance: float = 0.0,
) -> Callable:
    """Attach a :class:`NativeExpandSpec` to *expand* when the tier is active.

    Returns *expand* either way, so factories can ``return
    attach_native_spec(expand, ...)``.  A spec is attached only when the
    kernel is loaded *and* the per-search snapshot tables exist (they
    require the numpy tier; without them the scalar closure is the fastest
    correct path anyway).
    """
    from repro.accel import get_native_kernel

    if get_native_kernel() is None:
        return expand
    congestion = cost_model.congestion_snapshot_flat(net_id)
    if congestion is None:
        return expand
    pressure = None
    if mode in (MODE_COLOR_STATE, MODE_MASK_EXPANDED):
        pressure = cost_model.color_pressure_snapshot_flat(net_id)
        if pressure is None:
            return expand
    expand.native_spec = NativeExpandSpec(
        mode=mode,
        node_stride=3 if mode == MODE_MASK_EXPANDED else 1,
        neighbor=grid.neighbor_table(),
        blocked=grid.blocked_buffer(),
        base_costs=cost_model.base_cost_flat(),
        congestion=congestion,
        guide=cost_model.guide_penalty_flat(net_name),
        pressure=pressure,
        stitch=stitch,
        tolerance=tolerance,
    )
    return expand


def attach_accept_spec(accept: Callable, grid, net_id: int) -> Callable:
    """Attach the free-or-own occupancy accept spec to *accept*."""
    from repro.accel import get_native_kernel

    if get_native_kernel() is not None:
        accept.native_spec = NativeAcceptSpec(
            kind=ACCEPT_FREE_OR_OWN, owner=grid.owner_buffer(), net_id=net_id
        )
    return accept
