/* Native relaxation kernel: the compiled Dijkstra/A* inner loop behind
 * repro.search.SearchCore.run.
 *
 * One call executes a whole multi-source search -- heap pops, target
 * acceptance, successor expansion and label relaxation -- over the exact
 * flat buffers the Python engine uses (array('d') cost, array('i')
 * aux/parent, array('q') epoch stamps), without crossing the Python
 * boundary per node.  The three expansion modes mirror the three adapter
 * callbacks bit for bit:
 *
 *   MODE_TRADITIONAL  dr/maze's Cost_trad expand (6 grid moves),
 *   MODE_COLOR_STATE  tpl/search's Alg. 2 per-mask expand (6 moves, 3x1
 *                     mask costs, stitch on planar moves, min + state set),
 *   MODE_MASK_EXPANDED baselines/dac2012's mask-expanded graph (2 in-place
 *                     mask switches + 6 moves, node = vertex * 3 + mask).
 *
 * Bit-exactness contract: every floating-point expression below copies the
 * Python adapters' operation order exactly (each step is an IEEE-754
 * double operation in both runtimes), the binary heap orders entries by
 * the same (f, push counter) key heapq compares first, and that key is a
 * strict total order (the counter is unique) -- so pop order, tie-breaks,
 * labels and backtraced paths are identical to the interpreted loop.  The
 * build deliberately disables FP contraction (-ffp-contract=off): a fused
 * multiply-add would round differently from Python's separate ops.
 *
 * The GIL is released for the duration of the loop: the kernel only
 * touches the caller-owned label buffers (exclusive to one SearchCore) and
 * read-only snapshot tables, so concurrent thread-backend searches run
 * truly in parallel, each inside its own kernel call.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdlib.h>
#include <string.h>

/* Bumped whenever the run_search argument contract changes; the Python
 * loader refuses (and rebuilds) a stale binary whose ABI does not match. */
#define KERNEL_ABI_VERSION 1

#define MODE_TRADITIONAL 0
#define MODE_COLOR_STATE 1
#define MODE_MASK_EXPANDED 2

#define NUM_DIRECTIONS 6

/* ------------------------------------------------------------------ */
/* Binary min-heap over (f, counter) -- the prefix of the (f, counter,  */
/* node, g) tuples heapq compares; counter is unique, so the order is   */
/* total and any correct heap pops the same sequence heapq does.        */
/* ------------------------------------------------------------------ */

typedef struct {
    double f;
    long long counter;
    int node;
    double g;
} HeapEntry;

typedef struct {
    HeapEntry *items;
    Py_ssize_t size;
    Py_ssize_t capacity;
} Heap;

static int
heap_init(Heap *heap, Py_ssize_t capacity)
{
    heap->items = (HeapEntry *)malloc((size_t)capacity * sizeof(HeapEntry));
    heap->size = 0;
    heap->capacity = capacity;
    return heap->items == NULL ? -1 : 0;
}

static void
heap_free(Heap *heap)
{
    free(heap->items);
    heap->items = NULL;
    heap->size = heap->capacity = 0;
}

static inline int
entry_less(const HeapEntry *a, const HeapEntry *b)
{
    if (a->f != b->f) {
        return a->f < b->f;
    }
    return a->counter < b->counter;
}

static int
heap_push(Heap *heap, double f, long long counter, int node, double g)
{
    Py_ssize_t child, parent;
    HeapEntry entry;

    if (heap->size == heap->capacity) {
        Py_ssize_t grown = heap->capacity * 2;
        HeapEntry *items =
            (HeapEntry *)realloc(heap->items, (size_t)grown * sizeof(HeapEntry));
        if (items == NULL) {
            return -1;
        }
        heap->items = items;
        heap->capacity = grown;
    }
    entry.f = f;
    entry.counter = counter;
    entry.node = node;
    entry.g = g;
    child = heap->size++;
    while (child > 0) {
        parent = (child - 1) >> 1;
        if (!entry_less(&entry, &heap->items[parent])) {
            break;
        }
        heap->items[child] = heap->items[parent];
        child = parent;
    }
    heap->items[child] = entry;
    return 0;
}

static HeapEntry
heap_pop(Heap *heap)
{
    HeapEntry top = heap->items[0];
    HeapEntry last = heap->items[--heap->size];
    Py_ssize_t hole = 0, child;

    while ((child = 2 * hole + 1) < heap->size) {
        if (child + 1 < heap->size &&
            entry_less(&heap->items[child + 1], &heap->items[child])) {
            child += 1;
        }
        if (!entry_less(&heap->items[child], &last)) {
            break;
        }
        heap->items[hole] = heap->items[child];
        hole = child;
    }
    heap->items[hole] = last;
    return top;
}

/* ------------------------------------------------------------------ */
/* Search context: every pointer and scalar one run needs.             */
/* ------------------------------------------------------------------ */

typedef struct {
    /* Label buffers (exclusive to the calling SearchCore). */
    double *cost;
    int *aux;
    int *parent;
    long long *stamp;
    double *exp_cost;
    int *exp_aux;
    long long *exp_stamp;
    long long epoch;
    /* Read-only grid/cost tables. */
    const int *neighbor;
    const unsigned char *blocked;
    const double *base_costs;   /* num_layers * 6 */
    const double *congestion;   /* per vertex */
    const double *guide;        /* per vertex */
    const double *pressure;     /* 3 per vertex, or NULL */
    const int *owner;           /* per vertex, or NULL */
    const unsigned char *target_flags;
    /* Scalars. */
    int mode;
    int node_stride;
    int plane;
    int rows;
    double alpha;
    double via_cost;
    double improve_eps;
    double tie_eps;
    double stitch;
    double tolerance;
    int merge_aux;
    int use_bounds;
    int min_layer, max_layer, min_col, max_col, min_row, max_row;
    int accept_mode;
    int net_id;
    long long counter;
    Heap heap;
} SearchCtx;

/* A* lower bound -- the exact arithmetic of SearchCore._heuristic_table
 * and its scalar twin: alpha * (planar + dlayer * via_cost). */
static inline double
heur_of(const SearchCtx *ctx, int node)
{
    int vertex, layer, rem, col, row, dcol, drow, dlayer;

    if (!ctx->use_bounds) {
        return 0.0;
    }
    vertex = ctx->node_stride != 1 ? node / ctx->node_stride : node;
    layer = vertex / ctx->plane;
    rem = vertex % ctx->plane;
    col = rem / ctx->rows;
    row = rem % ctx->rows;
    dcol = ctx->min_col - col;
    if (dcol < 0) {
        dcol = 0;
    }
    if (col - ctx->max_col > dcol) {
        dcol = col - ctx->max_col;
    }
    drow = ctx->min_row - row;
    if (drow < 0) {
        drow = 0;
    }
    if (row - ctx->max_row > drow) {
        drow = row - ctx->max_row;
    }
    dlayer = ctx->min_layer - layer;
    if (dlayer < 0) {
        dlayer = 0;
    }
    if (layer - ctx->max_layer > dlayer) {
        dlayer = layer - ctx->max_layer;
    }
    return ctx->alpha * ((double)(dcol + drow) + (double)dlayer * ctx->via_cost);
}

/* One relaxation -- the exact body of SearchCore.run's buffered successor
 * loop (fresh label / strict improvement / equal-cost aux merge). */
static inline int
relax(SearchCtx *ctx, int succ, double g_new, int a_new, int node)
{
    double g_old;

    if (ctx->stamp[succ] != ctx->epoch) {
        ctx->stamp[succ] = ctx->epoch;
        ctx->cost[succ] = g_new;
        ctx->aux[succ] = a_new;
        ctx->parent[succ] = node;
        return heap_push(&ctx->heap, g_new + heur_of(ctx, succ), ctx->counter++,
                         succ, g_new);
    }
    g_old = ctx->cost[succ];
    if (g_new < g_old - ctx->improve_eps) {
        ctx->cost[succ] = g_new;
        ctx->aux[succ] = a_new;
        ctx->parent[succ] = node;
        return heap_push(&ctx->heap, g_new + heur_of(ctx, succ), ctx->counter++,
                         succ, g_new);
    }
    if (ctx->merge_aux && g_new <= g_old + ctx->tie_eps &&
        (a_new | ctx->aux[succ]) != ctx->aux[succ]) {
        ctx->aux[succ] |= a_new;
        if (ctx->exp_stamp[succ] == ctx->epoch) {
            return heap_push(&ctx->heap, g_old + heur_of(ctx, succ),
                             ctx->counter++, succ, g_old);
        }
    }
    return 0;
}

/* dr/maze make_traditional_expand: 6 grid moves at Cost_trad. */
static inline int
expand_traditional(SearchCtx *ctx, int node, double g)
{
    const double *base_row = ctx->base_costs + (size_t)(node / ctx->plane) * NUM_DIRECTIONS;
    size_t slot = (size_t)node * NUM_DIRECTIONS;
    int direction, succ;
    double step;

    for (direction = 0; direction < NUM_DIRECTIONS; direction++) {
        succ = ctx->neighbor[slot + direction];
        if (succ < 0 || ctx->blocked[succ]) {
            continue;
        }
        step = base_row[direction] + ctx->congestion[succ];
        step = step + ctx->guide[succ];
        if (relax(ctx, succ, g + ctx->alpha * step, 0, node) < 0) {
            return -1;
        }
    }
    return 0;
}

/* tpl/search make_color_state_expand: Alg. 2 lines 9-17 per direction. */
static inline int
expand_color_state(SearchCtx *ctx, int node, double g, int bits)
{
    const double *base_row = ctx->base_costs + (size_t)(node / ctx->plane) * NUM_DIRECTIONS;
    size_t slot = (size_t)node * NUM_DIRECTIONS;
    int direction, succ, nbits;
    double step, base_step, cost_red, cost_green, cost_blue, minimum, limit;
    size_t pressure_slot;

    for (direction = 0; direction < NUM_DIRECTIONS; direction++) {
        succ = ctx->neighbor[slot + direction];
        if (succ < 0 || ctx->blocked[succ]) {
            continue;
        }
        step = base_row[direction] + ctx->congestion[succ];
        step = step + ctx->guide[succ];
        base_step = ctx->alpha * step;

        pressure_slot = 3 * (size_t)succ;
        cost_red = base_step + ctx->pressure[pressure_slot];
        cost_green = base_step + ctx->pressure[pressure_slot + 1];
        cost_blue = base_step + ctx->pressure[pressure_slot + 2];
        if (direction < 4) { /* planar move: stitch for masks outside the state */
            if (!(bits & 0x4)) {
                cost_red += ctx->stitch;
            }
            if (!(bits & 0x2)) {
                cost_green += ctx->stitch;
            }
            if (!(bits & 0x1)) {
                cost_blue += ctx->stitch;
            }
        }
        minimum = cost_red <= cost_green ? cost_red : cost_green;
        if (cost_blue < minimum) {
            minimum = cost_blue;
        }
        limit = minimum + ctx->tolerance;
        nbits = (cost_red <= limit ? 0x4 : 0) | (cost_green <= limit ? 0x2 : 0) |
                (cost_blue <= limit ? 0x1 : 0);
        if (relax(ctx, succ, g + minimum, nbits, node) < 0) {
            return -1;
        }
    }
    return 0;
}

/* baselines/dac2012 MaskExpandedSearch._make_expand: 2 in-place mask
 * switches (a stitch on the expanded graph) then 6 moves keeping the mask,
 * each charged the mask's color conflict cost at the destination. */
static inline int
expand_mask_expanded(SearchCtx *ctx, int node, double g)
{
    int vertex = node / 3;
    int color = node % 3;
    int vertex_base = 3 * vertex;
    const double *base_row = ctx->base_costs + (size_t)(vertex / ctx->plane) * NUM_DIRECTIONS;
    size_t slot = (size_t)vertex * NUM_DIRECTIONS;
    int other, direction, succ;
    double step, g_new;

    for (other = 0; other < 3; other++) {
        if (other != color) {
            if (relax(ctx, vertex_base + other, g + ctx->stitch, 0, node) < 0) {
                return -1;
            }
        }
    }
    for (direction = 0; direction < NUM_DIRECTIONS; direction++) {
        succ = ctx->neighbor[slot + direction];
        if (succ < 0 || ctx->blocked[succ]) {
            continue;
        }
        step = base_row[direction] + ctx->congestion[succ];
        step = step + ctx->guide[succ];
        g_new = (g + ctx->alpha * step) + ctx->pressure[3 * (size_t)succ + color];
        if (relax(ctx, succ * 3 + color, g_new, 0, node) < 0) {
            return -1;
        }
    }
    return 0;
}

/* The relaxation loop proper; returns 0/-1 (OOM), reports through *out. */
static int
run_loop(SearchCtx *ctx, const int *seed_node, const int *seed_aux,
         Py_ssize_t num_seeds, Py_ssize_t max_expansions,
         int *reached_out, Py_ssize_t *expansions_out)
{
    Py_ssize_t seed, expansions = 0;
    int reached = -1;

    for (seed = 0; seed < num_seeds; seed++) {
        int node = seed_node[seed];
        ctx->cost[node] = 0.0;
        ctx->aux[node] = seed_aux[seed];
        ctx->parent[node] = -1;
        ctx->stamp[node] = ctx->epoch;
        if (heap_push(&ctx->heap, heur_of(ctx, node), ctx->counter++, node, 0.0) < 0) {
            return -1;
        }
    }

    while (ctx->heap.size > 0) {
        HeapEntry entry = heap_pop(&ctx->heap);
        int node = entry.node;
        double g_cur = ctx->cost[node];
        int a_cur;

        if (entry.g - g_cur > ctx->improve_eps) {
            continue; /* stale entry superseded by a strict improvement */
        }
        a_cur = ctx->aux[node];
        if (ctx->exp_stamp[node] == ctx->epoch && ctx->exp_cost[node] == g_cur &&
            ctx->exp_aux[node] == a_cur) {
            continue; /* already expanded with this exact label */
        }
        ctx->exp_stamp[node] = ctx->epoch;
        ctx->exp_cost[node] = g_cur;
        ctx->exp_aux[node] = a_cur;
        expansions += 1;
        if (ctx->target_flags[node]) {
            int accepted = 1;
            if (ctx->accept_mode == 1) {
                /* maze's occupied-target rule: reject vertices another
                 * net's metal already owns (grid.is_occupied_by_other). */
                int holder = ctx->owner[node];
                accepted = !(holder != 0 && holder != ctx->net_id);
            }
            if (accepted) {
                reached = node;
                break;
            }
        }
        if (expansions > max_expansions) {
            break;
        }
        switch (ctx->mode) {
        case MODE_TRADITIONAL:
            if (expand_traditional(ctx, node, g_cur) < 0) {
                return -1;
            }
            break;
        case MODE_COLOR_STATE:
            if (expand_color_state(ctx, node, g_cur, a_cur) < 0) {
                return -1;
            }
            break;
        default:
            if (expand_mask_expanded(ctx, node, g_cur) < 0) {
                return -1;
            }
            break;
        }
    }
    *reached_out = reached;
    *expansions_out = expansions;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Python binding                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_buffer view;
    int held;
} BufferSlot;

static int
acquire(PyObject *obj, BufferSlot *slot, int writable, void **ptr)
{
    slot->held = 0;
    if (obj == Py_None) {
        *ptr = NULL;
        return 0;
    }
    if (PyObject_GetBuffer(obj, &slot->view,
                           writable ? PyBUF_WRITABLE : PyBUF_SIMPLE) < 0) {
        return -1;
    }
    slot->held = 1;
    *ptr = slot->view.buf;
    return 0;
}

static PyObject *
run_search(PyObject *self, PyObject *args)
{
    SearchCtx ctx;
    PyObject *cost_obj, *aux_obj, *parent_obj, *stamp_obj;
    PyObject *exp_cost_obj, *exp_aux_obj, *exp_stamp_obj;
    PyObject *seed_node_obj, *seed_aux_obj, *flags_obj;
    PyObject *owner_obj, *neighbor_obj, *blocked_obj, *base_obj;
    PyObject *congestion_obj, *guide_obj, *pressure_obj;
    Py_ssize_t num_nodes, num_seeds, max_expansions, expansions = 0;
    int reached = -1, status = 0, i;
    BufferSlot slots[17];
    void *ptrs[17];
    const int *seed_node = NULL, *seed_aux = NULL;

    memset(&ctx, 0, sizeof(ctx));
    if (!PyArg_ParseTuple(
            args,
            "ini"      /* mode, num_nodes, node_stride */
            "OOOO"     /* cost, aux, parent, stamp */
            "OOO"      /* exp_cost, exp_aux, exp_stamp */
            "L"        /* epoch */
            "OOn"      /* seed_node, seed_aux, num_seeds */
            "O"        /* target_flags */
            "iiiiiii"  /* use_bounds, min/max layer, col, row */
            "dd"       /* alpha, via_cost */
            "ii"       /* plane, rows */
            "dd"       /* improve_eps, tie_eps */
            "in"       /* merge_aux, max_expansions */
            "iOi"      /* accept_mode, owner, net_id */
            "OO"       /* neighbor, blocked */
            "OOOO"     /* base_costs, congestion, guide, pressure */
            "dd",      /* stitch, tolerance */
            &ctx.mode, &num_nodes, &ctx.node_stride,
            &cost_obj, &aux_obj, &parent_obj, &stamp_obj,
            &exp_cost_obj, &exp_aux_obj, &exp_stamp_obj,
            &ctx.epoch,
            &seed_node_obj, &seed_aux_obj, &num_seeds,
            &flags_obj,
            &ctx.use_bounds, &ctx.min_layer, &ctx.max_layer, &ctx.min_col,
            &ctx.max_col, &ctx.min_row, &ctx.max_row,
            &ctx.alpha, &ctx.via_cost,
            &ctx.plane, &ctx.rows,
            &ctx.improve_eps, &ctx.tie_eps,
            &ctx.merge_aux, &max_expansions,
            &ctx.accept_mode, &owner_obj, &ctx.net_id,
            &neighbor_obj, &blocked_obj,
            &base_obj, &congestion_obj, &guide_obj, &pressure_obj,
            &ctx.stitch, &ctx.tolerance)) {
        return NULL;
    }

    {
        PyObject *objects[17] = {
            cost_obj, aux_obj, parent_obj, stamp_obj,
            exp_cost_obj, exp_aux_obj, exp_stamp_obj,
            seed_node_obj, seed_aux_obj, flags_obj,
            owner_obj, neighbor_obj, blocked_obj,
            base_obj, congestion_obj, guide_obj, pressure_obj,
        };
        int writable[17] = {1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
        for (i = 0; i < 17; i++) {
            if (acquire(objects[i], &slots[i], writable[i], &ptrs[i]) < 0) {
                while (--i >= 0) {
                    if (slots[i].held) {
                        PyBuffer_Release(&slots[i].view);
                    }
                }
                return NULL;
            }
        }
    }
    ctx.cost = (double *)ptrs[0];
    ctx.aux = (int *)ptrs[1];
    ctx.parent = (int *)ptrs[2];
    ctx.stamp = (long long *)ptrs[3];
    ctx.exp_cost = (double *)ptrs[4];
    ctx.exp_aux = (int *)ptrs[5];
    ctx.exp_stamp = (long long *)ptrs[6];
    seed_node = (const int *)ptrs[7];
    seed_aux = (const int *)ptrs[8];
    ctx.target_flags = (const unsigned char *)ptrs[9];
    ctx.owner = (const int *)ptrs[10];
    ctx.neighbor = (const int *)ptrs[11];
    ctx.blocked = (const unsigned char *)ptrs[12];
    ctx.base_costs = (const double *)ptrs[13];
    ctx.congestion = (const double *)ptrs[14];
    ctx.guide = (const double *)ptrs[15];
    ctx.pressure = (const double *)ptrs[16];

    if (heap_init(&ctx.heap, num_seeds > 256 ? num_seeds : 256) < 0) {
        status = -1;
    }
    else {
        Py_BEGIN_ALLOW_THREADS
        status = run_loop(&ctx, seed_node, seed_aux, num_seeds, max_expansions,
                          &reached, &expansions);
        Py_END_ALLOW_THREADS
        heap_free(&ctx.heap);
    }

    for (i = 0; i < 17; i++) {
        if (slots[i].held) {
            PyBuffer_Release(&slots[i].view);
        }
    }
    if (status < 0) {
        return PyErr_NoMemory();
    }
    return Py_BuildValue("in", reached, expansions);
}

static PyMethodDef relaxation_methods[] = {
    {"run_search", run_search, METH_VARARGS,
     "Run one compiled multi-source Dijkstra/A* search over flat buffers."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef relaxation_module = {
    PyModuleDef_HEAD_INIT,
    "_relaxation",
    "Compiled relaxation kernel behind repro.search.SearchCore.run.",
    -1,
    relaxation_methods,
};

PyMODINIT_FUNC
PyInit__relaxation(void)
{
    PyObject *module = PyModule_Create(&relaxation_module);
    if (module == NULL) {
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "KERNEL_ABI_VERSION",
                                KERNEL_ABI_VERSION) < 0 ||
        PyModule_AddIntConstant(module, "MODE_TRADITIONAL", MODE_TRADITIONAL) < 0 ||
        PyModule_AddIntConstant(module, "MODE_COLOR_STATE", MODE_COLOR_STATE) < 0 ||
        PyModule_AddIntConstant(module, "MODE_MASK_EXPANDED", MODE_MASK_EXPANDED) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
