"""Build machinery for the compiled kernels.

The package carries two extensions, each a single C file with no
dependencies beyond the Python headers, so a build is one compiler
invocation -- done either ahead of time (``python setup.py build_ext
--inplace``, ``scripts/build_native.py``, the CI matrix) or lazily on
first import by :func:`repro.native.load_kernel` /
:func:`repro.native.load_check_kernel` when a compiler is present:

* ``_relaxation`` -- the Dijkstra/A* relaxation inner loop;
* ``_checkwork`` -- the incremental-check dirty-vertex neighborhood scan.

The compile uses the interpreter's own toolchain configuration
(``sysconfig``) with fused multiply-add contraction disabled
(``-ffp-contract=off``): the relaxation kernel's bit-exactness contract
requires every floating-point operation to round exactly as the
interpreted loop does, and an FMA contracts two of those roundings into
one (``_checkwork`` is integer-only, but shares the flags so both builds
stay one code path).

The binary lands next to the source inside the package when that directory
is writable (the dev/CI layout); read-only installs fall back to a per-user
cache directory, which the loaders also probe.
"""

from __future__ import annotations

import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import List, Optional

#: Module name of the compiled relaxation (search) kernel.
EXTENSION_NAME = "_relaxation"

#: Module name of the compiled incremental-check scan kernel.
CHECK_EXTENSION_NAME = "_checkwork"

#: Every compiled unit the package carries.
ALL_EXTENSION_NAMES = (EXTENSION_NAME, CHECK_EXTENSION_NAME)


class NativeBuildError(RuntimeError):
    """Raised when a kernel cannot be compiled (no compiler, bad flags...)."""


def extension_filename(name: str = EXTENSION_NAME) -> str:
    """Return the platform binary filename (``<name>.cpython-*.so``)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return name + suffix


def source_path(name: str = EXTENSION_NAME) -> str:
    """Return the absolute path of the kernel's C source."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), name + ".c")


def package_target(name: str = EXTENSION_NAME) -> str:
    """Return the in-package build target path (preferred location)."""
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)), extension_filename(name)
    )


def cache_target(name: str = EXTENSION_NAME) -> str:
    """Return the fallback build target for read-only package directories.

    Scoped per user, interpreter tag and ABI so unrelated environments
    never pick up each other's binaries.
    """
    try:
        scope = f"uid{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-POSIX
        scope = "user"
    tag = f"repro-native-{scope}-py{sys.version_info[0]}.{sys.version_info[1]}"
    return os.path.join(tempfile.gettempdir(), tag, extension_filename(name))


def candidate_paths(name: str = EXTENSION_NAME) -> List[str]:
    """Return every path the loader should probe for a built kernel."""
    return [package_target(name), cache_target(name)]


def _compiler_command(target: str, name: str) -> List[str]:
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    command = cc.split()
    command += ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]
    include = sysconfig.get_paths().get("include")
    if include:
        command += ["-I", include]
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        command += ["-undefined", "dynamic_lookup"]
    command += [source_path(name), "-o", target]
    return command


def build_extension(target: Optional[str] = None, name: str = EXTENSION_NAME) -> str:
    """Compile the *name* kernel and return the binary's path.

    Writes to a temporary file first and renames atomically, so concurrent
    builders (parallel pytest workers, forked pool workers racing on a cold
    cache) never import a half-written binary.  Raises
    :class:`NativeBuildError` on any failure.
    """
    source = source_path(name)
    if not os.path.exists(source):
        raise NativeBuildError(f"kernel source missing: {source}")
    if target is None:
        target = package_target(name)
        if not os.access(os.path.dirname(target), os.W_OK):
            target = cache_target(name)
    directory = os.path.dirname(target)
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise NativeBuildError(f"cannot create build directory {directory}: {exc}")
    staging = target + f".build-{os.getpid()}"
    command = _compiler_command(staging, name)
    try:
        completed = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=300,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"compiler invocation failed: {exc}")
    if completed.returncode != 0:
        output = completed.stdout.decode(errors="replace") if completed.stdout else ""
        raise NativeBuildError(
            f"compiler exited with {completed.returncode}: {' '.join(command)}\n{output}"
        )
    try:
        os.replace(staging, target)
    except OSError as exc:
        raise NativeBuildError(f"cannot move built kernel into place: {exc}")
    return target
