"""Build machinery for the compiled relaxation kernel.

The extension is a single C file with no dependencies beyond the Python
headers, so the build is one compiler invocation -- done either ahead of
time (``python setup.py build_ext --inplace``, ``scripts/build_native.py``,
the CI matrix) or lazily on first import by :func:`repro.native.load_kernel`
when a compiler is present.

The compile uses the interpreter's own toolchain configuration
(``sysconfig``) with fused multiply-add contraction disabled
(``-ffp-contract=off``): the kernel's bit-exactness contract requires every
floating-point operation to round exactly as the interpreted loop does, and
an FMA contracts two of those roundings into one.

The binary lands next to the source inside the package when that directory
is writable (the dev/CI layout); read-only installs fall back to a per-user
cache directory, which :func:`repro.native.load_kernel` also probes.
"""

from __future__ import annotations

import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import List, Optional

#: Module name of the compiled kernel inside ``repro.native``.
EXTENSION_NAME = "_relaxation"


class NativeBuildError(RuntimeError):
    """Raised when the kernel cannot be compiled (no compiler, bad flags...)."""


def extension_filename() -> str:
    """Return the platform binary filename (``_relaxation.cpython-*.so``)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return EXTENSION_NAME + suffix


def source_path() -> str:
    """Return the absolute path of the kernel's C source."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), EXTENSION_NAME + ".c")


def package_target() -> str:
    """Return the in-package build target path (preferred location)."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), extension_filename())


def cache_target() -> str:
    """Return the fallback build target for read-only package directories.

    Scoped per user, interpreter tag and ABI so unrelated environments
    never pick up each other's binaries.
    """
    try:
        scope = f"uid{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-POSIX
        scope = "user"
    tag = f"repro-native-{scope}-py{sys.version_info[0]}.{sys.version_info[1]}"
    return os.path.join(tempfile.gettempdir(), tag, extension_filename())


def candidate_paths() -> List[str]:
    """Return every path the loader should probe for a built kernel."""
    return [package_target(), cache_target()]


def _compiler_command(target: str) -> List[str]:
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    command = cc.split()
    command += ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]
    include = sysconfig.get_paths().get("include")
    if include:
        command += ["-I", include]
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        command += ["-undefined", "dynamic_lookup"]
    command += [source_path(), "-o", target]
    return command


def build_extension(target: Optional[str] = None) -> str:
    """Compile the kernel and return the binary's path.

    Writes to a temporary file first and renames atomically, so concurrent
    builders (parallel pytest workers, forked pool workers racing on a cold
    cache) never import a half-written binary.  Raises
    :class:`NativeBuildError` on any failure.
    """
    source = source_path()
    if not os.path.exists(source):
        raise NativeBuildError(f"kernel source missing: {source}")
    if target is None:
        target = package_target()
        if not os.access(os.path.dirname(target), os.W_OK):
            target = cache_target()
    directory = os.path.dirname(target)
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise NativeBuildError(f"cannot create build directory {directory}: {exc}")
    staging = target + f".build-{os.getpid()}"
    command = _compiler_command(staging)
    try:
        completed = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=300,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"compiler invocation failed: {exc}")
    if completed.returncode != 0:
        output = completed.stdout.decode(errors="replace") if completed.stdout else ""
        raise NativeBuildError(
            f"compiler exited with {completed.returncode}: {' '.join(command)}\n{output}"
        )
    try:
        os.replace(staging, target)
    except OSError as exc:
        raise NativeBuildError(f"cannot move built kernel into place: {exc}")
    return target
