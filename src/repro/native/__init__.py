"""Optional compiled kernels (the top acceleration tiers).

The package holds the C sources of the two hot inner loops -- the
Dijkstra/A* relaxation loop (``_relaxation.c``, PR 6) and the
incremental-check dirty-vertex neighborhood scan (``_checkwork.c``) --
the build machinery (:mod:`repro.native.build`) and the runtime loaders.
Nothing here is required: when an extension is absent and cannot be
built, its loader returns ``None`` and the callers keep running on the
buffered-Python tiers, bit-identically.

Loading order (per extension):

1. import the extension from the package directory (the ``build_ext
   --inplace`` / wheel layout);
2. probe the per-user cache directory (read-only installs build there);
3. unless auto-build is disabled (``REPRO_NATIVE_AUTOBUILD=0``), compile
   the source once with the interpreter's own toolchain and import the
   result.

A loaded binary is accepted only when its ``KERNEL_ABI_VERSION`` matches
this checkout's expectation; a stale binary (older checkout, changed
argument contract) triggers one rebuild attempt and is otherwise
rejected.  Every outcome is cached for the process lifetime -- a missing
compiler costs one failed probe per process per extension, not one per
call.

Tier *selection* (env overrides, runtime toggles, interplay with the numpy
gate) lives in :mod:`repro.accel`; this module only answers "is there a
usable binary?".
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from typing import Dict, Optional

from repro.native.build import (
    ALL_EXTENSION_NAMES,
    CHECK_EXTENSION_NAME,
    EXTENSION_NAME,
    NativeBuildError,
    build_extension,
    candidate_paths,
    package_target,
    source_path,
)
from repro.utils.env import env_flag

#: The argument contract of ``_relaxation.run_search`` this checkout's
#: Python wrapper speaks; must match the binary's ``KERNEL_ABI_VERSION``.
EXPECTED_ABI_VERSION = 1

#: The argument contract of ``_checkwork.scan_hits``.
EXPECTED_CHECK_ABI_VERSION = 1

#: Auto-build gate: on by default, ``REPRO_NATIVE_AUTOBUILD=0`` restricts
#: the loaders to pre-built binaries.
AUTOBUILD_ENV = "REPRO_NATIVE_AUTOBUILD"


class _LoaderState:
    """Per-extension cached load outcome (module, attempted, error)."""

    __slots__ = ("kernel", "attempted", "error")

    def __init__(self) -> None:
        self.kernel: Optional[object] = None
        self.attempted = False
        self.error: Optional[str] = None


_states: Dict[str, _LoaderState] = {name: _LoaderState() for name in ALL_EXTENSION_NAMES}


def _import_from(path: str, name: str) -> Optional[object]:
    """Import a built kernel binary from an explicit *path*, or ``None``."""
    if not os.path.exists(path):
        return None
    module_name = f"repro.native.{name}"
    try:
        if path == package_target(name):
            # The canonical location imports as a normal submodule (keeps
            # pickling/fork semantics boring).
            importlib.invalidate_caches()
            return importlib.import_module(module_name)
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    except ImportError:
        return None


def _expected_abi(name: str) -> int:
    # Read through the module globals at call time so the test suites can
    # monkeypatch the expectations.
    if name == CHECK_EXTENSION_NAME:
        return EXPECTED_CHECK_ABI_VERSION
    return EXPECTED_ABI_VERSION


def _abi_ok(module: object, name: str) -> bool:
    return getattr(module, "KERNEL_ABI_VERSION", None) == _expected_abi(name)


def _load(name: str) -> Optional[object]:
    state = _states[name]
    if state.attempted:
        return state.kernel
    state.attempted = True

    for path in candidate_paths(name):
        module = _import_from(path, name)
        if module is not None:
            if _abi_ok(module, name):
                state.kernel = module
                return state.kernel
            state.error = f"stale kernel ABI at {path}"
            break  # stale binary: fall through to a rebuild attempt

    if not env_flag(AUTOBUILD_ENV, True):
        if state.error is None:
            state.error = "no pre-built kernel and auto-build disabled"
        return None
    try:
        built = build_extension(name=name)
    except NativeBuildError as exc:
        state.error = str(exc)
        return None
    module = _import_from(built, name)
    if module is not None and _abi_ok(module, name):
        state.kernel = module
        return state.kernel
    state.error = f"freshly built kernel unusable at {built}"
    return None


def load_kernel() -> Optional[object]:
    """Return the compiled relaxation kernel, or ``None`` when unavailable.

    The first call does the real work (probe, optionally build); the
    outcome -- either way -- is cached for the process lifetime.
    :func:`reset_loader_state` un-caches it (tests only).
    """
    return _load(EXTENSION_NAME)


def load_check_kernel() -> Optional[object]:
    """Return the compiled check-scan kernel, or ``None`` when unavailable.

    Same probe/build/cache discipline as :func:`load_kernel`, applied to
    ``repro.native._checkwork``.
    """
    return _load(CHECK_EXTENSION_NAME)


def kernel_load_error(name: str = EXTENSION_NAME) -> Optional[str]:
    """Return why the last load attempt of *name* yielded no kernel."""
    return _states[name].error


def reset_loader_state() -> None:
    """Forget every cached load outcome so the next calls probe again.

    Test hook: the forced-fallback suites flip environments and need the
    loaders to re-evaluate.
    """
    for state in _states.values():
        state.kernel = None
        state.attempted = False
        state.error = None


__all__ = [
    "ALL_EXTENSION_NAMES",
    "AUTOBUILD_ENV",
    "CHECK_EXTENSION_NAME",
    "EXPECTED_ABI_VERSION",
    "EXPECTED_CHECK_ABI_VERSION",
    "EXTENSION_NAME",
    "NativeBuildError",
    "build_extension",
    "candidate_paths",
    "kernel_load_error",
    "load_check_kernel",
    "load_kernel",
    "reset_loader_state",
    "source_path",
]
