"""Optional compiled relaxation kernel (the top acceleration tier).

The package holds the C source of the Dijkstra/A* inner loop
(``_relaxation.c``), the build machinery (:mod:`repro.native.build`) and
the runtime loader.  Nothing here is required: when the extension is
absent and cannot be built, :func:`load_kernel` returns ``None`` and the
engines keep running on the buffered-Python tier, bit-identically.

Loading order:

1. import the extension from the package directory (the ``build_ext
   --inplace`` / wheel layout);
2. probe the per-user cache directory (read-only installs build there);
3. unless auto-build is disabled (``REPRO_NATIVE_AUTOBUILD=0``), compile
   the source once with the interpreter's own toolchain and import the
   result.

A loaded binary is accepted only when its ``KERNEL_ABI_VERSION`` matches
this checkout's :data:`EXPECTED_ABI_VERSION`; a stale binary (older
checkout, changed argument contract) triggers one rebuild attempt and is
otherwise rejected.  Every outcome is cached for the process lifetime --
a missing compiler costs one failed probe per process, not one per search.

Tier *selection* (env overrides, runtime toggles, interplay with the numpy
gate) lives in :mod:`repro.accel`; this module only answers "is there a
usable binary?".
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from typing import Optional

from repro.native.build import (
    NativeBuildError,
    build_extension,
    candidate_paths,
    package_target,
    source_path,
)
from repro.utils.env import env_flag

#: The argument contract of ``_relaxation.run_search`` this checkout's
#: Python wrapper speaks; must match the binary's ``KERNEL_ABI_VERSION``.
EXPECTED_ABI_VERSION = 1

#: Auto-build gate: on by default, ``REPRO_NATIVE_AUTOBUILD=0`` restricts
#: the loader to pre-built binaries.
AUTOBUILD_ENV = "REPRO_NATIVE_AUTOBUILD"

_kernel: Optional[object] = None
_load_attempted = False
_load_error: Optional[str] = None


def _import_from(path: str) -> Optional[object]:
    """Import a built kernel binary from an explicit *path*, or ``None``."""
    if not os.path.exists(path):
        return None
    try:
        if path == package_target():
            # The canonical location imports as a normal submodule (keeps
            # pickling/fork semantics boring).
            importlib.invalidate_caches()
            return importlib.import_module("repro.native._relaxation")
        spec = importlib.util.spec_from_file_location("repro.native._relaxation", path)
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    except ImportError:
        return None


def _abi_ok(module: object) -> bool:
    return getattr(module, "KERNEL_ABI_VERSION", None) == EXPECTED_ABI_VERSION


def load_kernel() -> Optional[object]:
    """Return the compiled kernel module, or ``None`` when unavailable.

    The first call does the real work (probe, optionally build); the
    outcome -- either way -- is cached for the process lifetime.
    :func:`reset_loader_state` un-caches it (tests only).
    """
    global _kernel, _load_attempted, _load_error
    if _load_attempted:
        return _kernel
    _load_attempted = True

    for path in candidate_paths():
        module = _import_from(path)
        if module is not None:
            if _abi_ok(module):
                _kernel = module
                return _kernel
            _load_error = f"stale kernel ABI at {path}"
            break  # stale binary: fall through to a rebuild attempt

    if not env_flag(AUTOBUILD_ENV, True):
        if _load_error is None:
            _load_error = "no pre-built kernel and auto-build disabled"
        return None
    try:
        built = build_extension()
    except NativeBuildError as exc:
        _load_error = str(exc)
        return None
    module = _import_from(built)
    if module is not None and _abi_ok(module):
        _kernel = module
        return _kernel
    _load_error = f"freshly built kernel unusable at {built}"
    return None


def kernel_load_error() -> Optional[str]:
    """Return why the last load attempt yielded no kernel (diagnostics)."""
    return _load_error


def reset_loader_state() -> None:
    """Forget the cached load outcome so the next call probes again.

    Test hook: the forced-fallback suites flip environments and need the
    loader to re-evaluate.
    """
    global _kernel, _load_attempted, _load_error
    _kernel = None
    _load_attempted = False
    _load_error = None


__all__ = [
    "AUTOBUILD_ENV",
    "EXPECTED_ABI_VERSION",
    "NativeBuildError",
    "build_extension",
    "candidate_paths",
    "kernel_load_error",
    "load_kernel",
    "reset_loader_state",
    "source_path",
]
