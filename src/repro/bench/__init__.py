"""Benchmark workloads.

The ISPD 2018/2019 contest benchmarks the paper evaluates on are hundreds of
megabytes of LEF/DEF and far beyond what a pure-Python router can turn
around, so this package generates *synthetic ISPD-like* cases instead (see
DESIGN.md section 4 for the substitution argument): row-placed standard
cells, multi-pin nets with locality, macros and obstacles, and contest-style
design rules.  Two suites mirror the two experiment tables:

* :func:`ispd18_suite` -- ten cases of increasing size/density for the
  Table II router-vs-router comparison,
* :func:`ispd19_suite` -- ten denser cases with tighter color spacing (the
  "advanced rules" regime) for the Table III decomposition comparison.

:mod:`repro.bench.micro` holds the hand-crafted Fig. 1 / Fig. 3 layouts.
"""

from repro.bench.synthetic import SyntheticSpec, generate_design
from repro.bench.suites import ispd18_suite, ispd19_suite, suite_case, SuiteCase
from repro.bench.micro import fig1_dense_cluster, fig1_multi_pin_net, fig3_walkthrough_design

__all__ = [
    "SyntheticSpec",
    "generate_design",
    "ispd18_suite",
    "ispd19_suite",
    "suite_case",
    "SuiteCase",
    "fig1_dense_cluster",
    "fig1_multi_pin_net",
    "fig3_walkthrough_design",
]
