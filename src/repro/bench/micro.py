"""Hand-crafted micro layouts mirroring the paper's figures, plus the
search-engine micro-benchmarks.

Micro layouts:

* :func:`fig1_dense_cluster` -- four closely spaced nets whose patterns
  cannot all receive different masks once routed without care: the scenario
  of Fig. 1(a)/(b) where layout decomposition hits an unsolvable conflict.
* :func:`fig1_multi_pin_net` -- one 4-pin net surrounded by pre-colored
  metal: the scenario of Fig. 1(c)/(d) where a 2-pin TPL router sprays
  stitches across the net while a multi-pin-aware router does not.
* :func:`fig3_walkthrough_design` -- the Fig. 3 walk-through: a 4-pin net
  with two fixed obstacles on mask 2 and mask 3 forcing the color state of
  the routed path to narrow from ``111`` to ``101`` to ``100``.

Engine micro-benchmarks:

:func:`run_engine_benchmarks` routes synthetic ISPD-like suite cases (the
ispd18 sweep plus the denser :data:`DENSE_CASES` ispd19-like appendix)
through each router with both engine generations -- the frozen legacy
``GridPoint``-dict search engines (:mod:`repro.search.legacy`) and the
flat-index :class:`repro.search.SearchCore` adapters -- verifying the two
produce bit-identical solutions and reporting the wall-clock speedup.
``--repeat N`` routes each case N times per engine and reports the median,
and the emitted JSON records the repeat count and numpy availability so a
recorded baseline documents the configuration that produced it.

:func:`run_native_kernel_benchmarks` (``--native``) benchmarks the
compiled relaxation kernel (:mod:`repro.native`) against the buffered
flat-label loop with the kernel forced off, asserting bit-identical
solutions and recording the tier actually active per leg (baseline:
``BENCH_native_kernel.json``).  Any benchmark mode runs under cProfile
with ``--profile N`` (top-N cumulative functions printed, raw stats
dumped next to the JSON output).

:func:`run_incremental_check_benchmarks` (``--incremental``) replays the
rip-up loop's check workload and times the :mod:`repro.check` delta tallies
against the full-scan ``DRCChecker``/``ConflictChecker`` oracle, asserting
identical reports (baseline: ``BENCH_incremental_check.json``).

:func:`run_batch_sched_benchmarks` (``--batched``) routes every case both
through the plain sequential loop and through the :mod:`repro.sched`
disjoint-batch executor (``--parallelism`` / ``--backend``, which accepts a
comma-separated backend list including the persistent journal-replicated
``pool``; ``--min-fork-batch`` / ``--margin-cells`` expose the tuning
knobs), asserting the batched solutions are bit-identical and recording per
backend the wall-clock ratio plus the executor's full stats (speculation,
fork and journal-replay counters) and the host ``cpu_count`` (baseline:
``BENCH_batch_sched.json``).  Beyond the dense ispd-like sweep the batched
run appends the production-shaped :data:`SPARSE_CASES`, whose small
net-span/die ratios let batches actually grow toward the parallelism cap.

:func:`run_autotune_benchmarks` (``--autotune``) benchmarks the
self-tuning scheduler (:mod:`repro.sched.autotune`) against static
configurations on the batch-engaging sparse cases: serial baseline,
static thread/pool legs, a thread-backend native-scaling sweep at 1/2/4
workers recording ``cpu_count`` and the active kernel tier per leg, and
the autotuned ``batch_backend="auto"`` + ``autotune="full"`` leg whose
row records the calibration profile, the controller's per-iteration
decision log and the wall-clock ratio against the best static leg
(baseline: ``BENCH_autotune.json``).

:func:`run_checkpoint_benchmarks` (``--checkpoint``) checkpoints a full
Mr.TPL campaign both as the complete journal op log and as the
checkpoint-v2 snapshot-folded document, restores each through
``checkpoint_from_dict`` asserting the rebuilt grids state-identical, and
records document sizes, op counts and restore wall-clocks (baseline:
``BENCH_checkpoint.json``).

``python -m repro.bench.micro`` writes either result set as a
``BENCH_*.json`` perf baseline so CI and future PRs can track regressions.
"""

from __future__ import annotations

import json
import os
import time
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.accel import (
    active_check_tier,
    active_search_tier,
    check_native_available,
    have_numpy,
    native_available,
    numpy_enabled,
    set_check_scan_enabled,
    set_native_enabled,
    set_numpy_enabled,
)
from repro.profiling import PHASE_NAMES, global_phase_delta, global_phase_snapshot
from repro.design import Design, Net, Obstacle, Pin
from repro.geometry import Point, Rect
from repro.tech import DesignRules, make_default_tech
from repro.utils.env import env_float

#: Default suite scale of the micro-benchmarks; overridable through the
#: ``REPRO_BENCH_SCALE`` environment knob shared with ``benchmarks/``.
DEFAULT_BENCH_SCALE = 0.7

#: Extra denser cases appended to the engine benchmark beyond the ispd18
#: sweep: one ispd19-like case (tighter color spacing regime, more nets).
DENSE_CASES: Tuple[Tuple[str, int], ...] = (("ispd19", 4),)

#: Production-shaped sparse cases appended to the batched benchmark: small
#: net-span/die ratios, so disjoint batches actually grow toward the
#: executor's ``parallelism`` cap (the ispd18/19-like cases are too dense
#: for that -- their mean batch size saturates around 1.5-3).
SPARSE_CASES: Tuple[Tuple[str, int], ...] = (("sparse", 1), ("sparse", 2), ("sparse", 3))


def default_bench_scale() -> float:
    """Return the suite scale factor (``REPRO_BENCH_SCALE`` env override)."""
    return env_float("REPRO_BENCH_SCALE", DEFAULT_BENCH_SCALE)


def _port(name: str, layer: int, x: int, y: int, half: int = 1) -> Pin:
    """Return a square top-level port pin centred on ``(x, y)``."""
    pin = Pin(name=name)
    pin.add_shape(layer, Rect(x - half, y - half, x + half, y + half))
    return pin


def _micro_design(name: str, size: int = 64, color_spacing: int = 8, num_layers: int = 3) -> Design:
    rules = DesignRules(color_spacing=color_spacing, min_spacing=1, wire_width=1)
    tech = make_default_tech(
        num_layers=num_layers, pitch=4, color_spacing=color_spacing, rules=rules
    )
    return Design(name=name, tech=tech, die_area=Rect(0, 0, size, size))


def fig1_dense_cluster() -> Design:
    """Return the Fig. 1(a) scenario: four mutually close patterns.

    Four 2-pin nets are forced through a narrow corridor so their wires end
    up pairwise closer than ``Dcolor``.  A decomposer that may not move the
    wires cannot 3-color four mutually conflicting patterns; a TPL-aware
    router spreads them (or pays a stitch) instead.
    """
    design = _micro_design("fig1_dense_cluster", size=64, color_spacing=8)
    # A corridor bounded by blockages on the first two layers squeezes the
    # four nets together in the middle of the die.
    design.add_obstacle(Obstacle(layer=0, rect=Rect(0, 24, 24, 40), name="wall_left"))
    design.add_obstacle(Obstacle(layer=0, rect=Rect(40, 24, 64, 40), name="wall_right"))
    design.add_obstacle(Obstacle(layer=1, rect=Rect(0, 24, 24, 40), name="wall_left_m2"))
    design.add_obstacle(Obstacle(layer=1, rect=Rect(40, 24, 64, 40), name="wall_right_m2"))
    for index in range(4):
        x = 26 + index * 4
        net = Net(name=f"pair_{index}")
        net.add_pin(_port(f"pair_{index}_s", 0, x, 8))
        net.add_pin(_port(f"pair_{index}_t", 0, x, 56))
        design.add_net(net)
    return design


def fig1_multi_pin_net() -> Design:
    """Return the Fig. 1(c) scenario: one 4-pin net amid pre-colored metal.

    The pre-colored obstacles force parts of the net onto specific masks; a
    2-pin router commits each branch's color independently and pays stitches
    at the junctions, while the multi-pin color-state search agrees on masks
    across the whole tree.
    """
    design = _micro_design("fig1_multi_pin_net", size=64, color_spacing=8)
    design.add_obstacle(Obstacle(layer=0, rect=Rect(20, 18, 32, 22), name="fixed_green", color=1))
    design.add_obstacle(Obstacle(layer=0, rect=Rect(36, 40, 48, 44), name="fixed_blue", color=2))
    net = Net(name="multi4")
    net.add_pin(_port("p1", 0, 8, 8))
    net.add_pin(_port("p2", 0, 56, 8))
    net.add_pin(_port("p3", 0, 8, 56))
    net.add_pin(_port("p4", 0, 56, 56))
    design.add_net(net)
    # Two short neighbour nets add color pressure around the junctions.
    neighbour_a = Net(name="nbr_a")
    neighbour_a.add_pin(_port("na_s", 0, 24, 28))
    neighbour_a.add_pin(_port("na_t", 0, 40, 28))
    design.add_net(neighbour_a)
    neighbour_b = Net(name="nbr_b")
    neighbour_b.add_pin(_port("nb_s", 0, 24, 36))
    neighbour_b.add_pin(_port("nb_t", 0, 40, 36))
    design.add_net(neighbour_b)
    return design


def fig3_walkthrough_design() -> Design:
    """Return the Fig. 3 walk-through case.

    A single 4-pin net must route past two fixed shapes assigned to mask 2
    (green) and mask 3 (blue).  Passing the green shape removes green from
    the path's color state (``111`` -> ``101``); passing the blue shape then
    removes blue (``101`` -> ``100``), so the backtrace must finally place the
    affected segments on mask 1 (red), exactly as in the paper's example.
    """
    design = _micro_design("fig3_walkthrough", size=48, color_spacing=8, num_layers=2)
    design.add_obstacle(Obstacle(layer=0, rect=Rect(14, 20, 22, 24), name="mask2_shape", color=1))
    design.add_obstacle(Obstacle(layer=0, rect=Rect(30, 20, 38, 24), name="mask3_shape", color=2))
    net = Net(name="fig3_net")
    net.add_pin(_port("pin1", 0, 4, 4))
    net.add_pin(_port("pin2", 0, 4, 44))
    net.add_pin(_port("pin3", 0, 24, 12))
    net.add_pin(_port("pin4", 0, 44, 28))
    design.add_net(net)
    return design


def micro_cases() -> List[Tuple[str, Design]]:
    """Return every micro case as ``(name, design)`` pairs."""
    return [
        ("fig1_dense_cluster", fig1_dense_cluster()),
        ("fig1_multi_pin_net", fig1_multi_pin_net()),
        ("fig3_walkthrough", fig3_walkthrough_design()),
    ]


# ----------------------------------------------------------------------
# Search-engine micro-benchmarks (legacy GridPoint dicts vs flat index)
# ----------------------------------------------------------------------

def solution_fingerprint(solution) -> Dict[str, tuple]:
    """Return a comparable, order-independent digest of a routing solution."""
    return {
        name: (
            tuple(sorted(route.vertices)),
            tuple(sorted(route.vertex_colors.items())),
            tuple(sorted(route.edges)),
            tuple(sorted((s.a, s.b) for s in route.stitches)),
            route.routed,
        )
        for name, route in solution.routes.items()
    }


def solution_metrics(solution) -> Dict[str, float]:
    """Return the metric dict the benchmark records per routed solution."""
    return {
        "wirelength": solution.total_wirelength(),
        "vias": solution.total_vias(),
        "stitches": solution.total_stitches(),
        "failed_nets": len(solution.failed_nets()),
        "iterations": solution.iterations,
    }


def run_engine_benchmarks(
    suite: str = "ispd18",
    cases: Tuple[int, ...] = (1, 2, 3),
    scale: Optional[float] = None,
    routers: Tuple[str, ...] = ("maze", "color-state", "dac2012"),
    repeat: int = 1,
    dense_cases: Tuple[Tuple[str, int], ...] = DENSE_CASES,
) -> Dict[str, object]:
    """Benchmark the flat-index engines against the legacy reference.

    For every suite case (the *suite* sweep plus the denser *dense_cases*
    appendix) and router, the same design is routed *repeat* times per
    engine generation; the run asserts every produced solution is identical
    (vertices, colors, edges, stitches) and records the median wall-clock
    of each engine, so speedup numbers stay stable across noisy runs.
    Returns the result document that :func:`main` serialises to JSON.
    """
    # Imported here: repro.bench must stay importable without the router
    # stack (and the legacy module must never burden production imports).
    from repro.baselines.dac2012 import Dac2012Router
    from repro.bench.suites import suite_case
    from repro.dr.router import DetailedRouter
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()
    repeat = max(1, repeat)
    router_classes = {
        "maze": DetailedRouter,
        "color-state": MrTPLRouter,
        "dac2012": Dac2012Router,
    }
    case_list = [(suite, number) for number in cases]
    case_list.extend(dense_cases)
    results: List[Dict[str, object]] = []
    for case_suite, number in case_list:
        for router_key in routers:
            router_class = router_classes[router_key]
            timings: Dict[str, float] = {}
            outcome: Dict[str, object] = {}
            identical_repeats = True
            for engine in ("legacy", "flat"):
                samples: List[float] = []
                digests: List[object] = []
                for _round in range(repeat):
                    design = suite_case(case_suite, number, scale).build()
                    router = router_class(design, engine=engine)
                    start = time.perf_counter()
                    solution = router.run()
                    samples.append(time.perf_counter() - start)
                    digests.append(
                        (
                            solution_fingerprint(solution),
                            solution_metrics(solution),
                        )
                    )
                timings[engine] = median(samples)
                outcome[engine] = digests[0]
                identical_repeats = identical_repeats and all(
                    digest == digests[0] for digest in digests
                )
            legacy_digest, legacy_metrics = outcome["legacy"]
            flat_digest, flat_metrics = outcome["flat"]
            results.append(
                {
                    "suite": case_suite,
                    "case": number,
                    "router": router_key,
                    "legacy_seconds": round(timings["legacy"], 4),
                    "flat_seconds": round(timings["flat"], 4),
                    "speedup": round(timings["legacy"] / max(timings["flat"], 1e-9), 3),
                    "identical_solutions": identical_repeats
                    and legacy_digest == flat_digest
                    and legacy_metrics == flat_metrics,
                    "metrics": flat_metrics,
                }
            )
    speedups = [entry["speedup"] for entry in results]
    geomean = 1.0
    for value in speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(speedups), 1)
    return {
        "benchmark": "search-engine flat-index vs legacy",
        "suite": suite,
        "scale": scale,
        "cases": list(cases),
        "dense_cases": [list(entry) for entry in dense_cases],
        "repeat": repeat,
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "results": results,
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_solutions"] for entry in results),
    }


# ----------------------------------------------------------------------
# Native-kernel micro-benchmark (compiled relaxation loop vs buffered)
# ----------------------------------------------------------------------

def run_native_kernel_benchmarks(
    suite: str = "ispd18",
    cases: Tuple[int, ...] = (1, 2, 3),
    scale: Optional[float] = None,
    routers: Tuple[str, ...] = ("maze", "color-state", "dac2012"),
    repeat: int = 1,
    dense_cases: Tuple[Tuple[str, int], ...] = DENSE_CASES,
) -> Dict[str, object]:
    """Benchmark the compiled relaxation kernel against the buffered tier.

    For every suite case and router the same design is routed *repeat*
    times on the flat engine with the native tier enabled and *repeat*
    times with it forced off (:func:`repro.accel.set_native_enabled`), i.e.
    on the PR 3 flat-label Python loop.  Each row records the tier that was
    actually active per leg (:func:`repro.accel.active_search_tier`) -- on
    a host without a compiler both legs legitimately report a buffered
    tier and the speedup hovers around 1.0 -- and the run asserts the two
    legs produce bit-identical solutions.  Returns the result document
    that :func:`main` serialises to ``BENCH_native_kernel.json``.
    """
    from repro.baselines.dac2012 import Dac2012Router
    from repro.bench.suites import suite_case
    from repro.dr.router import DetailedRouter
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()
    repeat = max(1, repeat)
    router_classes = {
        "maze": DetailedRouter,
        "color-state": MrTPLRouter,
        "dac2012": Dac2012Router,
    }
    case_list = [(suite, number) for number in cases]
    case_list.extend(dense_cases)
    results: List[Dict[str, object]] = []
    for case_suite, number in case_list:
        for router_key in routers:
            router_class = router_classes[router_key]
            timings: Dict[str, float] = {}
            tiers: Dict[str, str] = {}
            outcome: Dict[str, object] = {}
            identical_repeats = True
            for leg, native in (("native", True), ("buffered", False)):
                previous = set_native_enabled(native)
                try:
                    tiers[leg] = active_search_tier()
                    samples: List[float] = []
                    digests: List[object] = []
                    for _round in range(repeat):
                        design = suite_case(case_suite, number, scale).build()
                        router = router_class(design, engine="flat")
                        start = time.perf_counter()
                        solution = router.run()
                        samples.append(time.perf_counter() - start)
                        digests.append(
                            (
                                solution_fingerprint(solution),
                                solution_metrics(solution),
                            )
                        )
                finally:
                    set_native_enabled(previous)
                timings[leg] = median(samples)
                outcome[leg] = digests[0]
                identical_repeats = identical_repeats and all(
                    digest == digests[0] for digest in digests
                )
            native_digest, native_metrics = outcome["native"]
            buffered_digest, buffered_metrics = outcome["buffered"]
            results.append(
                {
                    "suite": case_suite,
                    "case": number,
                    "router": router_key,
                    "native_tier": tiers["native"],
                    "buffered_tier": tiers["buffered"],
                    "buffered_seconds": round(timings["buffered"], 4),
                    "native_seconds": round(timings["native"], 4),
                    "speedup": round(
                        timings["buffered"] / max(timings["native"], 1e-9), 3
                    ),
                    "identical_solutions": identical_repeats
                    and native_digest == buffered_digest
                    and native_metrics == buffered_metrics,
                    "metrics": native_metrics,
                }
            )
    speedups = [entry["speedup"] for entry in results]
    geomean = 1.0
    for value in speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(speedups), 1)
    return {
        "benchmark": "native relaxation kernel vs buffered flat-label loop",
        "suite": suite,
        "scale": scale,
        "cases": list(cases),
        "dense_cases": [list(entry) for entry in dense_cases],
        "repeat": repeat,
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "native_available": native_available(),
        "results": results,
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_solutions"] for entry in results),
    }


# ----------------------------------------------------------------------
# Batched-routing micro-benchmark (disjoint-batch scheduler vs sequential)
# ----------------------------------------------------------------------

def run_batch_sched_benchmarks(
    suite: str = "ispd18",
    cases: Tuple[int, ...] = (1, 2, 3),
    scale: Optional[float] = None,
    routers: Tuple[str, ...] = ("maze", "color-state", "dac2012"),
    repeat: int = 1,
    parallelism: int = 4,
    backends: Tuple[str, ...] = ("thread",),
    policy: str = "prefix",
    min_fork_batch: Optional[int] = None,
    margin_cells: Optional[int] = None,
    dense_cases: Tuple[Tuple[str, int], ...] = DENSE_CASES,
    sparse_cases: Tuple[Tuple[str, int], ...] = SPARSE_CASES,
) -> Dict[str, object]:
    """Benchmark the batched rip-up loop against the sequential loop.

    For every suite case and router the same design is routed *repeat*
    times sequentially and *repeat* times per entry of *backends* through
    the :mod:`repro.sched` disjoint-batch executor (default: the
    speculative thread backend at the order-preserving ``prefix`` policy;
    ``pool`` exercises the persistent journal-replicated workers).  The run
    asserts every batched solution is identical to the sequential one (the
    determinism guarantee of the prefix policy) and records one result row
    per backend: median wall-clocks plus the executor's full
    ``ExecutorStats`` counters (speculation accept/fallback, worker errors,
    pool forks, replayed journal ops).  The effective ``min_fork_batch`` /
    ``margin_cells`` knob values are recorded in the document so a saved
    baseline documents the tuning that produced it.  ``cpu_count`` is
    recorded too: the speculative backends can only turn batch concurrency
    into wall-clock speedup when the host actually has cores to run the
    workers on.
    """
    from repro.baselines.dac2012 import Dac2012Router
    from repro.bench.suites import suite_case
    from repro.dr.router import DetailedRouter
    from repro.sched import resolve_batch_margin, resolve_min_fork_batch
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()
    repeat = max(1, repeat)
    min_fork_batch = resolve_min_fork_batch(min_fork_batch)
    margin_cells = resolve_batch_margin(margin_cells)
    router_classes = {
        "maze": DetailedRouter,
        "color-state": MrTPLRouter,
        "dac2012": Dac2012Router,
    }
    case_list = [(suite, number) for number in cases]
    # Appendix cases can coincide with the selected sweep (e.g. the
    # full-scale ispd19 1-5 sweep already covers dense case 4): route each
    # case once, or the geomean would double-weight it.
    for extra in (dense_cases, sparse_cases):
        case_list.extend(entry for entry in extra if entry not in case_list)
    results: List[Dict[str, object]] = []
    for case_suite, number in case_list:
        for router_key in routers:
            router_class = router_classes[router_key]

            def run_mode(backend: Optional[str]):
                samples: List[float] = []
                mode_digests: List[object] = []
                batch_stats: Dict[str, int] = {}
                for _round in range(repeat):
                    design = suite_case(case_suite, number, scale).build()
                    if backend is None:
                        router = router_class(design)
                    else:
                        router = router_class(
                            design,
                            parallelism=parallelism,
                            batch_backend=backend,
                            batch_policy=policy,
                            min_fork_batch=min_fork_batch,
                            batch_margin=margin_cells,
                        )
                    start = time.perf_counter()
                    solution = router.run()
                    samples.append(time.perf_counter() - start)
                    mode_digests.append(
                        (solution_fingerprint(solution), solution_metrics(solution))
                    )
                    if backend is not None:
                        batch_stats = router.batch_executor.stats.as_dict()
                stable = all(digest == mode_digests[0] for digest in mode_digests)
                return median(samples), mode_digests[0], stable, batch_stats

            seq_seconds, seq_digest, seq_stable, _ = run_mode(None)
            for backend in backends:
                seconds, digest, stable, batch_stats = run_mode(backend)
                results.append(
                    {
                        "suite": case_suite,
                        "case": number,
                        "router": router_key,
                        "backend": backend,
                        "sequential_seconds": round(seq_seconds, 4),
                        "batched_seconds": round(seconds, 4),
                        "speedup": round(seq_seconds / max(seconds, 1e-9), 3),
                        "identical_solutions": seq_stable
                        and stable
                        and digest == seq_digest,
                        "batch_stats": batch_stats,
                        "metrics": digest[1],
                    }
                )
    speedups = [entry["speedup"] for entry in results]
    geomean = 1.0
    for value in speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(speedups), 1)
    return {
        "benchmark": "batched rip-up loop (disjoint-batch scheduler) vs sequential",
        "suite": suite,
        "scale": scale,
        "cases": list(cases),
        "dense_cases": [list(entry) for entry in dense_cases],
        "sparse_cases": [list(entry) for entry in sparse_cases],
        "repeat": repeat,
        "parallelism": parallelism,
        "backends": list(backends),
        "policy": policy,
        "min_fork_batch": min_fork_batch,
        "margin_cells": margin_cells,
        "cpu_count": os.cpu_count(),
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "results": results,
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_solutions"] for entry in results),
    }


# ----------------------------------------------------------------------
# Incremental-check micro-benchmark (delta tallies vs full re-scan)
# ----------------------------------------------------------------------

def _drc_digest(grouped) -> Dict[str, tuple]:
    return {
        kind: tuple(sorted((v.kind, v.nets) for v in violations))
        for kind, violations in grouped.items()
    }


def _conflict_digest(report) -> tuple:
    return (
        tuple(
            sorted(
                (c.kind, tuple(sorted((c.net_a, c.net_b))), c.layer)
                for c in report.conflicts
            )
        ),
        report.uncolored_vertices,
    )


def run_incremental_check_benchmarks(
    suite: str = "ispd18",
    cases: Tuple[int, ...] = (1, 2, 3),
    scale: Optional[float] = None,
    rounds: int = 16,
) -> Dict[str, object]:
    """Benchmark incremental checking against the full re-scan oracle.

    For every suite case the design is routed once with Mr.TPL, then
    *rounds* rip-up/reroute mutations replay the negotiation loop's check
    workload.  After each mutation both check paths run on the identical
    solution -- the full-scan ``DRCChecker`` + ``ConflictChecker`` and the
    delta-driven ``repro.check`` counterparts -- asserting equal reports and
    accumulating each path's wall-clock.  Returns the result document that
    :func:`main` serialises to JSON.
    """
    from repro.bench.suites import suite_case
    from repro.check import IncrementalConflictChecker, IncrementalDRCChecker
    from repro.dr.drc import DRCChecker
    from repro.tpl.conflict import ConflictChecker
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()
    results: List[Dict[str, object]] = []
    for number in cases:
        design = suite_case(suite, number, scale).build()
        from repro.grid import RoutingGrid

        grid = RoutingGrid(design)
        router = MrTPLRouter(design, grid=grid, use_global_router=False)
        solution = router.run()

        full_drc = DRCChecker(design, grid)
        full_conflicts = ConflictChecker(design, grid)
        inc_drc = IncrementalDRCChecker(design, grid)
        inc_conflicts = IncrementalConflictChecker(design, grid)
        inc_drc.refresh(solution)  # initial build happens once, outside timing
        inc_conflicts.refresh(solution)

        net_names = sorted(
            route.net_name for route in solution.routes.values() if route.routed
        )
        if not net_names:
            results.append(
                {
                    "suite": suite,
                    "case": number,
                    "rounds": 0,
                    "full_seconds": 0.0,
                    "incremental_seconds": 0.0,
                    "speedup": 1.0,
                    "identical_reports": True,
                    "note": "no routed nets; mutation loop skipped",
                }
            )
            continue
        full_seconds = 0.0
        incremental_seconds = 0.0
        identical = True
        for round_number in range(rounds):
            name = net_names[round_number % len(net_names)]
            grid.release_net(name)
            solution.routes.pop(name, None)
            solution.add_route(router.route_net(design.net_by_name(name)))

            start = time.perf_counter()
            inc_grouped = inc_drc.check(solution)
            inc_report = inc_conflicts.check(solution)
            incremental_seconds += time.perf_counter() - start

            start = time.perf_counter()
            full_grouped = full_drc.check(solution)
            full_report = full_conflicts.check(solution)
            full_seconds += time.perf_counter() - start

            identical = (
                identical
                and _drc_digest(inc_grouped) == _drc_digest(full_grouped)
                and _conflict_digest(inc_report) == _conflict_digest(full_report)
            )
        results.append(
            {
                "suite": suite,
                "case": number,
                "rounds": rounds,
                "full_seconds": round(full_seconds, 4),
                "incremental_seconds": round(incremental_seconds, 4),
                "speedup": round(full_seconds / max(incremental_seconds, 1e-9), 3),
                "identical_reports": identical,
            }
        )
    speedups = [entry["speedup"] for entry in results]
    geomean = 1.0
    for value in speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(speedups), 1)
    return {
        "benchmark": "incremental check vs full re-scan (rip-up loop workload)",
        "suite": suite,
        "scale": scale,
        "cases": list(cases),
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "results": results,
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_reports"] for entry in results),
    }


def run_check_kernel_benchmarks(
    suite: str = "ispd18",
    cases: Tuple[int, ...] = (1, 2, 3),
    scale: Optional[float] = None,
    rounds: int = 16,
    campaign_routers: Tuple[str, ...] = ("maze", "color-state", "dac2012"),
) -> Dict[str, object]:
    """Benchmark the accelerated incremental-check tier against the pure loops.

    Two legs per suite case.  The **refresh** leg routes a *sparse
    variant* of the suite case once with Mr.TPL, then replays *rounds*
    rip-up/reroute mutations; after each mutation two independent
    incremental checker pairs ``refresh`` the same solution -- one on the
    fastest available tier (native ``_checkwork`` kernel or the numpy
    broadcast scan) and one forced onto the pure dict/set loops -- timing
    exactly the refresh calls and, outside the timed region, asserting
    that both reports match each other *and* a full re-scan by the frozen
    oracles.  The sparse variant keeps each net's compact pin cluster but
    scatters the clusters across an enlarged grid under a widened hard
    spacing: every occupied vertex probes a large planar neighborhood and
    nearly all probes miss, which is the regime the accelerated scan
    exists for.  On the dense suite defaults both tiers spend their time
    in identical per-violation Python work and the scan measures nothing
    but it (Amdahl).  The **campaign** leg runs a full routing campaign
    per router (plain maze, Mr.TPL, DAC-2012 baseline) on the unmodified
    suite case under both tiers and asserts the solutions are
    bit-identical (vertices, colors, edges, stitches).

    ``geomean_speedup`` covers the refresh legs (the tentpole criterion);
    ``all_identical`` covers every leg.  Returns the result document that
    :func:`main` serialises to ``BENCH_check_kernel.json``.
    """
    import dataclasses

    from repro.baselines.dac2012 import Dac2012Router
    from repro.bench.suites import suite_case
    from repro.bench.synthetic import generate_design
    from repro.check import IncrementalConflictChecker, IncrementalDRCChecker
    from repro.dr.drc import DRCChecker
    from repro.dr.router import DetailedRouter
    from repro.grid import RoutingGrid
    from repro.tpl.conflict import ConflictChecker
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()

    def forced_pure(run):
        # Gates only the check scan: the search engines keep their tiers,
        # so the legs differ in exactly the code under measurement.
        previous = set_check_scan_enabled(False)
        try:
            return run()
        finally:
            set_check_scan_enabled(previous)

    tier = active_check_tier()
    results: List[Dict[str, object]] = []
    # Sparse-variant knobs per case number: (grid multiplier, net-count
    # cap).  The densest case needs extra spreading to stay in the sparse
    # regime; the others keep the suite's net count.
    refresh_overrides: Dict[int, Tuple[int, Optional[int]]] = {3: (7, 16)}
    for number in cases:
        base_spec = suite_case(suite, number, scale).spec
        mult, net_cap = refresh_overrides.get(number, (5, None))
        spec = dataclasses.replace(
            base_spec,
            cols=base_spec.cols * mult,
            rows=base_spec.rows * mult,
            num_nets=net_cap if net_cap is not None else base_spec.num_nets,
        )
        design = generate_design(spec)
        # Widen the hard spacing so each occupied vertex probes a large
        # planar neighborhood (the suite defaults keep min_spacing under
        # one pitch, which leaves the spacing scan with an empty offset
        # table -- no check work for either tier to chew on).
        design.tech.rules.min_spacing = max(design.tech.rules.min_spacing, 44)
        grid = RoutingGrid(design)
        router = MrTPLRouter(design, grid=grid, use_global_router=False)
        solution = router.run()

        full_drc = DRCChecker(design, grid)
        full_conflicts = ConflictChecker(design, grid)
        accel_drc = IncrementalDRCChecker(design, grid)
        accel_conflicts = IncrementalConflictChecker(design, grid)
        pure_drc = IncrementalDRCChecker(design, grid)
        pure_conflicts = IncrementalConflictChecker(design, grid)
        # Initial builds happen once, outside timing, each on its own tier.
        accel_drc.refresh(solution)
        accel_conflicts.refresh(solution)
        forced_pure(lambda: (pure_drc.refresh(solution), pure_conflicts.refresh(solution)))

        net_names = sorted(
            route.net_name for route in solution.routes.values() if route.routed
        )
        if not net_names:
            results.append(
                {
                    "kind": "refresh", "suite": suite, "case": number,
                    "rounds": 0, "pure_seconds": 0.0, "accel_seconds": 0.0,
                    "speedup": 1.0, "identical_reports": True,
                    "check_tier": tier,
                    "note": "no routed nets; mutation loop skipped",
                }
            )
            continue
        pure_seconds = 0.0
        accel_seconds = 0.0
        identical = True
        # A real negotiation iteration rips up a whole offender set, so each
        # round dirties a sliding batch of nets, not a single one.
        batch = max(1, len(net_names) // 4)
        for round_number in range(rounds):
            for slot in range(batch):
                name = net_names[(round_number * batch + slot) % len(net_names)]
                grid.release_net(name)
                solution.routes.pop(name, None)
                solution.add_route(router.route_net(design.net_by_name(name)))

            start = time.perf_counter()
            accel_drc.refresh(solution)
            accel_conflicts.refresh(solution)
            accel_seconds += time.perf_counter() - start

            def pure_leg():
                start = time.perf_counter()
                pure_drc.refresh(solution)
                pure_conflicts.refresh(solution)
                return time.perf_counter() - start

            pure_seconds += forced_pure(pure_leg)

            # Report comparison runs outside the timed region: ``check``
            # re-sorts the full violation report, identical work on both
            # tiers that would only dilute the refresh measurement.  The
            # refreshes above already absorbed the dirty nets, so these
            # calls just sort and compare.
            accel_grouped = accel_drc.check(solution)
            accel_report = accel_conflicts.check(solution)
            identical = (
                identical
                and _drc_digest(accel_grouped) == _drc_digest(pure_drc.check(solution))
                and _conflict_digest(accel_report)
                == _conflict_digest(pure_conflicts.check(solution))
                and _drc_digest(accel_grouped) == _drc_digest(full_drc.check(solution))
                and _conflict_digest(accel_report)
                == _conflict_digest(full_conflicts.check(solution))
            )
        results.append(
            {
                "kind": "refresh",
                "suite": suite,
                "case": number,
                "rounds": rounds,
                "workload": {
                    "cols": spec.cols,
                    "rows": spec.rows,
                    "num_nets": spec.num_nets,
                    "min_spacing": design.tech.rules.min_spacing,
                    "grid_multiplier": mult,
                },
                "pure_seconds": round(pure_seconds, 4),
                "accel_seconds": round(accel_seconds, 4),
                "speedup": round(pure_seconds / max(accel_seconds, 1e-9), 3),
                "identical_reports": identical,
                "check_tier": tier,
            }
        )

    router_classes = {
        "maze": DetailedRouter,
        "color-state": MrTPLRouter,
        "dac2012": Dac2012Router,
    }
    campaign_case = cases[0]
    for router_key in campaign_routers:
        router_class = router_classes[router_key]
        legs: Dict[str, Tuple[float, object, object, Dict[str, float]]] = {}
        for leg in ("accel", "pure"):
            def campaign():
                design = suite_case(suite, campaign_case, scale).build()
                leg_router = router_class(design)
                start = time.perf_counter()
                leg_solution = leg_router.run()
                elapsed = time.perf_counter() - start
                return (
                    elapsed,
                    solution_fingerprint(leg_solution),
                    solution_metrics(leg_solution),
                    leg_router.phases.as_dict(),
                )

            legs[leg] = campaign() if leg == "accel" else forced_pure(campaign)
        accel_elapsed, accel_digest, accel_metrics, accel_phases = legs["accel"]
        pure_elapsed, pure_digest, pure_metrics, _ = legs["pure"]
        results.append(
            {
                "kind": "campaign",
                "suite": suite,
                "case": campaign_case,
                "router": router_key,
                "pure_seconds": round(pure_elapsed, 4),
                "accel_seconds": round(accel_elapsed, 4),
                "speedup": round(pure_elapsed / max(accel_elapsed, 1e-9), 3),
                "identical_solutions": accel_digest == pure_digest
                and accel_metrics == pure_metrics,
                "check_tier": tier,
                "metrics": accel_metrics,
                "phase_seconds": {
                    name: round(value, 4) for name, value in accel_phases.items()
                },
            }
        )

    refresh_speedups = [
        entry["speedup"] for entry in results if entry["kind"] == "refresh"
    ]
    geomean = 1.0
    for value in refresh_speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(refresh_speedups), 1)
    return {
        "benchmark": "incremental-check tiers: accelerated scan vs pure loops",
        "suite": suite,
        "scale": scale,
        "cases": list(cases),
        "rounds": rounds,
        "check_tier": tier,
        "check_native_available": check_native_available(),
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "results": results,
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(
            entry.get("identical_reports", entry.get("identical_solutions", True))
            for entry in results
        ),
    }


def run_checkpoint_benchmarks(
    suite: str = "ispd18",
    cases: Tuple[int, ...] = (1, 2, 3),
    scale: Optional[float] = None,
    repeat: int = 1,
) -> Dict[str, object]:
    """Benchmark snapshot-folded (v2) checkpoints against full journal replay.

    For every suite case a full Mr.TPL rip-up campaign runs with a journal
    attached, then the same campaign is checkpointed both ways: the
    complete op log (what a v1-era document carried -- restore cost grows
    with campaign age) and the checkpoint-v2 form after
    :meth:`MutationJournal.fold` (grid snapshot + empty suffix -- restore
    cost bounded by the grid).  Both documents are restored through
    :func:`repro.io.journal_io.checkpoint_from_dict` and the rebuilt grids
    asserted state-identical; the report records document sizes, op counts
    and the best-of-*repeat* restore wall-clocks.  Returns the result
    document that :func:`main` serialises to JSON.
    """
    from repro.campaign import CampaignState
    from repro.bench.suites import suite_case
    from repro.grid import RoutingGrid
    from repro.io.journal_io import checkpoint_from_dict, checkpoint_to_dict
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()

    def timed_restore(document_text: str) -> Tuple[float, RoutingGrid]:
        best = float("inf")
        restored_grid = None
        for _ in range(max(repeat, 1)):
            document = json.loads(document_text)  # fresh doc: restore mutates nothing, but stay honest
            start = time.perf_counter()
            _design, restored_grid, _journal, _solution = checkpoint_from_dict(document)
            best = min(best, time.perf_counter() - start)
        return best, restored_grid

    results: List[Dict[str, object]] = []
    for number in cases:
        design = suite_case(suite, number, scale).build()
        grid = RoutingGrid(design)
        journal = grid.attach_journal()
        router = MrTPLRouter(design, grid=grid, use_global_router=False)
        campaign = CampaignState()
        solution = router.run(campaign=campaign)

        replay_text = json.dumps(checkpoint_to_dict(design, journal, solution, campaign))
        campaign_ops = len(journal)
        replay_seconds, replay_grid = timed_restore(replay_text)

        journal.fold(grid.snapshot_state())
        folded_text = json.dumps(checkpoint_to_dict(design, journal, solution, campaign))
        folded_seconds, folded_grid = timed_restore(folded_text)

        results.append(
            {
                "suite": suite,
                "case": number,
                "iterations": solution.iterations,
                "campaign_ops": campaign_ops,
                "folded_suffix_ops": len(journal.ops),
                "replay_bytes": len(replay_text),
                "folded_bytes": len(folded_text),
                "size_ratio": round(len(replay_text) / max(len(folded_text), 1), 3),
                "replay_restore_seconds": round(replay_seconds, 4),
                "folded_restore_seconds": round(folded_seconds, 4),
                "restore_speedup": round(replay_seconds / max(folded_seconds, 1e-9), 3),
                "identical_restores": replay_grid.snapshot_state()
                == folded_grid.snapshot_state(),
            }
        )
    speedups = [entry["restore_speedup"] for entry in results]
    geomean = 1.0
    for value in speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(speedups), 1)
    return {
        "benchmark": "checkpoint-v2 snapshot-folded restore vs full journal replay",
        "suite": suite,
        "scale": scale,
        "cases": list(cases),
        "repeat": repeat,
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "results": results,
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_restores"] for entry in results),
    }


def run_fault_tolerance_benchmarks(
    scale: Optional[float] = None,
    deadline: float = 2.0,
) -> Dict[str, object]:
    """Measure recovery overhead of the supervised executor under injected faults.

    Each leg routes the pool-engaging sparse case with one deterministic
    fault armed (:mod:`repro.faults`) -- a SIGKILL-style worker crash, a
    compute hang cut off by the batch deadline, slow-but-alive replies --
    plus a torn-final-checkpoint leg that resumes a campaign through the
    keep-K fallback.  Every leg asserts the recovered solution is
    **bit-identical** to the fault-free serial run and records the wall
    clock next to the fault-free pool leg, so the JSON baseline
    (``BENCH_fault_tolerance.json``) tracks what a crash, a hang or a torn
    write actually costs end to end, together with the ``ExecutorStats``
    recovery counters that prove the fault fired.
    """
    import multiprocessing
    import tempfile
    from contextlib import ExitStack
    from pathlib import Path

    from repro import faults
    from repro.bench.suites import suite_case
    from repro.eval.experiments import route_with_checkpoint
    from repro.grid import RoutingGrid
    from repro.io.journal_io import load_checkpoint_document
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = 0.4  # engages the pool (8 parallel batches) with 2 workers
    have_fork = "fork" in multiprocessing.get_all_start_methods()
    recovery_keys = (
        "worker_errors", "retries", "deadline_timeouts", "worker_replacements",
        "demotions", "bootstrap_fallbacks", "worker_kills", "heartbeats",
    )

    def build():
        return suite_case("sparse", 1, scale).build()

    design = build()
    start = time.perf_counter()
    reference = solution_fingerprint(
        MrTPLRouter(design, grid=RoutingGrid(design), use_global_router=False).run()
    )
    serial_seconds = time.perf_counter() - start

    results: List[Dict[str, object]] = []
    legs = (
        ("fault-free", None, {}),
        ("worker-crash", "worker.crash:worker=0,op=200", {}),
        ("worker-hang", "worker.hang:worker=0,seconds=30",
         {"REPRO_BATCH_DEADLINE": f"{deadline}"}),
        ("reply-delay", "reply.delay:seconds=0.01,times=*", {}),
    )
    fault_free_seconds = None
    for leg, plan, env in legs:
        if not have_fork:
            continue  # the pool legs need fork; the report records the gap
        with ExitStack() as stack:
            for key, value in env.items():
                previous = os.environ.get(key)
                os.environ[key] = value
                stack.callback(
                    lambda key=key, previous=previous: (
                        os.environ.__setitem__(key, previous)
                        if previous is not None
                        else os.environ.pop(key, None)
                    )
                )
            if plan is not None:
                stack.enter_context(faults.injected(plan))
            case = build()
            router = MrTPLRouter(
                case, grid=RoutingGrid(case), use_global_router=False,
                parallelism=2, batch_backend="pool", min_fork_batch=2,
            )
            start = time.perf_counter()
            fingerprint = solution_fingerprint(router.run())
            seconds = time.perf_counter() - start
        stats = router.batch_executor.stats.as_dict()
        if leg == "fault-free":
            fault_free_seconds = seconds
        results.append({
            "leg": leg,
            "plan": plan,
            "seconds": round(seconds, 4),
            "overhead_vs_fault_free": round(
                seconds / max(fault_free_seconds or seconds, 1e-9), 3
            ),
            "identical_solutions": fingerprint == reference,
            "recovery": {key: stats[key] for key in recovery_keys},
        })

    # Torn-final-checkpoint leg: serial campaign, torn newest document,
    # resume through the retained generation (no fork needed).
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "ckpt.json"
        case = fig1_dense_cluster()
        start = time.perf_counter()
        solution, _grid, _resumed = route_with_checkpoint(
            case, MrTPLRouter, path, checkpoint_keep=2, use_global_router=False
        )
        campaign_seconds = time.perf_counter() - start
        torn_reference = solution_fingerprint(solution)
        path.write_text(path.read_text()[: max(path.stat().st_size // 2, 16)])
        start = time.perf_counter()
        solution2, _grid2, resumed = route_with_checkpoint(
            fig1_dense_cluster(), MrTPLRouter, path, checkpoint_keep=2,
            use_global_router=False,
        )
        resume_seconds = time.perf_counter() - start
        fallbacks = load_checkpoint_document(path)["campaign"]["executor_stats"][
            "checkpoint_fallbacks"
        ]
    results.append({
        "leg": "torn-checkpoint",
        "plan": "truncate newest generation, resume via keep-K fallback",
        "seconds": round(campaign_seconds, 4),
        "resume_seconds": round(resume_seconds, 4),
        "overhead_vs_fault_free": round(
            resume_seconds / max(campaign_seconds, 1e-9), 3
        ),
        "identical_solutions": resumed
        and solution_fingerprint(solution2) == torn_reference,
        "recovery": {"checkpoint_fallbacks": fallbacks},
    })

    ratios = [
        entry["overhead_vs_fault_free"]
        for entry in results
        if entry["leg"] != "fault-free"
    ]
    geomean = 1.0
    for value in ratios:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(ratios), 1)
    return {
        "benchmark": "fault-injected recovery overhead (supervised executor)",
        "suite": "sparse",
        "case": 1,
        "scale": scale,
        "deadline_seconds": deadline,
        "have_fork": have_fork,
        "serial_seconds": round(serial_seconds, 4),
        "results": results,
        # `main` prints this as a speedup; for this mode it is the geomean
        # *recovery overhead* ratio vs the fault-free leg (lower is better).
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_solutions"] for entry in results),
    }


def run_autotune_benchmarks(
    scale: Optional[float] = None,
    routers: Tuple[str, ...] = ("maze", "color-state", "dac2012"),
    repeat: int = 1,
    parallelism: int = 4,
    thread_workers: Tuple[int, ...] = (1, 2, 4),
    sparse_cases: Tuple[Tuple[str, int], ...] = SPARSE_CASES,
) -> Dict[str, object]:
    """Benchmark the self-tuning scheduler against static configurations.

    Routes the batch-engaging :data:`SPARSE_CASES` through every router
    four ways: the plain serial loop (the parity oracle), static ``thread``
    and (where fork exists) ``pool`` legs at *parallelism* workers, a
    thread-backend **native-scaling sweep** at each entry of
    *thread_workers* (the compiled relaxation kernel releases the GIL, so
    thread workers scale with real cores -- each leg records ``cpu_count``
    and the active kernel tier so the baseline shows whether the host
    could possibly speed up), and finally the autotuned leg
    (``batch_backend="auto"`` + ``autotune="full"``), where the router
    calibrates the host, picks its own backend and adapts the batch knobs
    from the executor counters each rip-up iteration.

    Every leg is asserted bit-identical to the serial run.  The autotuned
    row records the calibration :class:`~repro.sched.HardwareProfile`, the
    controller's full per-iteration decision log and the wall-clock ratio
    against the best *static* leg -- the acceptance criterion is that on a
    multi-core host the controller lands within 10% of the best static
    configuration without being told which one that is (baseline:
    ``BENCH_autotune.json``).
    """
    from repro.baselines.dac2012 import Dac2012Router
    from repro.bench.suites import suite_case
    from repro.dr.router import DetailedRouter
    from repro.sched import calibrate
    from repro.tpl.mr_tpl import MrTPLRouter

    if scale is None:
        scale = default_bench_scale()
    repeat = max(1, repeat)
    profile = calibrate()
    static_backends = ("thread", "pool") if profile.fork_available else ("thread",)
    router_classes = {
        "maze": DetailedRouter,
        "color-state": MrTPLRouter,
        "dac2012": Dac2012Router,
    }
    results: List[Dict[str, object]] = []
    for case_suite, number in sparse_cases:
        for router_key in routers:
            router_class = router_classes[router_key]

            def run_mode(**router_kwargs):
                samples: List[float] = []
                mode_digests: List[object] = []
                executor = None
                for _round in range(repeat):
                    design = suite_case(case_suite, number, scale).build()
                    router = router_class(design, **router_kwargs)
                    start = time.perf_counter()
                    solution = router.run()
                    samples.append(time.perf_counter() - start)
                    mode_digests.append(
                        (solution_fingerprint(solution), solution_metrics(solution))
                    )
                    executor = router.batch_executor
                stable = all(digest == mode_digests[0] for digest in mode_digests)
                return median(samples), mode_digests[0], stable, executor

            def leg_row(leg, seconds, digest, stable, executor, workers=None):
                return {
                    "suite": case_suite,
                    "case": number,
                    "router": router_key,
                    "leg": leg,
                    "workers": workers,
                    "serial_seconds": round(serial_seconds, 4),
                    "leg_seconds": round(seconds, 4),
                    "speedup": round(serial_seconds / max(seconds, 1e-9), 3),
                    "identical_solutions": serial_stable
                    and stable
                    and digest == serial_digest,
                    "batch_stats": executor.stats.as_dict()
                    if executor is not None
                    else {},
                }

            serial_seconds, serial_digest, serial_stable, _ = run_mode()
            static_seconds: Dict[str, float] = {"serial": serial_seconds}
            for backend in static_backends:
                seconds, digest, stable, executor = run_mode(
                    parallelism=parallelism,
                    batch_backend=backend,
                    min_fork_batch=2,
                )
                static_seconds[backend] = seconds
                results.append(
                    leg_row(
                        f"static:{backend}", seconds, digest, stable, executor,
                        workers=parallelism,
                    )
                )
            # Thread-backend native-scaling sweep (one router is enough to
            # characterise the kernel; color-state is the paper's router).
            if router_key == "color-state":
                for workers in thread_workers:
                    seconds, digest, stable, executor = run_mode(
                        parallelism=workers,
                        batch_backend="thread",
                        min_fork_batch=2,
                    )
                    row = leg_row(
                        f"thread-scaling:{workers}w", seconds, digest, stable,
                        executor, workers=workers,
                    )
                    row["cpu_count"] = profile.cpu_count
                    row["native_tier"] = active_search_tier()
                    results.append(row)
            seconds, digest, stable, executor = run_mode(
                batch_backend="auto", autotune="full"
            )
            controller = executor.autotune if executor is not None else None
            best_leg = min(static_seconds, key=static_seconds.get)
            ratio = seconds / max(static_seconds[best_leg], 1e-9)
            row = leg_row("autotune", seconds, digest, stable, executor)
            row["best_static_leg"] = best_leg
            row["ratio_vs_best_static"] = round(ratio, 3)
            row["within_10pct_of_best_static"] = ratio <= 1.10
            row["decisions"] = (
                [decision.as_dict() for decision in controller.decisions]
                if controller is not None
                else []
            )
            results.append(row)
    speedups = [entry["speedup"] for entry in results]
    geomean = 1.0
    for value in speedups:
        geomean *= max(value, 1e-9)
    geomean **= 1.0 / max(len(speedups), 1)
    autotune_rows = [entry for entry in results if entry["leg"] == "autotune"]
    return {
        "benchmark": "self-tuning scheduler (calibration + online controller) "
        "vs static configurations",
        "scale": scale,
        "repeat": repeat,
        "parallelism": parallelism,
        "thread_workers": list(thread_workers),
        "sparse_cases": [list(entry) for entry in sparse_cases],
        "cpu_count": profile.cpu_count,
        "os_cpu_count": os.cpu_count(),
        "native_tier": active_search_tier(),
        "hardware_profile": profile.as_dict(),
        "numpy_available": have_numpy(),
        "numpy_enabled": numpy_enabled(),
        "results": results,
        # The 10% acceptance criterion is defined for multi-core hosts: on
        # a single usable core the controller deliberately takes the serial
        # floor, while the best *static* leg may be whichever speculative
        # tier happens to win on that router -- a comparison the criterion
        # does not cover.  The per-row ratios are still recorded.
        "autotune_within_10pct": (
            all(entry["within_10pct_of_best_static"] for entry in autotune_rows)
            if autotune_rows and profile.cpu_count >= 2
            else None
        ),
        "autotune_criterion_note": (
            "criterion evaluated"
            if profile.cpu_count >= 2
            else "single usable core: controller takes the serial floor; "
            "10% criterion applies on >=2-core hosts"
        ),
        "geomean_speedup": round(geomean, 3),
        "all_identical": all(entry["identical_solutions"] for entry in results),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the micro-benchmarks and write a JSON baseline."""
    import argparse

    parser = argparse.ArgumentParser(description=run_engine_benchmarks.__doc__)
    parser.add_argument("--suite", default="ispd18", choices=("ispd18", "ispd19", "sparse"))
    parser.add_argument("--cases", default="1,2,3", help="comma-separated case numbers")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"suite scale factor (default: REPRO_BENCH_SCALE or {DEFAULT_BENCH_SCALE})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="route each case/engine this many times and report the median, "
        "so speedup numbers are stable",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="single small case (CI smoke mode)"
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="benchmark incremental checking against the full re-scan instead "
        "of the search engines",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="benchmark the batched rip-up loop (repro.sched disjoint-batch "
        "executor) against the sequential loop instead of the search engines",
    )
    parser.add_argument(
        "--native",
        action="store_true",
        help="benchmark the compiled relaxation kernel against the buffered "
        "flat-label loop instead of the legacy/flat engine comparison "
        "(default output: BENCH_native_kernel.json)",
    )
    parser.add_argument(
        "--check-kernel",
        action="store_true",
        help="benchmark the accelerated incremental-check tier (native "
        "_checkwork kernel / numpy broadcast scan) against the pure "
        "dict/set loops, plus full-campaign bit-identity legs for all "
        "three routers (default output: BENCH_check_kernel.json)",
    )
    parser.add_argument(
        "--phases",
        action="store_true",
        help="print the per-phase wall-clock breakdown (plan/search/commit/"
        "check/ipc/checkpoint) accumulated while producing the report; the "
        "breakdown is recorded in the JSON as phase_seconds either way",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="benchmark checkpoint-v2 snapshot-folded restore against full "
        "journal replay instead of the search engines (default output: "
        "BENCH_checkpoint.json)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="benchmark fault-injected recovery (seeded worker crash / hang "
        "/ slow replies / torn checkpoint against the supervised pool "
        "executor) instead of the search engines (default output: "
        "BENCH_fault_tolerance.json)",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="benchmark the self-tuning scheduler (hardware calibration + "
        "online backend/knob controller, plus a thread-backend native-"
        "scaling sweep at 1/2/4 workers) against static configurations "
        "instead of the search engines (default output: "
        "BENCH_autotune.json)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="batch deadline in seconds for the worker-hang fault leg "
        "(--faults only)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="run the selected benchmark under cProfile and print the top N "
        "functions by cumulative time (default N: 25); the raw stats are "
        "dumped next to the JSON output as <out>.prof",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=4,
        help="worker count of the batched executor (--batched only)",
    )
    parser.add_argument(
        "--backend",
        default="thread",
        help="comma-separated batched-executor backend list "
        "(serial/thread/process/pool; --batched only)",
    )
    parser.add_argument(
        "--min-fork-batch",
        type=int,
        default=None,
        help="smallest batch worth forking for (default: REPRO_MIN_FORK_BATCH "
        "or 3; --batched only)",
    )
    parser.add_argument(
        "--margin-cells",
        type=int,
        default=None,
        help="extra scheduler window margin in cells (default: "
        "REPRO_BATCH_MARGIN or 0; --batched only)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_native_kernel.json with "
        "--native, BENCH_micro.json otherwise)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        if args.autotune:
            args.out = "BENCH_autotune.json"
        elif args.faults:
            args.out = "BENCH_fault_tolerance.json"
        elif args.checkpoint:
            args.out = "BENCH_checkpoint.json"
        elif args.check_kernel:
            args.out = "BENCH_check_kernel.json"
        elif args.native:
            args.out = "BENCH_native_kernel.json"
        else:
            args.out = "BENCH_micro.json"

    cases = tuple(int(token) for token in args.cases.split(",") if token.strip())
    backends = tuple(token.strip() for token in args.backend.split(",") if token.strip())
    if args.batched:
        # Reject typos up front: a bad second backend must not surface only
        # after the first backend's (potentially hours-long) sweep ran.
        from repro.sched import BACKENDS

        unknown = [backend for backend in backends if backend not in BACKENDS]
        if unknown:
            parser.error(
                f"unknown --backend value(s) {unknown}; expected among {BACKENDS}"
            )
        if not backends:
            parser.error("--backend selected no backends")
    scale = args.scale
    dense_cases = DENSE_CASES
    sparse_cases = SPARSE_CASES
    if args.smoke:
        cases, scale, dense_cases, sparse_cases = (1,), 0.5, (), ()
    if not cases:
        parser.error("--cases selected no case numbers")
    def produce_report():
        if args.autotune:
            # Autotune legs only make sense on the batch-engaging sparse
            # cases; smoke keeps one case/router at a pool-friendly scale.
            return run_autotune_benchmarks(
                scale=0.4 if args.smoke else scale,
                routers=("color-state",)
                if args.smoke
                else ("maze", "color-state", "dac2012"),
                repeat=args.repeat,
                parallelism=args.parallelism,
                thread_workers=(1, 2) if args.smoke else (1, 2, 4),
                sparse_cases=(("sparse", 1),) if args.smoke else SPARSE_CASES,
            )
        if args.faults:
            return run_fault_tolerance_benchmarks(
                scale=args.scale, deadline=args.deadline
            )
        if args.incremental:
            return run_incremental_check_benchmarks(
                suite=args.suite, cases=cases, scale=scale
            )
        if args.check_kernel:
            return run_check_kernel_benchmarks(
                suite=args.suite,
                cases=cases,
                scale=scale,
                campaign_routers=("color-state",)
                if args.smoke
                else ("maze", "color-state", "dac2012"),
            )
        if args.checkpoint:
            return run_checkpoint_benchmarks(
                suite=args.suite, cases=cases, scale=scale, repeat=args.repeat
            )
        if args.batched:
            return run_batch_sched_benchmarks(
                suite=args.suite,
                cases=cases,
                scale=scale,
                repeat=args.repeat,
                parallelism=args.parallelism,
                backends=backends,
                min_fork_batch=args.min_fork_batch,
                margin_cells=args.margin_cells,
                dense_cases=dense_cases,
                sparse_cases=sparse_cases,
            )
        if args.native:
            return run_native_kernel_benchmarks(
                suite=args.suite,
                cases=cases,
                scale=scale,
                repeat=args.repeat,
                dense_cases=dense_cases,
            )
        return run_engine_benchmarks(
            suite=args.suite,
            cases=cases,
            scale=scale,
            repeat=args.repeat,
            dense_cases=dense_cases,
        )

    phase_snapshot = global_phase_snapshot()
    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = produce_report()
        finally:
            profiler.disable()
        stats_path = f"{args.out}.prof"
        profiler.dump_stats(stats_path)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(max(1, args.profile))
        print(f"profile stats dumped to {stats_path}")
    else:
        report = produce_report()
    # Every benchmark document carries the per-phase wall-clock breakdown
    # accumulated across all routers/executors the scenario constructed.
    report["phase_seconds"] = {
        name: round(value, 4)
        for name, value in global_phase_delta(phase_snapshot).items()
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for entry in report["results"]:
        if args.autotune:
            extra = ""
            if entry["leg"] == "autotune":
                extra = (
                    f" vs-best-static({entry['best_static_leg']})="
                    f"{entry['ratio_vs_best_static']:.2f}x "
                    f"decisions={len(entry['decisions'])}"
                )
            elif entry["leg"].startswith("thread-scaling"):
                extra = (
                    f" tier={entry['native_tier']} cpus={entry['cpu_count']}"
                )
            print(
                f"{entry['suite']} case{entry['case']:>2} {entry['router']:<12} "
                f"{entry['leg']:<18} serial={entry['serial_seconds']:.3f}s "
                f"leg={entry['leg_seconds']:.3f}s "
                f"speedup={entry['speedup']:.2f}x "
                f"identical={entry['identical_solutions']}{extra}"
            )
        elif args.faults:
            recovery = ", ".join(
                f"{key}={value}"
                for key, value in entry["recovery"].items()
                if value
            )
            print(
                f"{entry['leg']:<16} {entry['seconds']:.3f}s "
                f"overhead={entry['overhead_vs_fault_free']:.2f}x "
                f"identical={entry['identical_solutions']} "
                f"[{recovery or 'no recovery needed'}]"
            )
        elif args.incremental:
            print(
                f"{entry['suite']} case{entry['case']:>2} rounds={entry['rounds']} "
                f"full={entry['full_seconds']:.3f}s "
                f"incremental={entry['incremental_seconds']:.3f}s "
                f"speedup={entry['speedup']:.2f}x identical={entry['identical_reports']}"
            )
        elif args.check_kernel:
            if entry["kind"] == "refresh":
                print(
                    f"{entry['suite']} case{entry['case']:>2} refresh      "
                    f"rounds={entry['rounds']} "
                    f"pure={entry['pure_seconds']:.3f}s "
                    f"accel={entry['accel_seconds']:.3f}s "
                    f"speedup={entry['speedup']:.2f}x "
                    f"tier={entry['check_tier']} "
                    f"identical={entry['identical_reports']}"
                )
            else:
                print(
                    f"{entry['suite']} case{entry['case']:>2} campaign "
                    f"{entry['router']:<12} "
                    f"pure={entry['pure_seconds']:.3f}s "
                    f"accel={entry['accel_seconds']:.3f}s "
                    f"speedup={entry['speedup']:.2f}x "
                    f"identical={entry['identical_solutions']}"
                )
        elif args.checkpoint:
            print(
                f"{entry['suite']} case{entry['case']:>2} "
                f"ops={entry['campaign_ops']}->{entry['folded_suffix_ops']} "
                f"bytes={entry['replay_bytes']}->{entry['folded_bytes']} "
                f"({entry['size_ratio']:.2f}x) "
                f"restore replay={entry['replay_restore_seconds']:.3f}s "
                f"folded={entry['folded_restore_seconds']:.3f}s "
                f"speedup={entry['restore_speedup']:.2f}x "
                f"identical={entry['identical_restores']}"
            )
        elif args.batched:
            stats = entry["batch_stats"]
            print(
                f"{entry['suite']} case{entry['case']:>2} {entry['router']:<12} "
                f"{entry['backend']:<7} "
                f"sequential={entry['sequential_seconds']:.3f}s "
                f"batched={entry['batched_seconds']:.3f}s "
                f"speedup={entry['speedup']:.2f}x identical={entry['identical_solutions']} "
                f"batches={stats.get('batches', 0)} "
                f"largest={stats.get('largest_batch', 0)} "
                f"spec={stats.get('speculative_accepted', 0)}"
                f"/fb={stats.get('speculative_fallbacks', 0)} "
                f"forks={stats.get('pool_forks', 0)} "
                f"replayed={stats.get('replayed_ops', 0)}"
            )
        elif args.native:
            print(
                f"{entry['suite']} case{entry['case']:>2} {entry['router']:<12} "
                f"buffered={entry['buffered_seconds']:.3f}s "
                f"native={entry['native_seconds']:.3f}s "
                f"speedup={entry['speedup']:.2f}x "
                f"tier={entry['native_tier']} "
                f"identical={entry['identical_solutions']}"
            )
        else:
            print(
                f"{entry['suite']} case{entry['case']:>2} {entry['router']:<12} "
                f"legacy={entry['legacy_seconds']:.3f}s flat={entry['flat_seconds']:.3f}s "
                f"speedup={entry['speedup']:.2f}x identical={entry['identical_solutions']}"
            )
    if args.phases:
        phase_total = sum(report["phase_seconds"].values())
        for name in PHASE_NAMES:
            seconds = report["phase_seconds"].get(name, 0.0)
            share = 100.0 * seconds / phase_total if phase_total > 0 else 0.0
            print(f"phase {name:<10} {seconds:9.3f}s {share:5.1f}%")
    print(f"geomean speedup: {report['geomean_speedup']:.2f}x -> {args.out}")
    return 0 if report["all_identical"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke run
    raise SystemExit(main())
