"""Hand-crafted micro layouts mirroring the paper's figures.

* :func:`fig1_dense_cluster` -- four closely spaced nets whose patterns
  cannot all receive different masks once routed without care: the scenario
  of Fig. 1(a)/(b) where layout decomposition hits an unsolvable conflict.
* :func:`fig1_multi_pin_net` -- one 4-pin net surrounded by pre-colored
  metal: the scenario of Fig. 1(c)/(d) where a 2-pin TPL router sprays
  stitches across the net while a multi-pin-aware router does not.
* :func:`fig3_walkthrough_design` -- the Fig. 3 walk-through: a 4-pin net
  with two fixed obstacles on mask 2 and mask 3 forcing the color state of
  the routed path to narrow from ``111`` to ``101`` to ``100``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.design import Design, Net, Obstacle, Pin
from repro.geometry import Point, Rect
from repro.tech import DesignRules, make_default_tech


def _port(name: str, layer: int, x: int, y: int, half: int = 1) -> Pin:
    """Return a square top-level port pin centred on ``(x, y)``."""
    pin = Pin(name=name)
    pin.add_shape(layer, Rect(x - half, y - half, x + half, y + half))
    return pin


def _micro_design(name: str, size: int = 64, color_spacing: int = 8, num_layers: int = 3) -> Design:
    rules = DesignRules(color_spacing=color_spacing, min_spacing=1, wire_width=1)
    tech = make_default_tech(
        num_layers=num_layers, pitch=4, color_spacing=color_spacing, rules=rules
    )
    return Design(name=name, tech=tech, die_area=Rect(0, 0, size, size))


def fig1_dense_cluster() -> Design:
    """Return the Fig. 1(a) scenario: four mutually close patterns.

    Four 2-pin nets are forced through a narrow corridor so their wires end
    up pairwise closer than ``Dcolor``.  A decomposer that may not move the
    wires cannot 3-color four mutually conflicting patterns; a TPL-aware
    router spreads them (or pays a stitch) instead.
    """
    design = _micro_design("fig1_dense_cluster", size=64, color_spacing=8)
    # A corridor bounded by blockages on the first two layers squeezes the
    # four nets together in the middle of the die.
    design.add_obstacle(Obstacle(layer=0, rect=Rect(0, 24, 24, 40), name="wall_left"))
    design.add_obstacle(Obstacle(layer=0, rect=Rect(40, 24, 64, 40), name="wall_right"))
    design.add_obstacle(Obstacle(layer=1, rect=Rect(0, 24, 24, 40), name="wall_left_m2"))
    design.add_obstacle(Obstacle(layer=1, rect=Rect(40, 24, 64, 40), name="wall_right_m2"))
    for index in range(4):
        x = 26 + index * 4
        net = Net(name=f"pair_{index}")
        net.add_pin(_port(f"pair_{index}_s", 0, x, 8))
        net.add_pin(_port(f"pair_{index}_t", 0, x, 56))
        design.add_net(net)
    return design


def fig1_multi_pin_net() -> Design:
    """Return the Fig. 1(c) scenario: one 4-pin net amid pre-colored metal.

    The pre-colored obstacles force parts of the net onto specific masks; a
    2-pin router commits each branch's color independently and pays stitches
    at the junctions, while the multi-pin color-state search agrees on masks
    across the whole tree.
    """
    design = _micro_design("fig1_multi_pin_net", size=64, color_spacing=8)
    design.add_obstacle(Obstacle(layer=0, rect=Rect(20, 18, 32, 22), name="fixed_green", color=1))
    design.add_obstacle(Obstacle(layer=0, rect=Rect(36, 40, 48, 44), name="fixed_blue", color=2))
    net = Net(name="multi4")
    net.add_pin(_port("p1", 0, 8, 8))
    net.add_pin(_port("p2", 0, 56, 8))
    net.add_pin(_port("p3", 0, 8, 56))
    net.add_pin(_port("p4", 0, 56, 56))
    design.add_net(net)
    # Two short neighbour nets add color pressure around the junctions.
    neighbour_a = Net(name="nbr_a")
    neighbour_a.add_pin(_port("na_s", 0, 24, 28))
    neighbour_a.add_pin(_port("na_t", 0, 40, 28))
    design.add_net(neighbour_a)
    neighbour_b = Net(name="nbr_b")
    neighbour_b.add_pin(_port("nb_s", 0, 24, 36))
    neighbour_b.add_pin(_port("nb_t", 0, 40, 36))
    design.add_net(neighbour_b)
    return design


def fig3_walkthrough_design() -> Design:
    """Return the Fig. 3 walk-through case.

    A single 4-pin net must route past two fixed shapes assigned to mask 2
    (green) and mask 3 (blue).  Passing the green shape removes green from
    the path's color state (``111`` -> ``101``); passing the blue shape then
    removes blue (``101`` -> ``100``), so the backtrace must finally place the
    affected segments on mask 1 (red), exactly as in the paper's example.
    """
    design = _micro_design("fig3_walkthrough", size=48, color_spacing=8, num_layers=2)
    design.add_obstacle(Obstacle(layer=0, rect=Rect(14, 20, 22, 24), name="mask2_shape", color=1))
    design.add_obstacle(Obstacle(layer=0, rect=Rect(30, 20, 38, 24), name="mask3_shape", color=2))
    net = Net(name="fig3_net")
    net.add_pin(_port("pin1", 0, 4, 4))
    net.add_pin(_port("pin2", 0, 4, 44))
    net.add_pin(_port("pin3", 0, 24, 12))
    net.add_pin(_port("pin4", 0, 44, 28))
    design.add_net(net)
    return design


def micro_cases() -> List[Tuple[str, Design]]:
    """Return every micro case as ``(name, design)`` pairs."""
    return [
        ("fig1_dense_cluster", fig1_dense_cluster()),
        ("fig1_multi_pin_net", fig1_multi_pin_net()),
        ("fig3_walkthrough", fig3_walkthrough_design()),
    ]
