"""Synthetic ISPD-like benchmark generation.

Every case is produced deterministically from a :class:`SyntheticSpec`:
the same spec always yields bit-identical designs, so the experiment tables
are reproducible.  The generated designs exercise the same code paths as the
contest benchmarks -- row-placed standard cells with pins on the lowest
routing layer, multi-pin nets with spatial locality, macros, uncolored and
pre-colored obstacles, and per-layer color-spacing rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.design import CellInstance, CellMaster, Design, Net, Obstacle, Pin
from repro.geometry import Orientation, Point, Rect
from repro.tech import DesignRules, make_default_tech
from repro.utils import SeededRNG


@dataclass
class SyntheticSpec:
    """Parameters of one synthetic benchmark case."""

    name: str
    seed: int = 1
    #: Die size in tracks (the DBU size is ``tracks * pitch``).
    cols: int = 32
    rows: int = 32
    pitch: int = 4
    num_layers: int = 3
    #: How many of the lowest layers are triple-patterned.
    tpl_layer_count: Optional[int] = None
    #: Same-mask spacing in DBU.
    color_spacing: int = 8
    #: Number of multi-pin nets to generate.
    num_nets: int = 20
    #: Net degree distribution.
    min_pins: int = 2
    max_pins: int = 5
    multi_pin_bias: float = 0.6
    #: Locality window (in tracks) within which a net's sinks are drawn.
    net_radius: int = 12
    #: Obstacles on the intermediate layers.
    obstacle_count: int = 4
    obstacle_span: int = 4
    #: Fraction of obstacles that carry a pre-assigned mask.
    colored_obstacle_fraction: float = 0.5
    #: Number of large macros blocking several layers.
    macro_count: int = 0
    #: Cell row spacing in tracks.
    row_spacing: int = 4
    #: Cell column spacing in tracks.
    cell_spacing: int = 4
    #: Period (in rows) of pre-colored cell/power metal straps; 0 disables them.
    #: Straps are thin off-track shapes that block nothing but carry a fixed
    #: mask, so they constrain the colors of wires on nearby tracks -- the
    #: layout feature that makes decompose-after-routing run out of colors.
    strap_period: int = 0
    #: Layer the straps live on.
    strap_layer: int = 0

    @property
    def die_width(self) -> int:
        """Return the die width in DBU."""
        return self.cols * self.pitch

    @property
    def die_height(self) -> int:
        """Return the die height in DBU."""
        return self.rows * self.pitch


def _make_cell_master(pitch: int) -> CellMaster:
    """Return the simple two-pin standard cell used by every synthetic case."""
    size = pitch * 2
    master = CellMaster(name="SYN_CELL", width=size, height=size)
    quarter = max(pitch // 2, 1)
    master.add_pin("A", layer=0, rect=Rect(0, 0, quarter, quarter))
    master.add_pin("Z", layer=0, rect=Rect(size - quarter, size - quarter, size, size))
    return master


def _make_macro_master(pitch: int, span: int, num_layers: int) -> CellMaster:
    """Return a macro master blocking *span* tracks on the lower layers."""
    size = pitch * span
    master = CellMaster(name=f"SYN_MACRO_{span}", width=size, height=size, is_macro=True)
    for layer in range(min(2, num_layers)):
        master.add_obstruction(layer, Rect(0, 0, size, size))
    master.add_pin("P", layer=0, rect=Rect(0, 0, max(pitch // 2, 1), max(pitch // 2, 1)))
    return master


def generate_design(spec: SyntheticSpec) -> Design:
    """Generate a synthetic design from *spec* (deterministic in the seed)."""
    rng = SeededRNG(spec.seed)
    rules = DesignRules(
        color_spacing=spec.color_spacing,
        min_spacing=1,
        wire_width=1,
    )
    tech = make_default_tech(
        num_layers=spec.num_layers,
        pitch=spec.pitch,
        color_spacing=spec.color_spacing,
        tpl_layer_count=spec.tpl_layer_count,
        rules=rules,
    )
    die = Rect(0, 0, spec.die_width, spec.die_height)
    design = Design(name=spec.name, tech=tech, die_area=die)

    cell_master = design.add_master(_make_cell_master(spec.pitch))
    instances = _place_cells(design, spec, cell_master)
    if spec.macro_count > 0:
        _place_macros(design, spec, rng)
    _place_obstacles(design, spec, rng)
    if spec.strap_period > 0:
        _place_straps(design, spec)
    _build_nets(design, spec, instances, rng)
    return design


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------

def _place_cells(
    design: Design, spec: SyntheticSpec, master: CellMaster
) -> List[CellInstance]:
    """Place cells in rows across the die and return them."""
    instances: List[CellInstance] = []
    step_x = spec.cell_spacing * spec.pitch
    step_y = spec.row_spacing * spec.pitch
    index = 0
    y = spec.pitch
    while y + master.height < spec.die_height:
        x = spec.pitch
        while x + master.width < spec.die_width:
            instance = CellInstance(
                name=f"cell_{index}",
                master=master,
                location=Point(x, y),
                orientation=Orientation.N,
            )
            design.add_instance(instance)
            instances.append(instance)
            index += 1
            x += step_x
        y += step_y
    return instances


def _place_macros(design: Design, spec: SyntheticSpec, rng: SeededRNG) -> None:
    span = max(spec.obstacle_span * 2, 6)
    master = design.add_master(_make_macro_master(spec.pitch, span, spec.num_layers))
    for index in range(spec.macro_count):
        max_col = max(spec.cols - span - 1, 1)
        max_row = max(spec.rows - span - 1, 1)
        col = rng.randint(0, max_col)
        row = rng.randint(0, max_row)
        instance = CellInstance(
            name=f"macro_{index}",
            master=master,
            location=Point(col * spec.pitch, row * spec.pitch),
        )
        try:
            design.add_instance(instance)
        except ValueError:  # pragma: no cover - duplicate names cannot happen
            continue


def _place_straps(design: Design, spec: SyntheticSpec) -> None:
    """Place pre-colored, non-blocking metal straps between track rows.

    The straps model cell-internal / power metal that already carries a mask
    before routing starts.  They sit strictly between two track rows, so they
    never block a routing vertex, but any wire routed on a nearby track must
    avoid their mask (or conflict).  Colors cycle through the three masks.
    """
    pitch = spec.pitch
    index = 0
    for row in range(2, spec.rows - 1, spec.strap_period):
        y0 = row * pitch + 1
        y1 = row * pitch + pitch - 1
        design.add_obstacle(
            Obstacle(
                layer=spec.strap_layer,
                rect=Rect(0, y0, spec.die_width, y1),
                name=f"strap_{index}",
                color=index % 3,
            )
        )
        index += 1


def _place_obstacles(design: Design, spec: SyntheticSpec, rng: SeededRNG) -> None:
    for index in range(spec.obstacle_count):
        layer = rng.randint(1, max(1, spec.num_layers - 1))
        span = rng.randint(2, max(2, spec.obstacle_span))
        max_col = max(spec.cols - span - 1, 1)
        max_row = max(spec.rows - span - 1, 1)
        col = rng.randint(1, max_col)
        row = rng.randint(1, max_row)
        rect = Rect(
            col * spec.pitch,
            row * spec.pitch,
            (col + span) * spec.pitch,
            (row + span) * spec.pitch,
        )
        color = -1
        if rng.random() < spec.colored_obstacle_fraction:
            color = rng.randint(0, 2)
        design.add_obstacle(
            Obstacle(layer=layer, rect=rect, name=f"obs_{index}", color=color)
        )


# ----------------------------------------------------------------------
# Netlist synthesis
# ----------------------------------------------------------------------

def _build_nets(
    design: Design,
    spec: SyntheticSpec,
    instances: List[CellInstance],
    rng: SeededRNG,
) -> None:
    """Create multi-pin nets with spatial locality over the placed cells."""
    if not instances:
        raise ValueError(f"spec {spec.name!r} produced no cell instances")
    available: List[Tuple[CellInstance, str]] = [
        (instance, pin_name)
        for instance in instances
        for pin_name in ("A", "Z")
    ]
    used: set = set()
    radius_dbu = spec.net_radius * spec.pitch

    for net_index in range(spec.num_nets):
        degree = rng.pin_count(spec.min_pins, spec.max_pins, spec.multi_pin_bias)
        anchor = None
        for _attempt in range(40):
            candidate = rng.choice(available)
            if (candidate[0].name, candidate[1]) not in used:
                anchor = candidate
                break
        if anchor is None:
            break
        anchor_point = anchor[0].footprint().center
        neighbourhood = [
            (instance, pin_name)
            for instance, pin_name in available
            if (instance.name, pin_name) not in used
            and instance.footprint().center.chebyshev_distance(anchor_point) <= radius_dbu
            and (instance.name, pin_name) != (anchor[0].name, anchor[1])
        ]
        rng.shuffle(neighbourhood)
        members = [anchor] + neighbourhood[: degree - 1]
        if len(members) < 2:
            continue
        net = Net(name=f"net_{net_index}")
        for instance, pin_name in members:
            used.add((instance.name, pin_name))
            net.add_pin(instance.make_pin(pin_name))
        design.add_net(net)
