"""The ISPD-2018-like and ISPD-2019-like benchmark suites.

Each suite contains ten cases named ``test1`` .. ``test10`` whose size and
density grow monotonically, mirroring how the contest benchmarks scale from
the small ``ispd18_test1`` to the large, congested ``test10`` (the case where
the paper's Table II improvement collapses to ~20 % because the layout is
simply too dense).  A global ``scale`` knob shrinks or grows every case so
the same experiment can run as a quick smoke test or a longer study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.synthetic import SyntheticSpec, generate_design
from repro.design import Design


@dataclass(frozen=True)
class SuiteCase:
    """One named case of a suite."""

    name: str
    spec: SyntheticSpec

    def build(self) -> Design:
        """Generate the design of this case."""
        return generate_design(self.spec)


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def ispd18_suite(scale: float = 1.0, cases: Optional[List[int]] = None) -> List[SuiteCase]:
    """Return the ISPD-2018-like suite (Table II workload).

    Parameters
    ----------
    scale:
        Multiplies the grid size and net count of every case; ``1.0`` is the
        default laptop-scale sizing, smaller values give smoke-test cases.
    cases:
        Optional list of case numbers (1-10) to build; all ten by default.
    """
    profiles = [
        # (cols, rows, layers, nets, obstacles, net_radius)
        (20, 20, 3, 18, 2, 9),
        (22, 22, 3, 24, 3, 9),
        (24, 24, 3, 32, 3, 10),
        (26, 26, 3, 40, 4, 10),
        (30, 30, 4, 52, 4, 11),
        (32, 32, 4, 62, 5, 11),
        (36, 36, 4, 76, 6, 12),
        (38, 38, 4, 88, 6, 12),
        (42, 42, 4, 104, 7, 12),
        (44, 44, 4, 126, 8, 10),
    ]
    wanted = cases if cases is not None else list(range(1, 11))
    suite: List[SuiteCase] = []
    for number in wanted:
        cols, rows, layers, nets, obstacles, radius = profiles[number - 1]
        spec = SyntheticSpec(
            name=f"ispd18like_test{number}",
            seed=1800 + number,
            cols=_scaled(cols, scale, 16),
            rows=_scaled(rows, scale, 16),
            num_layers=layers,
            color_spacing=8,
            num_nets=_scaled(nets, scale, 4),
            min_pins=2,
            max_pins=5,
            multi_pin_bias=0.65,
            net_radius=_scaled(radius, scale, 6),
            obstacle_count=obstacles,
            obstacle_span=4,
            colored_obstacle_fraction=0.5,
            macro_count=1 if number >= 5 else 0,
            row_spacing=3,
            cell_spacing=3,
        )
        suite.append(SuiteCase(name=f"test{number}", spec=spec))
    return suite


def ispd19_suite(scale: float = 1.0, cases: Optional[List[int]] = None) -> List[SuiteCase]:
    """Return the ISPD-2019-like suite (Table III workload).

    The 2019 contest introduced "advanced routing rules"; the synthetic
    analogue tightens the color spacing relative to the pitch, increases the
    net density and the number of pre-colored obstacles -- the regime where
    decompose-after-routing runs out of colors while routing-time coloring
    still succeeds.
    """
    profiles = [
        (20, 20, 3, 22, 3, 8),
        (22, 22, 3, 30, 4, 8),
        (24, 24, 3, 38, 4, 9),
        (26, 26, 3, 48, 5, 9),
        (30, 30, 4, 58, 5, 10),
        (32, 32, 4, 68, 6, 10),
        (36, 36, 4, 82, 7, 11),
        (38, 38, 4, 96, 7, 11),
        (42, 42, 4, 112, 8, 12),
        (44, 44, 4, 134, 9, 10),
    ]
    wanted = cases if cases is not None else list(range(1, 11))
    suite: List[SuiteCase] = []
    for number in wanted:
        cols, rows, layers, nets, obstacles, radius = profiles[number - 1]
        spec = SyntheticSpec(
            name=f"ispd19like_test{number}",
            seed=1900 + number,
            cols=_scaled(cols, scale, 16),
            rows=_scaled(rows, scale, 16),
            num_layers=layers,
            color_spacing=8,
            num_nets=_scaled(nets, scale, 4),
            min_pins=2,
            max_pins=6,
            multi_pin_bias=0.7,
            net_radius=_scaled(radius, scale, 5),
            obstacle_count=obstacles,
            obstacle_span=5,
            colored_obstacle_fraction=0.6,
            macro_count=1 if number >= 4 else 0,
            row_spacing=3,
            cell_spacing=3,
            strap_period=4,
        )
        suite.append(SuiteCase(name=f"test{number}", spec=spec))
    return suite


def sparse_suite(scale: float = 1.0, cases: Optional[List[int]] = None) -> List[SuiteCase]:
    """Return the production-shaped sparse suite (batched-routing workload).

    The ispd18/19-like cases are dense relative to their die: net spans
    cover a large fraction of the (small) die, so the interaction-radius-
    expanded windows of consecutive nets almost always overlap and the
    disjoint-batch scheduler's mean batch size saturates around 1.5-3.
    Production layouts look different -- short, local nets scattered over a
    die that is large compared to any one net's span.  These three cases
    reproduce that regime (net-span/die ratio ~0.1-0.2 instead of ~0.5): a
    pending-net queue holds many pairwise-disjoint windows at once, so
    batches actually grow toward the executor's ``parallelism`` cap and the
    batched loop's concurrency becomes visible end-to-end.
    """
    profiles = [
        # (cols, rows, layers, nets, obstacles, net_radius)
        (64, 64, 3, 52, 3, 4),
        (80, 80, 3, 76, 4, 5),
        (96, 96, 4, 104, 4, 5),
    ]
    wanted = cases if cases is not None else list(range(1, len(profiles) + 1))
    suite: List[SuiteCase] = []
    for number in wanted:
        if not 1 <= number <= len(profiles):
            raise ValueError(
                f"sparse suite has cases 1-{len(profiles)}, got {number}"
            )
        cols, rows, layers, nets, obstacles, radius = profiles[number - 1]
        spec = SyntheticSpec(
            name=f"sparselike_test{number}",
            seed=2100 + number,
            cols=_scaled(cols, scale, 32),
            rows=_scaled(rows, scale, 32),
            num_layers=layers,
            color_spacing=8,
            num_nets=_scaled(nets, scale, 8),
            min_pins=2,
            max_pins=4,
            multi_pin_bias=0.55,
            # The locality radius is deliberately NOT scaled: shrinking the
            # die must not shrink the nets, or the span/die ratio (the whole
            # point of the suite) would drift back toward the dense regime.
            net_radius=radius,
            obstacle_count=obstacles,
            obstacle_span=3,
            colored_obstacle_fraction=0.5,
            macro_count=0,
            row_spacing=4,
            cell_spacing=4,
        )
        suite.append(SuiteCase(name=f"test{number}", spec=spec))
    return suite


def suite_case(suite_name: str, number: int, scale: float = 1.0) -> SuiteCase:
    """Return one case of a suite by name (``"ispd18"`` / ``"ispd19"`` / ``"sparse"``)."""
    if suite_name == "ispd18":
        return ispd18_suite(scale, cases=[number])[0]
    if suite_name == "ispd19":
        return ispd19_suite(scale, cases=[number])[0]
    if suite_name == "sparse":
        return sparse_suite(scale, cases=[number])[0]
    raise ValueError(
        f"unknown suite {suite_name!r}; expected 'ispd18', 'ispd19' or 'sparse'"
    )
