"""Resumable rip-up campaign state shared by all three routers.

A routing campaign is the outer negotiation loop: initial routing, then up
to ``max_ripup_iterations`` rounds of check / rip-up / reroute.  Before
checkpoint v2 that loop was invisible from outside ``run()`` -- a campaign
either finished or its work was lost.  :class:`CampaignState` reifies the
loop position so it can be checkpointed **every iteration** and a
preempted campaign resumed from its last completed round:

* ``iteration`` -- completed rip-up rounds (``0`` right after initial
  routing; the loop resumes at pass ``iteration``).
* ``solution`` -- the live solution object the loop mutates.  ``None``
  until initial routing has run, which is how ``run()`` distinguishes a
  fresh campaign from a resumed one.
* ``best_defects`` / ``best_routes`` -- the keep-the-best-iteration
  tracking of :class:`~repro.tpl.MrTPLRouter` (``(failed, conflicts)``
  tuple and the route snapshot it belongs to).  Plain routers leave them
  ``None``.  They must travel with the checkpoint: a resumed campaign that
  forgot a better earlier iteration would return a different solution than
  the uninterrupted run.
* ``done`` -- set by ``run()`` on normal completion, so a checkpoint of a
  finished campaign is returned as-is instead of re-entering the loop.

The dataclass itself is storage-only; (de)serialisation lives in
:mod:`repro.io.journal_io` (``campaign_to_dict`` / ``campaign_from_dict``)
next to the checkpoint document code.

Resumability contract (what makes resume bit-identical): every router
mutates grid state only through journalled ops, iterates rip-up /reroute
sets in sorted order wherever order can reach a search result, and keeps
all remaining cross-iteration state in this object.  The incremental
checkers need no persistence -- rebuilt fresh over the restored grid they
produce the same tallies as the warm ones (their differential guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.grid import NetRoute, RoutingSolution


@dataclass
class CampaignState:
    """Position and carried state of one rip-up/reroute campaign."""

    iteration: int = 0
    solution: Optional[RoutingSolution] = None
    best_defects: Optional[Tuple[int, int]] = None
    best_routes: Optional[Dict[str, NetRoute]] = None
    done: bool = False
    #: Cumulative :class:`~repro.sched.executor.ExecutorStats` counters of
    #: the whole campaign, across preemptions: on resume the checkpointed
    #: counters become the baseline and the new executor's (process-local)
    #: counters are added on top, so a campaign's failure history --
    #: retries, timeouts, replacements, demotions -- survives restarts.
    executor_stats: Optional[Dict[str, int]] = None
    # Baseline captured from a resumed checkpoint at the first
    # update_executor_stats call (the live executor restarts at zero).
    _stats_baseline: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def started(self) -> bool:
        """Return whether initial routing has already happened."""
        return self.solution is not None

    def update_executor_stats(self, executor) -> None:
        """Fold *executor*'s live counters into the campaign's history.

        Safe to call with ``None`` (serial campaigns have no executor).
        Idempotent per executor state: the merged view is always baseline
        (what the checkpoint already recorded when this process started)
        plus the executor's current counters, never a double count.
        """
        if executor is None:
            return
        current = executor.stats.as_dict()
        if self._stats_baseline is None:
            self._stats_baseline = dict(self.executor_stats or {})
        merged = dict(self._stats_baseline)
        for key, value in current.items():
            if isinstance(value, dict):
                # Nested numeric records (phase_seconds) merge key-by-key;
                # copied so the checkpoint never aliases live executor state.
                baseline = merged.get(key)
                baseline = dict(baseline) if isinstance(baseline, dict) else {}
                for inner_key, inner_value in value.items():
                    baseline[inner_key] = baseline.get(inner_key, 0) + inner_value
                merged[key] = baseline
            else:
                merged[key] = merged.get(key, 0) + value
        self.executor_stats = merged

    def note_checkpoint_fallback(self) -> None:
        """Record that resume fell back to an older retained checkpoint."""
        if self._stats_baseline is None:
            self._stats_baseline = dict(self.executor_stats or {})
        self._stats_baseline["checkpoint_fallbacks"] = (
            self._stats_baseline.get("checkpoint_fallbacks", 0) + 1
        )
        stats = dict(self.executor_stats or {})
        stats["checkpoint_fallbacks"] = stats.get("checkpoint_fallbacks", 0) + 1
        self.executor_stats = stats
