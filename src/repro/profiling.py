"""Lightweight wall-clock phase accounting for routing campaigns.

Every rip-up-and-reroute iteration decomposes into a fixed set of phases:

``plan``
    Disjoint-batch planning (``BatchScheduler.plan``).
``search``
    Pathfinding proper: serial batch routing, thread/fork batch compute,
    and live-reroute fallbacks.
``commit``
    Applying speculative results to the authoritative grid
    (``_commit_batch``).
``check``
    Incremental DRC / conflict re-validation in the routers' loops.
``ipc``
    Pool-backend traffic: suffix shipping, result receive, cursor syncs.
``checkpoint``
    Journal folding and checkpoint serialisation.

:class:`PhaseTimes` is the per-owner record (one per batch executor /
router); every ``add`` also feeds a process-global accumulator so the
bench harness can ask "how much of this process run went to each phase"
with one snapshot/delta pair, regardless of how many routers and
executors the scenario constructed.  The timers are plain
``perf_counter`` differences added from the call sites -- no tracing, no
callbacks -- so the accounting overhead is one float add per timed
region and the records are JSON-clean.

Attribution is non-overlapping by construction: the call sites time
leaf regions only (a pool batch's wall time is ``ipc``, not ``search``;
the serial fallback inside a failed parallel batch is ``search``).
"""

from __future__ import annotations

from typing import Dict, Optional

#: Canonical phase names, in display order.
PHASE_NAMES = ("plan", "search", "commit", "check", "ipc", "checkpoint")

#: Process-global accumulated seconds per phase (all PhaseTimes instances).
_global_seconds: Dict[str, float] = {name: 0.0 for name in PHASE_NAMES}


class PhaseTimes:
    """Accumulated wall-clock seconds per campaign phase."""

    __slots__ = ("_seconds",)

    def __init__(self, seconds: Optional[Dict[str, float]] = None) -> None:
        self._seconds: Dict[str, float] = {name: 0.0 for name in PHASE_NAMES}
        if seconds:
            for name, value in seconds.items():
                if name in self._seconds:
                    self._seconds[name] = float(value)

    def add(self, phase: str, seconds: float) -> None:
        """Charge *seconds* to *phase* (and to the process-global tally)."""
        self._seconds[phase] += seconds
        _global_seconds[phase] += seconds

    def as_dict(self) -> Dict[str, float]:
        """Return a JSON-clean copy (every phase present, in display order)."""
        return dict(self._seconds)

    def total(self) -> float:
        """Return the summed accounted seconds."""
        return sum(self._seconds.values())

    def merge(self, other: Dict[str, float]) -> None:
        """Add another record's seconds phase-by-phase (no global feed:
        the other record already fed the global tally when it accumulated)."""
        for name, value in other.items():
            if name in self._seconds:
                self._seconds[name] += float(value)


def global_phase_snapshot() -> Dict[str, float]:
    """Return a copy of the process-global per-phase tally."""
    return dict(_global_seconds)


def global_phase_delta(snapshot: Dict[str, float]) -> Dict[str, float]:
    """Return per-phase seconds accumulated since *snapshot*."""
    return {
        name: _global_seconds[name] - snapshot.get(name, 0.0) for name in PHASE_NAMES
    }


def merge_phase_seconds(
    base: Optional[Dict[str, float]], extra: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Return the phase-wise sum of two ``phase_seconds`` dicts (JSON-clean)."""
    merged = {name: 0.0 for name in PHASE_NAMES}
    for record in (base, extra):
        if record:
            for name, value in record.items():
                merged[name] = merged.get(name, 0.0) + float(value)
    return merged
