"""Design model: cells, instances, pins, nets, obstacles, and the design.

This is the input side of the routing problem formulation in the paper:
"(1) Layout, including the distribution of pre-placed standard cells,
macros, obstacles, and ports.  (2) The netlist, which describes the
connections between components in the layout.  (3) Design rules."
"""

from repro.design.pin import Pin, PinShape
from repro.design.net import Net
from repro.design.cell import CellMaster, CellInstance, MasterPin
from repro.design.obstacle import Obstacle
from repro.design.design import Design

__all__ = [
    "Pin",
    "PinShape",
    "Net",
    "CellMaster",
    "CellInstance",
    "MasterPin",
    "Obstacle",
    "Design",
]
