"""Standard-cell / macro masters and their placed instances.

Masters describe pin and obstruction geometry once in local coordinates
(LEF-style); instances place a master at an offset with an orientation and
produce chip-space :class:`~repro.design.pin.Pin` objects on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.design.pin import Pin, PinShape
from repro.geometry import Orientation, Point, Rect, Transform


@dataclass(frozen=True)
class MasterPin:
    """A pin template in master (local) coordinates."""

    name: str
    layer: int
    rect: Rect


@dataclass
class CellMaster:
    """A reusable cell or macro definition.

    Attributes
    ----------
    name:
        Master name, e.g. ``"NAND2_X1"`` or ``"RAM_MACRO"``.
    width / height:
        Footprint in DBU with the lower-left corner at the origin.
    pins:
        Pin templates in master coordinates.
    obstructions:
        Metal blockages in master coordinates as ``(layer, rect)`` pairs.
    is_macro:
        Macros block routing over a larger area and typically on more layers.
    """

    name: str
    width: int
    height: int
    pins: List[MasterPin] = field(default_factory=list)
    obstructions: List[PinShape] = field(default_factory=list)
    is_macro: bool = False

    def pin_by_name(self, name: str) -> MasterPin:
        """Return the master pin called *name*."""
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"master {self.name!r} has no pin {name!r}")

    def add_pin(self, name: str, layer: int, rect: Rect) -> MasterPin:
        """Register a pin template and return it."""
        pin = MasterPin(name, layer, rect)
        self.pins.append(pin)
        return pin

    def add_obstruction(self, layer: int, rect: Rect) -> None:
        """Register a routing blockage in master coordinates."""
        self.obstructions.append(PinShape(layer, rect))


@dataclass
class CellInstance:
    """A placed occurrence of a :class:`CellMaster`."""

    name: str
    master: CellMaster
    location: Point
    orientation: Orientation = Orientation.N

    @property
    def transform(self) -> Transform:
        """Return the master-to-chip transform of this instance."""
        return Transform(
            offset=self.location,
            orientation=self.orientation,
            width=self.master.width,
            height=self.master.height,
        )

    def footprint(self) -> Rect:
        """Return the placed bounding box of the instance."""
        size = self.transform.placed_size()
        return Rect(
            self.location.x,
            self.location.y,
            self.location.x + size.x,
            self.location.y + size.y,
        )

    def pin_shapes(self) -> Dict[str, PinShape]:
        """Return chip-space shapes of every pin keyed by pin name."""
        transform = self.transform
        return {
            pin.name: PinShape(pin.layer, transform.apply_to_rect(pin.rect))
            for pin in self.master.pins
        }

    def make_pin(self, pin_name: str) -> Pin:
        """Instantiate a chip-space :class:`Pin` for *pin_name*."""
        master_pin = self.master.pin_by_name(pin_name)
        rect = self.transform.apply_to_rect(master_pin.rect)
        pin = Pin(name=pin_name, instance_name=self.name)
        pin.add_shape(master_pin.layer, rect)
        return pin

    def obstruction_shapes(self) -> List[PinShape]:
        """Return chip-space obstruction rectangles of this instance."""
        transform = self.transform
        return [
            PinShape(shape.layer, transform.apply_to_rect(shape.rect))
            for shape in self.master.obstructions
        ]
