"""Nets: the connection requirements of the routing problem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.design.pin import Pin
from repro.geometry import Rect


@dataclass
class Net:
    """A multi-pin net.

    The paper's contribution targets nets with three or more pins -- the
    cases where 2-pin TPL routing "cannot dynamically adjust the
    already-colored paths when connecting multiple pins".

    :meth:`bounding_box` (and the derived
    :meth:`half_perimeter_wirelength`) is memoised: schedulers and routers
    query it once per scheduling decision, while the underlying pin shapes
    only change through :meth:`add_pin`, which invalidates the cache.
    """

    name: str
    pins: List[Pin] = field(default_factory=list)
    weight: float = 1.0

    def __post_init__(self) -> None:
        self._bbox_cache: Optional[Rect] = None
        for pin in self.pins:
            pin.net_name = self.name

    @property
    def num_pins(self) -> int:
        """Return the number of pins."""
        return len(self.pins)

    @property
    def is_multi_pin(self) -> bool:
        """Return ``True`` for nets with more than two pins."""
        return len(self.pins) > 2

    @property
    def is_routable(self) -> bool:
        """Return ``True`` when the net needs routing (at least two pins)."""
        return len(self.pins) >= 2

    def add_pin(self, pin: Pin) -> None:
        """Attach *pin* to this net (invalidates the bounding-box memo)."""
        pin.net_name = self.name
        self.pins.append(pin)
        self._bbox_cache = None

    def bounding_box(self) -> Rect:
        """Return the bounding box over all pin shapes (memoised)."""
        if self._bbox_cache is None:
            if not self.pins:
                raise ValueError(f"net {self.name!r} has no pins")
            self._bbox_cache = Rect.bounding([pin.bounding_box() for pin in self.pins])
        return self._bbox_cache

    def half_perimeter_wirelength(self) -> int:
        """Return the HPWL lower bound on wirelength for this net.

        Served from the memoised bounding box, so schedulers can call it
        per scheduling decision without rebuilding the pin-shape union.
        """
        box = self.bounding_box()
        return box.width + box.height

    def pin_by_name(self, full_name: str) -> Pin:
        """Return the pin whose :attr:`Pin.full_name` equals *full_name*."""
        for pin in self.pins:
            if pin.full_name == full_name:
                return pin
        raise KeyError(f"net {self.name!r} has no pin {full_name!r}")
