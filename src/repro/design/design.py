"""The top-level design container: layout + netlist + technology."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.design.cell import CellInstance, CellMaster
from repro.design.net import Net
from repro.design.obstacle import Obstacle
from repro.design.pin import Pin, PinShape
from repro.geometry import Rect
from repro.tech import TechStack


@dataclass
class Design:
    """Everything the routers need about one benchmark case.

    A design owns:

    * the technology stack (layers + design rules),
    * the die area,
    * placed cell instances and macros,
    * explicit obstacles (blockages, pre-routed shapes, possibly pre-colored),
    * the netlist (multi-pin nets referencing chip-space pins).
    """

    name: str
    tech: TechStack
    die_area: Rect
    masters: Dict[str, CellMaster] = field(default_factory=dict)
    instances: Dict[str, CellInstance] = field(default_factory=dict)
    nets: List[Net] = field(default_factory=list)
    obstacles: List[Obstacle] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------

    def add_master(self, master: CellMaster) -> CellMaster:
        """Register a cell master (raises on duplicate names)."""
        if master.name in self.masters:
            raise ValueError(f"duplicate master {master.name!r}")
        self.masters[master.name] = master
        return master

    def add_instance(self, instance: CellInstance) -> CellInstance:
        """Place a cell instance (raises on duplicate names)."""
        if instance.name in self.instances:
            raise ValueError(f"duplicate instance {instance.name!r}")
        self.instances[instance.name] = instance
        return instance

    def add_net(self, net: Net) -> Net:
        """Append a net to the netlist."""
        self.nets.append(net)
        return net

    def add_obstacle(self, obstacle: Obstacle) -> Obstacle:
        """Register an explicit routing obstacle."""
        self.obstacles.append(obstacle)
        return obstacle

    # -- lookups ----------------------------------------------------------------

    def net_by_name(self, name: str) -> Net:
        """Return the net called *name* (raises ``KeyError`` if unknown)."""
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no net named {name!r}")

    def routable_nets(self) -> List[Net]:
        """Return the nets with at least two pins, in netlist order."""
        return [net for net in self.nets if net.is_routable]

    def multi_pin_nets(self) -> List[Net]:
        """Return the nets with more than two pins."""
        return [net for net in self.nets if net.is_multi_pin]

    def all_pins(self) -> Iterator[Pin]:
        """Iterate over every pin of every net."""
        for net in self.nets:
            yield from net.pins

    # -- aggregate geometry -------------------------------------------------------

    def blockage_shapes(self) -> List[PinShape]:
        """Return every shape the router must treat as a blockage.

        This includes explicit obstacles and instance obstructions, but not
        pin shapes (pins block other nets, which the routing grid handles as
        per-net occupancy rather than hard blockage).
        """
        shapes: List[PinShape] = [PinShape(obs.layer, obs.rect) for obs in self.obstacles]
        for instance in self.instances.values():
            shapes.extend(instance.obstruction_shapes())
        return shapes

    def colored_obstacles(self) -> List[Obstacle]:
        """Return obstacles carrying a pre-assigned TPL mask."""
        return [obs for obs in self.obstacles if obs.is_colored]

    def pin_shapes_by_net(self) -> Dict[str, List[PinShape]]:
        """Return every pin shape grouped by owning net name."""
        result: Dict[str, List[PinShape]] = {}
        for net in self.nets:
            shapes: List[PinShape] = []
            for pin in net.pins:
                shapes.extend(pin.shapes)
            result[net.name] = shapes
        return result

    # -- statistics -----------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Return summary statistics used by reports and benchmark tables."""
        routable = self.routable_nets()
        multi = [net for net in routable if net.is_multi_pin]
        pin_counts = [net.num_pins for net in routable]
        return {
            "nets": len(self.nets),
            "routable_nets": len(routable),
            "multi_pin_nets": len(multi),
            "pins": sum(pin_counts),
            "max_pins_per_net": max(pin_counts, default=0),
            "instances": len(self.instances),
            "obstacles": len(self.obstacles),
            "layers": self.tech.num_layers,
            "die_width": self.die_area.width,
            "die_height": self.die_area.height,
        }

    def validate(self) -> List[str]:
        """Return a list of consistency problems (empty when the design is clean).

        Checks performed:

        * every pin shape lies inside the die area,
        * every pin references a layer that exists in the technology,
        * nets have unique names,
        * every net pin belongs to that net (back-reference consistency).
        """
        problems: List[str] = []
        seen_names: Dict[str, int] = {}
        for net in self.nets:
            seen_names[net.name] = seen_names.get(net.name, 0) + 1
            for pin in net.pins:
                if pin.net_name != net.name:
                    problems.append(
                        f"pin {pin.full_name!r} back-references net {pin.net_name!r}, "
                        f"expected {net.name!r}"
                    )
                for shape in pin.shapes:
                    if not (0 <= shape.layer < self.tech.num_layers):
                        problems.append(
                            f"pin {pin.full_name!r} uses unknown layer {shape.layer}"
                        )
                    if not self.die_area.contains_rect(shape.rect):
                        problems.append(
                            f"pin {pin.full_name!r} shape {shape.rect} is outside the die"
                        )
        for name, count in seen_names.items():
            if count > 1:
                problems.append(f"net name {name!r} appears {count} times")
        for obstacle in self.obstacles:
            if not (0 <= obstacle.layer < self.tech.num_layers):
                problems.append(f"obstacle {obstacle.name!r} uses unknown layer {obstacle.layer}")
        return problems
