"""Routing obstacles (blockages)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect


@dataclass(frozen=True)
class Obstacle:
    """A rectangular region on one layer that routing must avoid.

    Obstacles come from macro blockages, pre-routed power straps, or the
    explicit blockage statements of the benchmark format.  They block grid
    vertices they cover and also participate in spacing / color interactions
    when they carry a pre-assigned mask (``color`` in ``{0, 1, 2}``) as in the
    paper's Fig. 3 example where two obstacles are fixed on Mask 2 and Mask 3.
    """

    layer: int
    rect: Rect
    name: str = ""
    color: int = -1  # -1 means uncolored metal / pure blockage

    @property
    def is_colored(self) -> bool:
        """Return ``True`` when the obstacle has a pre-assigned mask."""
        return 0 <= self.color <= 2
