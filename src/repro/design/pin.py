"""Pins: the electrical terminals a router must connect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry import Point, Rect


@dataclass(frozen=True)
class PinShape:
    """One metal rectangle of a pin on a specific routing layer."""

    layer: int
    rect: Rect


@dataclass
class Pin:
    """A named terminal consisting of one or more metal shapes.

    A pin may belong to a cell instance (``instance_name`` set) or be a
    top-level port (``instance_name`` is ``None``).  The full name used in
    netlists is ``instance/pin`` for instance pins and just the pin name for
    ports.
    """

    name: str
    shapes: List[PinShape] = field(default_factory=list)
    instance_name: Optional[str] = None
    net_name: Optional[str] = None

    @property
    def full_name(self) -> str:
        """Return the hierarchical pin name (``inst/pin`` or ``pin``)."""
        if self.instance_name:
            return f"{self.instance_name}/{self.name}"
        return self.name

    @property
    def is_port(self) -> bool:
        """Return ``True`` for a top-level port (no owning instance)."""
        return self.instance_name is None

    def add_shape(self, layer: int, rect: Rect) -> None:
        """Append a metal rectangle on *layer*."""
        self.shapes.append(PinShape(layer, rect))

    def layers(self) -> List[int]:
        """Return the sorted list of layers on which the pin has metal."""
        return sorted({shape.layer for shape in self.shapes})

    def bounding_box(self) -> Rect:
        """Return the bounding box over all shapes (any layer)."""
        if not self.shapes:
            raise ValueError(f"pin {self.full_name!r} has no shapes")
        return Rect.bounding([shape.rect for shape in self.shapes])

    def center(self) -> Point:
        """Return the centre of the bounding box; used for Steiner estimates."""
        return self.bounding_box().center

    def shapes_on(self, layer: int) -> List[Rect]:
        """Return the pin rectangles on *layer*."""
        return [shape.rect for shape in self.shapes if shape.layer == layer]

    def covers(self, layer: int, point: Point) -> bool:
        """Return ``True`` when *point* on *layer* lies inside any pin shape."""
        return any(shape.rect.contains_point(point) for shape in self.shapes if shape.layer == layer)
