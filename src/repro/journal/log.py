"""The ordered mutation log and its replay/cursor machinery.

A :class:`MutationJournal` is deliberately dumb: an append-only list of op
tuples plus cursor arithmetic.  All semantics live in
:meth:`RoutingGrid.apply_op`, which both *produces* the stream (appending
every op it applies to the attached journal) and *consumes* it on replay --
so a replayed grid runs the exact same code path, in the same order, as the
live grid did, and ends up with bit-identical occupancy, color, pressure
and history buffers.

Cursors are plain op counts.  ``journal.suffix(cursor)`` is everything a
lagging replica has not seen; replaying it and advancing the cursor to
``journal.cursor`` re-synchronises the replica.  The persistent worker
pool of :class:`repro.sched.BatchExecutor` runs exactly this loop between
batches.

Snapshot folding
----------------

A journal grows with the campaign, so a plain :meth:`~MutationJournal
.compact` trades memory for replayability: the dropped prefix can never
rebuild a fresh grid again.  :meth:`MutationJournal.fold` closes that gap --
it pairs the compaction with a **snapshot** (an opaque, serialisable
document, in practice :meth:`RoutingGrid.snapshot_state` output taken at
the fold cursor), so the journal becomes *snapshot + suffix*: bootstrap a
fresh grid by restoring the snapshot and replaying only the suffix.  That
is the checkpoint-v2 representation -- resume time and document size are
bounded by the snapshot plus the ops since the last fold, not by campaign
age.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from repro.journal.ops import Op, validate_op


def replay_ops(grid, ops: Sequence[Op]) -> int:
    """Apply *ops*, in order, through ``grid.apply_op``; return the count.

    The target grid must start from the same base state the ops were
    recorded against (for a full journal: a freshly constructed grid over
    the same design).  If the grid has its own journal attached the
    replayed ops are re-recorded there, so a replica's journal stays a
    faithful copy of the stream it consumed.
    """
    apply_op = grid.apply_op
    count = 0
    for op in ops:
        apply_op(op)
        count += 1
    return count


class MutationJournal:
    """Append-only, ordered log of :class:`RoutingGrid` mutation ops.

    Attach with :meth:`RoutingGrid.attach_journal`; from then on every op
    the grid applies is recorded here.  The journal itself never touches a
    grid -- replay goes through :func:`replay_ops` so the grid's single
    choke point stays the only mutation path.
    """

    __slots__ = ("ops", "_base", "snapshot", "_snapshot_cursor")

    def __init__(
        self,
        ops: Optional[Sequence[Op]] = None,
        *,
        base: int = 0,
        snapshot: Optional[Any] = None,
    ) -> None:
        self.ops: List[Op] = [validate_op(tuple(op)) for op in ops] if ops else []
        # Cursor of self.ops[0]: non-zero once compact() has dropped a
        # fully-consumed prefix.  Cursors stay absolute across compaction.
        if base < 0:
            raise ValueError(f"journal base must be >= 0, got {base}")
        if base and snapshot is None:
            raise ValueError(
                "a journal starting at a non-zero base needs the fold "
                "snapshot describing the compacted prefix"
            )
        self._base = base
        # Folded-prefix snapshot: the grid state document equivalent to
        # replaying ops [0, _snapshot_cursor).  None until fold() runs.
        self.snapshot: Optional[Any] = snapshot
        self._snapshot_cursor = base if snapshot is not None else 0

    # -- recording ----------------------------------------------------------

    def record(self, op: Op) -> None:
        """Append one op (called by ``RoutingGrid.apply_op``)."""
        self.ops.append(op)

    # -- cursors ------------------------------------------------------------

    @property
    def base(self) -> int:
        """Return the cursor of the oldest op still held (0 = complete log)."""
        return self._base

    @property
    def cursor(self) -> int:
        """Return the current end-of-log cursor (== number of ops recorded)."""
        return self._base + len(self.ops)

    @property
    def snapshot_cursor(self) -> int:
        """Return the cursor the fold :attr:`snapshot` corresponds to.

        The snapshot is equivalent to replaying ops ``[0, snapshot_cursor)``
        onto a fresh grid; ``0`` when no fold has happened yet.
        """
        return self._snapshot_cursor

    def suffix(self, cursor: int) -> List[Op]:
        """Return every op recorded at or after *cursor* (oldest first).

        Raises on cursors outside ``[base, cursor]``: a cursor below the
        base addresses compacted-away ops, and a cursor **past the head**
        (e.g. a stale worker cursor surviving a discarded pool) would
        silently report "nothing to replay" while the replica is actually
        desynchronised -- both are consumer bugs that must fail loudly.
        """
        if cursor < self._base:
            raise ValueError(
                f"journal cursor must be >= base {self._base} "
                f"(ops before it were compacted away), got {cursor}"
            )
        if cursor > self.cursor:
            raise ValueError(
                f"journal cursor must be <= head {self.cursor} "
                f"(a future cursor means the consumer is desynchronised), "
                f"got {cursor}"
            )
        return self.ops[cursor - self._base :]

    def compact(self, before_cursor: int) -> int:
        """Drop ops before *before_cursor*; return how many were dropped.

        Safe only when every consumer's cursor is already at or past
        *before_cursor* -- afterwards :meth:`suffix` refuses older cursors
        and the journal can no longer replay a fresh grid from scratch
        (the executor compacts only the journal it owns for its worker
        pool; campaign journals destined for checkpoints are never
        compacted).  Bounds the memory of long journal-fed campaigns.
        """
        keep = min(max(before_cursor, self._base), self.cursor)
        dropped = keep - self._base
        if dropped:
            del self.ops[:dropped]
            self._base = keep
        return dropped

    def fold(self, snapshot: Any, cursor: Optional[int] = None) -> int:
        """Fold the prefix before *cursor* into *snapshot*; return ops dropped.

        *snapshot* must describe the grid state after applying ops
        ``[0, cursor)`` -- in practice :meth:`RoutingGrid.snapshot_state`
        taken when the journal head was at *cursor* (the default: the
        current head).  Afterwards the journal is *snapshot + suffix*:
        unlike a plain :meth:`compact` it can still :meth:`bootstrap` a
        fresh grid and still serialises through
        :func:`repro.io.journal_io.journal_to_dict`, while memory and
        replay time stay bounded by the suffix length.  The same consumer
        rule as :meth:`compact` applies: every live cursor must already be
        at or past *cursor*.
        """
        if cursor is None:
            cursor = self.cursor
        if not self._base <= cursor <= self.cursor:
            raise ValueError(
                f"fold cursor must lie in [{self._base}, {self.cursor}], got {cursor}"
            )
        self.snapshot = snapshot
        self._snapshot_cursor = cursor
        return self.compact(cursor)

    # -- replay -------------------------------------------------------------

    def replay_onto(self, grid, start: int = 0) -> int:
        """Replay ops from cursor *start* onto *grid*; return the count."""
        return replay_ops(grid, self.suffix(start))

    def bootstrap(self, grid) -> int:
        """Bring a **fresh** *grid* up to this journal's head; return ops replayed.

        For a complete log this is a plain full replay.  For a folded
        journal the grid is first restored from the fold snapshot
        (``grid.restore_state``) and only the suffix past it is replayed --
        the O(snapshot + suffix) bootstrap that checkpoint-v2 resume and
        late-joining pool workers rely on.  The grid must start from the
        journal's base state (a freshly constructed grid over the same
        design) and must not have a journal attached yet (attach after, so
        the replayed ops are not re-recorded into this very journal).
        """
        if self.snapshot is not None:
            if self._snapshot_cursor < self._base:
                raise ValueError(
                    "journal was compacted past its fold snapshot "
                    f"(snapshot at {self._snapshot_cursor}, base {self._base}); "
                    "it can no longer bootstrap a fresh grid"
                )
            grid.restore_state(self.snapshot)
            return replay_ops(grid, self.suffix(self._snapshot_cursor))
        if self._base:
            raise ValueError(
                f"journal was compacted (base {self._base}) without a fold "
                "snapshot; it can no longer bootstrap a fresh grid"
            )
        return self.replay_onto(grid, 0)

    # -- conveniences -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MutationJournal(ops={len(self.ops)}, base={self._base})"
