"""The ordered mutation log and its replay/cursor machinery.

A :class:`MutationJournal` is deliberately dumb: an append-only list of op
tuples plus cursor arithmetic.  All semantics live in
:meth:`RoutingGrid.apply_op`, which both *produces* the stream (appending
every op it applies to the attached journal) and *consumes* it on replay --
so a replayed grid runs the exact same code path, in the same order, as the
live grid did, and ends up with bit-identical occupancy, color, pressure
and history buffers.

Cursors are plain op counts.  ``journal.suffix(cursor)`` is everything a
lagging replica has not seen; replaying it and advancing the cursor to
``journal.cursor`` re-synchronises the replica.  The persistent worker
pool of :class:`repro.sched.BatchExecutor` runs exactly this loop between
batches.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.journal.ops import Op, validate_op


def replay_ops(grid, ops: Sequence[Op]) -> int:
    """Apply *ops*, in order, through ``grid.apply_op``; return the count.

    The target grid must start from the same base state the ops were
    recorded against (for a full journal: a freshly constructed grid over
    the same design).  If the grid has its own journal attached the
    replayed ops are re-recorded there, so a replica's journal stays a
    faithful copy of the stream it consumed.
    """
    apply_op = grid.apply_op
    count = 0
    for op in ops:
        apply_op(op)
        count += 1
    return count


class MutationJournal:
    """Append-only, ordered log of :class:`RoutingGrid` mutation ops.

    Attach with :meth:`RoutingGrid.attach_journal`; from then on every op
    the grid applies is recorded here.  The journal itself never touches a
    grid -- replay goes through :func:`replay_ops` so the grid's single
    choke point stays the only mutation path.
    """

    __slots__ = ("ops", "_base")

    def __init__(self, ops: Optional[Sequence[Op]] = None) -> None:
        self.ops: List[Op] = [validate_op(tuple(op)) for op in ops] if ops else []
        # Cursor of self.ops[0]: non-zero once compact() has dropped a
        # fully-consumed prefix.  Cursors stay absolute across compaction.
        self._base = 0

    # -- recording ----------------------------------------------------------

    def record(self, op: Op) -> None:
        """Append one op (called by ``RoutingGrid.apply_op``)."""
        self.ops.append(op)

    # -- cursors ------------------------------------------------------------

    @property
    def base(self) -> int:
        """Return the cursor of the oldest op still held (0 = complete log)."""
        return self._base

    @property
    def cursor(self) -> int:
        """Return the current end-of-log cursor (== number of ops recorded)."""
        return self._base + len(self.ops)

    def suffix(self, cursor: int) -> List[Op]:
        """Return every op recorded at or after *cursor* (oldest first)."""
        if cursor < self._base:
            raise ValueError(
                f"journal cursor must be >= base {self._base} "
                f"(ops before it were compacted away), got {cursor}"
            )
        return self.ops[cursor - self._base :]

    def compact(self, before_cursor: int) -> int:
        """Drop ops before *before_cursor*; return how many were dropped.

        Safe only when every consumer's cursor is already at or past
        *before_cursor* -- afterwards :meth:`suffix` refuses older cursors
        and the journal can no longer replay a fresh grid from scratch
        (the executor compacts only the journal it owns for its worker
        pool; campaign journals destined for checkpoints are never
        compacted).  Bounds the memory of long journal-fed campaigns.
        """
        keep = min(max(before_cursor, self._base), self.cursor)
        dropped = keep - self._base
        if dropped:
            del self.ops[:dropped]
            self._base = keep
        return dropped

    # -- replay -------------------------------------------------------------

    def replay_onto(self, grid, start: int = 0) -> int:
        """Replay ops from cursor *start* onto *grid*; return the count."""
        return replay_ops(grid, self.suffix(start))

    # -- conveniences -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MutationJournal(ops={len(self.ops)}, base={self._base})"
