"""The canonical op model of :class:`~repro.grid.RoutingGrid` mutations.

Every mutation of searchable grid state is one **op**: a plain tuple whose
first element is the kind tag and whose remaining elements are ints, floats
or strings.  Ops are what :meth:`RoutingGrid.apply_op` -- the single
mutation choke point -- consumes, what the attached
:class:`~repro.journal.MutationJournal` records, what the
:mod:`repro.sched` commit sinks log, and what :mod:`repro.io.journal_io`
serialises.  Keeping them flat tuples means they pickle across process
boundaries (the persistent worker pool ships journal suffixes through
pipes) and round-trip through JSON without custom encoders.

Op shapes (vertex addresses are flat indices, see
:meth:`RoutingGrid.index_of`):

=================  =====================================================
``("intern", name)``                intern *name*, assigning the next net id
``("occupy", net_id, index)``       net *net_id* places metal at *index*
``("release", net_id)``             rip up every vertex of *net_id*
``("color", net_id, index, color)`` mask-color *net_id*'s metal at *index*
``("history", index, amount)``      add *amount* history cost at *index*
``("decay", factor)``               multiply all history entries by *factor*
``("block_vertex", index)``         hard-block one vertex
``("block_rect", layer, xlo, ylo, xhi, yhi, name)``  block a rectangle
``("reset",)``                      drop all routing state (keep blockages)
=================  =====================================================

``intern`` ops exist so replay assigns net ids in the exact order the live
grid did: the occupancy buffer stores interned ids, so bit-identical replay
requires bit-identical interning.  The grid emits one the first time a net
name is seen (after construction; construction-time interning is replayed
by constructing the fresh grid from the same design).

Ops are also the *suffix* half of a folded journal: once
:meth:`MutationJournal.fold` compacts the log prefix into a
:meth:`RoutingGrid.snapshot_state` document, bootstrapping a replica is
snapshot restore plus replay of exactly these tuples past the fold cursor
-- the O(grid + suffix) path checkpoint-v2 resume and late-joining pool
workers ride on.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

#: One grid mutation: ``(kind, *payload)`` with int/float/str payloads only.
Op = Tuple

OP_INTERN = "intern"
OP_OCCUPY = "occupy"
OP_RELEASE = "release"
OP_COLOR = "color"
OP_HISTORY = "history"
OP_DECAY = "decay"
OP_BLOCK_VERTEX = "block_vertex"
OP_BLOCK_RECT = "block_rect"
OP_RESET = "reset"

#: Every op kind with its exact tuple arity (tag included).
OP_KINDS = {
    OP_INTERN: 2,
    OP_OCCUPY: 3,
    OP_RELEASE: 2,
    OP_COLOR: 4,
    OP_HISTORY: 3,
    OP_DECAY: 2,
    OP_BLOCK_VERTEX: 2,
    OP_BLOCK_RECT: 7,
    OP_RESET: 1,
}


def validate_op(op: Op) -> Op:
    """Return *op* unchanged after checking its kind tag and arity."""
    if not op or op[0] not in OP_KINDS:
        raise ValueError(f"unknown journal op {op!r}")
    if len(op) != OP_KINDS[op[0]]:
        raise ValueError(
            f"malformed {op[0]!r} op {op!r}: expected arity {OP_KINDS[op[0]]}"
        )
    return op


def ops_to_jsonable(ops: Iterable[Op]) -> List[list]:
    """Return *ops* as JSON-serialisable lists (tuples do not survive JSON)."""
    return [list(op) for op in ops]


def ops_from_jsonable(data: Sequence[Sequence]) -> List[Op]:
    """Rebuild the op tuples from :func:`ops_to_jsonable` output.

    Each op is validated, so a truncated or hand-edited journal file fails
    loudly at load time instead of silently desynchronising a replay.
    """
    return [validate_op(tuple(entry)) for entry in data]
