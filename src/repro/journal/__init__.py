"""Event-sourced journal of :class:`~repro.grid.RoutingGrid` mutations.

The rip-up-and-reroute loops are long campaigns of small grid mutations:
occupancy commits, releases, mask (re)colorings, history bumps and decays.
This package makes that mutation stream a first-class, serialisable
subsystem:

* :mod:`repro.journal.ops` defines the **op model** -- every grid mutation
  is one plain tuple of ints/floats/strings (JSON- and pickle-friendly,
  crosses process boundaries with no custom reducers);
* :class:`MutationJournal` is the **ordered log**: the grid appends every
  op it applies (see :meth:`RoutingGrid.apply_op`, the single mutation
  choke point) to its attached journal, and replaying the log onto a fresh
  grid over the same design reproduces the live grid's occupancy, color,
  pressure and history buffers **bit-identically**;
* :func:`replay_ops` / :meth:`MutationJournal.replay_onto` perform that
  replay, and **cursors** (plain op counts) let a consumer catch up by
  replaying only the suffix it has not seen -- the mechanism behind the
  persistent ``pool`` backend of :class:`repro.sched.BatchExecutor`, whose
  workers fork once and re-synchronise between batches by suffix replay
  instead of re-forking, and behind the checkpoint/resume path of
  :mod:`repro.io.journal_io`.
"""

from repro.journal.log import MutationJournal, replay_ops
from repro.journal.ops import (
    OP_BLOCK_RECT,
    OP_BLOCK_VERTEX,
    OP_COLOR,
    OP_DECAY,
    OP_HISTORY,
    OP_INTERN,
    OP_KINDS,
    OP_OCCUPY,
    OP_RELEASE,
    OP_RESET,
    Op,
    ops_from_jsonable,
    ops_to_jsonable,
)

__all__ = [
    "MutationJournal",
    "Op",
    "OP_BLOCK_RECT",
    "OP_BLOCK_VERTEX",
    "OP_COLOR",
    "OP_DECAY",
    "OP_HISTORY",
    "OP_INTERN",
    "OP_KINDS",
    "OP_OCCUPY",
    "OP_RELEASE",
    "OP_RESET",
    "ops_from_jsonable",
    "ops_to_jsonable",
    "replay_ops",
]
