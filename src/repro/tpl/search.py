"""Color-state searching (paper Algorithm 2).

The search is a multi-source Dijkstra over the routing grid where every
label additionally carries a :class:`~repro.tpl.color_state.ColorState`.
For every expansion direction the cost of each of the three masks is
evaluated (traditional cost + color conflict cost + a stitch cost when the
mask is not in the current vertex's color state and the move is planar);
the minimum over masks becomes the edge cost and the set of masks achieving
that minimum becomes the neighbour's color state.  Keeping the full set --
rather than committing to one mask -- is the paper's key idea: it widens the
solution space so the backtrace can later pick whichever mask avoids
conflicts best.

Two implementation notes:

* :class:`ColorStateSearch` is a thin adapter over the shared
  :class:`repro.search.SearchCore`: the color state travels as the 3-bit
  ``aux`` integer of the core's labels, and all grid state is read from the
  flat index buffers.
* A re-visit of a vertex at **equal** cost whose color state holds masks the
  stored state lacks *merges* the two states (bitwise OR) instead of being
  discarded, and the vertex is re-expanded if needed -- so the backtrace
  keeps the full mask freedom of every cost-optimal predecessor path.  (The
  seed implementation dropped such revisits, silently narrowing Alg. 2's
  state space.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.dr.cost import CostModel, TargetBounds
from repro.geometry import GridPoint
from repro.grid import INDEX_DIRECTION, NUM_DIRECTIONS, Direction, RoutingGrid
from repro.native.spec import MODE_COLOR_STATE, attach_native_spec
from repro.search import CoreResult, SearchCore
from repro.tpl.color_state import ColorState

#: Costs within this relative tolerance of the minimum keep their mask in the
#: color state; an exact equality test would make the state collapse to a
#: single color on any floating-point noise.
_COST_TOLERANCE = 1e-9


@dataclass
class VertexLabel:
    """Search label of one grid vertex."""

    cost: float
    color_state: ColorState
    parent: Optional[GridPoint] = None
    parent_direction: Optional[Direction] = None


def _direction_between(parent: GridPoint, child: GridPoint) -> Optional[Direction]:
    """Return the direction stepping ``parent -> child``, if adjacent."""
    delta = (child.layer - parent.layer, child.col - parent.col, child.row - parent.row)
    for direction in INDEX_DIRECTION:
        if direction.delta == delta:
            return direction
    return None


class ColorSearchResult:
    """Outcome of one color-state search.

    Wraps either a :class:`~repro.search.CoreResult` (flat engine) or
    explicit ``GridPoint``-keyed labels (legacy reference engine); the
    ``labels`` view is materialised lazily.
    """

    def __init__(
        self,
        reached: Optional[GridPoint] = None,
        labels: Optional[Dict[GridPoint, VertexLabel]] = None,
        expansions: int = 0,
        core: Optional[CoreResult] = None,
        grid: Optional[RoutingGrid] = None,
    ) -> None:
        self._core = core
        self._grid = grid
        self._reached = reached
        self._labels = labels
        self.expansions = core.expansions if core is not None else expansions

    @property
    def reached(self) -> Optional[GridPoint]:
        """Return the unreached-pin vertex the search stopped at, if any."""
        if self._reached is None and self._core is not None and self._core.found:
            self._reached = self._grid.vertex_of(self._core.reached)
        return self._reached

    @property
    def found(self) -> bool:
        """Return ``True`` when an unreached pin was found."""
        if self._core is not None:
            return self._core.found
        return self._reached is not None

    @property
    def labels(self) -> Dict[GridPoint, VertexLabel]:
        """Return the full label map (GridPoint view, built on demand)."""
        if self._labels is None:
            if self._core is None:
                self._labels = {}
                return self._labels
            core, grid = self._core, self._grid
            vertex_of = grid.vertex_of
            labels: Dict[GridPoint, VertexLabel] = {}
            for node, cost in core.cost.items():
                vertex = vertex_of(node)
                pred = core.parent.get(node, -1)
                parent = vertex_of(pred) if pred >= 0 else None
                labels[vertex] = VertexLabel(
                    cost=cost,
                    color_state=ColorState(core.aux[node]),
                    parent=parent,
                    parent_direction=(
                        _direction_between(parent, vertex) if parent is not None else None
                    ),
                )
            self._labels = labels
        return self._labels

    def path_to_source(self) -> List[GridPoint]:
        """Return the vertex path from the reached pin back to a source.

        Ordered destination-first (the order the backtrace of Algorithm 3
        walks it).  Raises ``ValueError`` on a failed search.
        """
        if self._core is not None:
            if not self._core.found:
                raise ValueError("cannot backtrace a failed color-state search")
            vertex_of = self._grid.vertex_of
            return [vertex_of(node) for node in self._core.node_path()]
        if self._reached is None:
            raise ValueError("cannot backtrace a failed color-state search")
        path: List[GridPoint] = []
        cursor: Optional[GridPoint] = self._reached
        while cursor is not None:
            path.append(cursor)
            cursor = self._labels[cursor].parent
        return path

    def color_state_of(self, vertex: GridPoint) -> ColorState:
        """Return the color state assigned to *vertex* during the search."""
        if self._core is not None:
            return ColorState(self._core.aux_at(self._grid.index_of(vertex)))
        return self._labels[vertex].color_state


class ColorStateSearch:
    """The color-state searching engine of Algorithm 2."""

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 2_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.rules = grid.rules
        self.max_expansions = max_expansions
        self.core = SearchCore(grid, cost_model, max_expansions)

    def search(
        self,
        sources: Mapping[GridPoint, ColorState],
        targets: Set[GridPoint],
        net_name: str,
    ) -> ColorSearchResult:
        """Search from *sources* to any vertex of *targets* for *net_name*.

        Parameters
        ----------
        sources:
            Seed vertices mapped to their initial color states.  Fresh pins
            start at ``111`` (paper Alg. 1 line 6); vertices of the already
            routed-and-colored tree start at their committed single color so
            that joining them with a different mask is charged a stitch.
        targets:
            Access vertices of the still-unreached pins.
        net_name:
            The net being routed.
        """
        if not targets:
            return ColorSearchResult()
        grid = self.grid
        bounds = TargetBounds.from_targets(targets)
        index_of = grid.index_of
        seeds: List[Tuple[int, int]] = []
        for vertex, state in sources.items():
            if not grid.in_bounds(vertex) or grid.is_blocked(vertex):
                continue
            seeds.append((index_of(vertex), state.bits))
        target_nodes = {index_of(t) for t in targets if grid.in_bounds(t)}

        net_id = grid.net_id(net_name)
        expand = make_color_state_expand(grid, self.cost_model, net_name, net_id)
        self.core.max_expansions = self.max_expansions
        core = self.core.run(
            seeds,
            target_nodes,
            expand,
            bounds=bounds,
            merge_aux=True,
            improve_eps=_COST_TOLERANCE,
            tie_eps=_COST_TOLERANCE,
            buffered=True,
        )
        return ColorSearchResult(core=core, grid=grid)


def make_color_state_expand(
    grid: RoutingGrid,
    cost_model: CostModel,
    net_name: str,
    net_id: int,
) -> Callable[[int, float, int, List[int], List[float], List[int]], int]:
    """Return the Alg. 2 buffered expansion callback over flat indices.

    Implements Algorithm 2 lines 9-17 per direction: the 3x1 per-mask cost
    (weighted traditional cost + color conflict cost + stitch cost for masks
    outside the current state on planar moves), the minimum of which becomes
    the edge cost while the set of masks achieving it (within
    ``_COST_TOLERANCE``) becomes the successor's color-state bits.
    Successors are written into the caller's preallocated buffers (the
    :class:`~repro.search.SearchCore` buffered protocol).

    With numpy acceleration on, the per-successor congestion and per-mask
    pressure reads are hoisted into per-search snapshots
    (:meth:`CostModel.congestion_snapshot` /
    :meth:`CostModel.color_pressure_snapshot`); the fallback reads the live
    buffers per successor with identical arithmetic.

    Crossing to another layer (a via) resets the mask freedom: the new
    layer's metal has no stitch relationship with the current one, so all
    masks allowed by the neighbour's surroundings are candidates.
    """
    neighbor_table = grid.neighbor_table()
    blocked = grid.blocked_buffer()
    base_costs = cost_model.base_cost_table()
    rules = grid.rules
    alpha = rules.alpha
    gamma = rules.gamma
    stitch_penalty = cost_model.stitch_cost()
    plane = grid.plane_size
    # All-zero for unguided nets, so the hot loop adds unconditionally
    # (bitwise identical to the legacy ``step + 0.0``).
    guide_table = cost_model.guide_penalty_table(net_name)
    tolerance = _COST_TOLERANCE
    congestion_table = cost_model.congestion_snapshot(net_id)
    pressure_table = (
        cost_model.color_pressure_snapshot(net_id)
        if congestion_table is not None
        else None
    )

    if pressure_table is not None:

        def expand(
            node: int,
            g: float,
            bits: int,
            out_node: List[int],
            out_cost: List[float],
            out_aux: List[int],
        ) -> int:
            base_row = base_costs[node // plane]
            slot = node * NUM_DIRECTIONS
            count = 0
            for direction in range(NUM_DIRECTIONS):
                succ = neighbor_table[slot + direction]
                if succ < 0 or blocked[succ]:
                    continue
                step = base_row[direction] + congestion_table[succ]
                step = step + guide_table[succ]
                base_step = alpha * step

                pressure_slot = 3 * succ
                cost_red = base_step + pressure_table[pressure_slot]
                cost_green = base_step + pressure_table[pressure_slot + 1]
                cost_blue = base_step + pressure_table[pressure_slot + 2]
                if direction < 4:  # planar move: stitch for masks outside the state
                    if not bits & 0b100:
                        cost_red += stitch_penalty
                    if not bits & 0b010:
                        cost_green += stitch_penalty
                    if not bits & 0b001:
                        cost_blue += stitch_penalty
                minimum = cost_red if cost_red <= cost_green else cost_green
                if cost_blue < minimum:
                    minimum = cost_blue
                limit = minimum + tolerance
                out_node[count] = succ
                out_cost[count] = g + minimum
                out_aux[count] = (
                    (0b100 if cost_red <= limit else 0)
                    | (0b010 if cost_green <= limit else 0)
                    | (0b001 if cost_blue <= limit else 0)
                )
                count += 1
            return count

        return attach_native_spec(
            expand,
            MODE_COLOR_STATE,
            grid,
            cost_model,
            net_name,
            net_id,
            stitch=stitch_penalty,
            tolerance=tolerance,
        )

    # Pure-Python fallback: per-successor congestion / pressure reads from
    # the live buffers (identical arithmetic to the snapshots).
    history = grid.history_buffer()
    owner = grid.owner_buffer()
    pressure = grid.pressure_buffer()
    net_pressure_get = grid.net_pressure_overlay(net_id).get
    history_weight = rules.history_weight
    occupancy_penalty = rules.occupancy_penalty

    def expand(
        node: int,
        g: float,
        bits: int,
        out_node: List[int],
        out_cost: List[float],
        out_aux: List[int],
    ) -> int:
        base_row = base_costs[node // plane]
        slot = node * NUM_DIRECTIONS
        count = 0
        for direction in range(NUM_DIRECTIONS):
            succ = neighbor_table[slot + direction]
            if succ < 0 or blocked[succ]:
                continue
            congestion = history_weight * history[succ]
            holder = owner[succ]
            if holder != 0 and holder != net_id:
                congestion += occupancy_penalty
            step = base_row[direction] + congestion
            step = step + guide_table[succ]
            base_step = alpha * step

            pressure_slot = 3 * succ
            own = net_pressure_get(succ)
            if own is None:
                cost_red = base_step + gamma * pressure[pressure_slot]
                cost_green = base_step + gamma * pressure[pressure_slot + 1]
                cost_blue = base_step + gamma * pressure[pressure_slot + 2]
            else:
                cost_red = base_step + gamma * max(pressure[pressure_slot] - own[0], 0.0)
                cost_green = base_step + gamma * max(pressure[pressure_slot + 1] - own[1], 0.0)
                cost_blue = base_step + gamma * max(pressure[pressure_slot + 2] - own[2], 0.0)
            if direction < 4:  # planar move: stitch for masks outside the state
                if not bits & 0b100:
                    cost_red += stitch_penalty
                if not bits & 0b010:
                    cost_green += stitch_penalty
                if not bits & 0b001:
                    cost_blue += stitch_penalty
            minimum = cost_red if cost_red <= cost_green else cost_green
            if cost_blue < minimum:
                minimum = cost_blue
            limit = minimum + tolerance
            out_node[count] = succ
            out_cost[count] = g + minimum
            out_aux[count] = (
                (0b100 if cost_red <= limit else 0)
                | (0b010 if cost_green <= limit else 0)
                | (0b001 if cost_blue <= limit else 0)
            )
            count += 1
        return count

    return expand
