"""Color-state searching (paper Algorithm 2).

The search is a multi-source Dijkstra over the routing grid where every
label additionally carries a :class:`~repro.tpl.color_state.ColorState`.
For every expansion direction the cost of each of the three masks is
evaluated (traditional cost + color conflict cost + a stitch cost when the
mask is not in the current vertex's color state and the move is planar);
the minimum over masks becomes the edge cost and the set of masks achieving
that minimum becomes the neighbour's color state.  Keeping the full set --
rather than committing to one mask -- is the paper's key idea: it widens the
solution space so the backtrace can later pick whichever mask avoids
conflicts best.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.dr.cost import CostModel, TargetBounds
from repro.geometry import GridPoint
from repro.grid import ALL_DIRECTIONS, Direction, RoutingGrid
from repro.tpl.color_state import ALL_COLORS, ColorState
from repro.utils import UpdatablePriorityQueue

#: Costs within this relative tolerance of the minimum keep their mask in the
#: color state; an exact equality test would make the state collapse to a
#: single color on any floating-point noise.
_COST_TOLERANCE = 1e-9


@dataclass
class VertexLabel:
    """Search label of one grid vertex."""

    cost: float
    color_state: ColorState
    parent: Optional[GridPoint] = None
    parent_direction: Optional[Direction] = None


@dataclass
class ColorSearchResult:
    """Outcome of one color-state search."""

    reached: Optional[GridPoint]
    labels: Dict[GridPoint, VertexLabel] = field(default_factory=dict)
    expansions: int = 0

    @property
    def found(self) -> bool:
        """Return ``True`` when an unreached pin was found."""
        return self.reached is not None

    def path_to_source(self) -> List[GridPoint]:
        """Return the vertex path from the reached pin back to a source.

        Ordered destination-first (the order the backtrace of Algorithm 3
        walks it).  Raises ``ValueError`` on a failed search.
        """
        if self.reached is None:
            raise ValueError("cannot backtrace a failed color-state search")
        path: List[GridPoint] = []
        cursor: Optional[GridPoint] = self.reached
        while cursor is not None:
            path.append(cursor)
            cursor = self.labels[cursor].parent
        return path

    def color_state_of(self, vertex: GridPoint) -> ColorState:
        """Return the color state assigned to *vertex* during the search."""
        return self.labels[vertex].color_state


class ColorStateSearch:
    """The color-state searching engine of Algorithm 2."""

    def __init__(
        self,
        grid: RoutingGrid,
        cost_model: CostModel,
        max_expansions: int = 2_000_000,
    ) -> None:
        self.grid = grid
        self.cost_model = cost_model
        self.rules = grid.rules
        self.max_expansions = max_expansions

    def search(
        self,
        sources: Mapping[GridPoint, ColorState],
        targets: Set[GridPoint],
        net_name: str,
    ) -> ColorSearchResult:
        """Search from *sources* to any vertex of *targets* for *net_name*.

        Parameters
        ----------
        sources:
            Seed vertices mapped to their initial color states.  Fresh pins
            start at ``111`` (paper Alg. 1 line 6); vertices of the already
            routed-and-colored tree start at their committed single color so
            that joining them with a different mask is charged a stitch.
        targets:
            Access vertices of the still-unreached pins.
        net_name:
            The net being routed.
        """
        result = ColorSearchResult(reached=None)
        if not targets:
            return result
        bounds = TargetBounds.from_targets(targets)
        labels: Dict[GridPoint, VertexLabel] = {}
        queue: UpdatablePriorityQueue = UpdatablePriorityQueue()

        for vertex, state in sources.items():
            if not self.grid.in_bounds(vertex) or self.grid.is_blocked(vertex):
                continue
            labels[vertex] = VertexLabel(cost=0.0, color_state=state)
            queue.push(vertex, self.cost_model.heuristic_bounds(vertex, bounds))

        expansions = 0
        while queue:
            vertex, _priority = queue.pop()
            label = labels[vertex]
            expansions += 1
            if vertex in targets:
                result.reached = vertex
                break
            if expansions > self.max_expansions:
                break
            for direction in ALL_DIRECTIONS:
                neighbor = self.grid.neighbor(vertex, direction)
                if neighbor is None or self.grid.is_blocked(neighbor):
                    continue
                step_cost, new_state = self._direction_cost(
                    vertex, label.color_state, direction, neighbor, net_name
                )
                candidate = label.cost + step_cost
                existing = labels.get(neighbor)
                if existing is not None and candidate >= existing.cost - _COST_TOLERANCE:
                    continue
                labels[neighbor] = VertexLabel(
                    cost=candidate,
                    color_state=new_state,
                    parent=vertex,
                    parent_direction=direction,
                )
                priority = candidate + self.cost_model.heuristic_bounds(neighbor, bounds)
                queue.push(neighbor, priority)

        result.labels = labels
        result.expansions = expansions
        return result

    # ------------------------------------------------------------------

    def _direction_cost(
        self,
        vertex: GridPoint,
        state: ColorState,
        direction: Direction,
        neighbor: GridPoint,
        net_name: str,
    ) -> Tuple[float, ColorState]:
        """Return ``(min cost, resulting color state)`` for one direction.

        Implements Algorithm 2 lines 9-17: build the 3x2 cost array, add the
        stitch cost for masks outside the current color state on planar
        moves, and return the minimum cost together with the set of masks
        achieving it.

        Crossing to another layer (a via) resets the mask freedom: the new
        layer's metal has no stitch relationship with the current one, so all
        masks allowed by the neighbour's surroundings are candidates.
        """
        base = self.cost_model.weighted_traditional_cost(vertex, direction, neighbor, net_name)
        color_costs = self.cost_model.color_costs(neighbor, net_name)
        stitch_penalty = self.cost_model.stitch_cost()

        per_color: List[Tuple[float, int]] = []
        for color in ALL_COLORS:
            cost = base + color_costs[color]
            if not direction.is_via and not state.allows(color):
                cost += stitch_penalty
            per_color.append((cost, color))

        min_cost = min(cost for cost, _color in per_color)
        allowed = [
            color for cost, color in per_color if cost <= min_cost + _COST_TOLERANCE
        ]
        return min_cost, ColorState.from_colors(allowed)
