"""Post-routing color refinement.

The paper's flow ends every routing pass by "color[ing] the routing grid on
routed paths" and then iterating rip-up and reroute on the remaining
conflicts.  Rerouting is expensive, and many late conflicts are purely
*coloring* artifacts: by the time the last nets commit, earlier nets could
legally switch one of their segments to a now-free mask and dissolve the
conflict without moving any wire.

:class:`ColorRefiner` implements that cheap final step as a greedy
feature-recoloring loop (an engineering extension on top of the paper's
flow; it is disabled by passing ``refine_colors=False`` to
:class:`~repro.tpl.mr_tpl.MrTPLRouter`, and the ablation bench
``bench_ablation_refine`` quantifies its effect).  It never changes
geometry: only the mask of whole same-color connected features is switched,
and only when doing so strictly reduces ``conflicts * conflict_weight +
stitches * stitch_weight``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.design import Design
from repro.geometry import GridPoint
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.tpl.color_state import ALL_COLORS
from repro.utils import get_logger

_LOG = get_logger("tpl.refine")


class ColorRefiner:
    """Greedy recoloring of routed features to remove residual conflicts."""

    def __init__(
        self,
        design: Design,
        grid: RoutingGrid,
        conflict_weight: float = 10.0,
        stitch_weight: float = 1.0,
        max_passes: int = 3,
        conflict_checker: Optional[object] = None,
    ) -> None:
        self.design = design
        self.grid = grid
        self.rules = grid.rules
        self.conflict_weight = conflict_weight
        self.stitch_weight = stitch_weight
        self.max_passes = max_passes
        #: Optional incremental conflict checker
        #: (:class:`repro.check.IncrementalConflictChecker`): its delta tally
        #: detects the refiner's fixed point (no conflicts and no stitches,
        #: so no recoloring can strictly improve the objective) without a
        #: full conflict re-scan before every greedy pass.
        self.conflict_checker = conflict_checker

    # ------------------------------------------------------------------

    def refine(self, solution: RoutingSolution) -> int:
        """Recolor features of *solution* in place; return the number of changes."""
        changes = 0
        for _pass in range(self.max_passes):
            if self._at_fixed_point(solution):
                break
            pass_changes = self._refine_once(solution)
            changes += pass_changes
            if pass_changes == 0:
                break
        if changes:
            for route in solution.routes.values():
                route.recount_stitches()
        return changes

    def _at_fixed_point(self, solution: RoutingSolution) -> bool:
        """Return ``True`` when no recoloring can strictly improve the objective.

        With zero conflicts every feature's same-mask pressure from other
        nets is zero, and with zero stitches its own-net boundary cost is
        zero, so every feature already sits at cost 0 and
        :meth:`_refine_once` is guaranteed to change nothing.
        """
        if self.conflict_checker is None:
            return False
        if self.conflict_checker.count(solution):
            return False
        return all(
            route.recount_stitches() == 0 for route in solution.routes.values()
        )

    # ------------------------------------------------------------------

    def _refine_once(self, solution: RoutingSolution) -> int:
        colored: Dict[GridPoint, List[Tuple[str, int]]] = defaultdict(list)
        for route in solution.routes.values():
            for vertex, color in route.vertex_colors.items():
                colored[vertex].append((route.net_name, color))
        for obstacle in self.design.colored_obstacles():
            dcolor = self.rules.color_spacing_on(obstacle.layer)
            region = obstacle.rect.expanded(dcolor + self.grid.pitch)
            for vertex in self.grid.vertices_covering(obstacle.layer, region):
                if self.grid.vertex_rect(vertex).distance_to(obstacle.rect) < dcolor:
                    colored[vertex].append((f"__fixed__{obstacle.name}", obstacle.color))

        offsets_by_layer = {
            layer: self.grid._pressure_offsets(layer) for layer in range(self.grid.num_layers)
        }

        changes = 0
        for route in solution.routes.values():
            if not route.vertex_colors:
                continue
            for feature in self._features_of(route):
                best_color, best_cost, current_cost = self._best_color(
                    route, feature, colored, offsets_by_layer
                )
                if best_color is None or best_cost >= current_cost:
                    continue
                current = route.vertex_colors[next(iter(feature))]
                for vertex in feature:
                    colored[vertex] = [
                        (net, best_color if net == route.net_name and color == current else color)
                        for net, color in colored[vertex]
                    ]
                    route.set_color(vertex, best_color)
                    self.grid.set_vertex_color(vertex, route.net_name, best_color)
                changes += 1
        return changes

    # ------------------------------------------------------------------

    def _features_of(self, route: NetRoute) -> List[Set[GridPoint]]:
        """Return same-layer, same-color connected vertex groups of *route*."""
        adjacency = route.adjacency()
        seen: Set[GridPoint] = set()
        features: List[Set[GridPoint]] = []
        for vertex, color in route.vertex_colors.items():
            if vertex in seen:
                continue
            group: Set[GridPoint] = set()
            stack = [vertex]
            while stack:
                current = stack.pop()
                if current in group:
                    continue
                group.add(current)
                for neighbor in adjacency.get(current, ()):
                    if neighbor in group or neighbor in seen:
                        continue
                    if neighbor.layer != current.layer:
                        continue
                    if route.vertex_colors.get(neighbor) == color:
                        stack.append(neighbor)
            seen.update(group)
            features.append(group)
        return features

    def _best_color(
        self,
        route: NetRoute,
        feature: Set[GridPoint],
        colored: Dict[GridPoint, List[Tuple[str, int]]],
        offsets_by_layer: Dict[int, Tuple[Tuple[int, int, int], ...]],
    ) -> Tuple[Optional[int], float, float]:
        """Return ``(best alternative color, its cost, current cost)`` for *feature*."""
        anchor = next(iter(feature))
        current_color = route.vertex_colors[anchor]
        adjacency = route.adjacency()
        costs = {color: 0.0 for color in ALL_COLORS}
        for vertex in feature:
            # Conflict pressure from other nets' / fixed colored metal nearby.
            for dcol, drow, _delta in offsets_by_layer[vertex.layer]:
                neighbor = GridPoint(vertex.layer, vertex.col + dcol, vertex.row + drow)
                for net_name, color in colored.get(neighbor, ()):
                    if net_name == route.net_name:
                        continue
                    costs[color] += self.conflict_weight
            # Stitches against the net's own adjacent metal outside the feature.
            for neighbor in adjacency.get(vertex, ()):
                if neighbor in feature or neighbor.layer != vertex.layer:
                    continue
                neighbor_color = route.vertex_colors.get(neighbor)
                if neighbor_color is None:
                    continue
                for color in ALL_COLORS:
                    if color != neighbor_color:
                        costs[color] += self.stitch_weight
        current_cost = costs[current_color]
        alternatives = [(cost, color) for color, cost in costs.items() if color != current_color]
        best_cost, best_color = min(alternatives)
        return best_color, best_cost, current_cost
