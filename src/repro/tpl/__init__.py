"""Mr.TPL: the paper's core contribution.

The package implements the triple-patterning-aware multi-pin net detailed
router of the paper:

* :mod:`repro.tpl.color_state` -- the 3-bit color state of Table I and its
  set algebra,
* :mod:`repro.tpl.search` -- color-state searching (paper Algorithm 2),
* :mod:`repro.tpl.backtrace` -- the verSet / segSet backtrace that collapses
  color states to final masks (paper Algorithm 3),
* :mod:`repro.tpl.conflict` -- color conflict detection and counting on a
  colored routing solution,
* :mod:`repro.tpl.mr_tpl` -- :class:`MrTPLRouter`, the full Fig. 2 flow with
  conflict-driven rip-up and reroute.
"""

from repro.tpl.color_state import ColorState, RED, GREEN, BLUE, MASK_NAMES
from repro.tpl.conflict import ConflictChecker, ColorConflict
from repro.tpl.search import ColorStateSearch, ColorSearchResult
from repro.tpl.backtrace import Backtracer, ColoredPath, PathSegmentSet
from repro.tpl.mr_tpl import MrTPLRouter

__all__ = [
    "ColorState",
    "RED",
    "GREEN",
    "BLUE",
    "MASK_NAMES",
    "ConflictChecker",
    "ColorConflict",
    "ColorStateSearch",
    "ColorSearchResult",
    "Backtracer",
    "ColoredPath",
    "PathSegmentSet",
    "MrTPLRouter",
]
