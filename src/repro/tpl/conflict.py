"""Color conflict detection and counting.

A color conflict exists when two pieces of metal that belong to different
nets (or to a net and a pre-colored obstacle) sit on the **same mask** and
closer than the same-mask spacing ``Dcolor`` (paper Section II-A).  Shapes
closer than the hard minimum spacing conflict regardless of mask.

Counting granularity matters for comparability with the paper's tables, so
conflicts are counted between **features**: maximal connected runs of
same-net, same-layer, same-mask routed metal.  Each offending feature pair
counts once, which is how layout decomposers (OpenMPL) report conflicts as
well -- the same counter is applied to every router and baseline in this
repository.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.design import Design
from repro.geometry import GridPoint, Rect, SpatialIndex
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.utils import DisjointSet


@dataclass(frozen=True)
class Feature:
    """A maximal connected run of same-mask metal of one net on one layer."""

    net_name: str
    layer: int
    color: int
    vertices: FrozenSet[GridPoint]

    @property
    def size(self) -> int:
        """Return the number of grid vertices in the feature."""
        return len(self.vertices)


@dataclass(frozen=True)
class ColorConflict:
    """One conflicting pair of features (or a feature and a fixed obstacle)."""

    net_a: str
    net_b: str
    layer: int
    color: int
    location: GridPoint
    kind: str = "same-mask"  # or "min-spacing"


@dataclass
class ConflictReport:
    """Aggregated conflict information for a routing solution."""

    conflicts: List[ColorConflict] = field(default_factory=list)
    uncolored_vertices: int = 0

    @property
    def conflict_count(self) -> int:
        """Return the number of conflicts."""
        return len(self.conflicts)

    def nets_involved(self) -> Set[str]:
        """Return every net name participating in at least one conflict."""
        nets: Set[str] = set()
        for conflict in self.conflicts:
            if not conflict.net_a.startswith("__fixed__"):
                nets.add(conflict.net_a)
            if not conflict.net_b.startswith("__fixed__"):
                nets.add(conflict.net_b)
        return nets

    def conflict_locations(self) -> List[GridPoint]:
        """Return one representative grid location per conflict."""
        return [conflict.location for conflict in self.conflicts]


class ConflictChecker:
    """Counts color conflicts of a colored :class:`RoutingSolution`."""

    def __init__(self, design: Design, grid: RoutingGrid) -> None:
        self.design = design
        self.grid = grid
        self.rules = grid.rules

    # ------------------------------------------------------------------

    def extract_features(self, solution: RoutingSolution) -> List[Feature]:
        """Split every routed net into same-mask connected features."""
        features: List[Feature] = []
        for route in solution.routes.values():
            features.extend(self._net_features(route))
        return features

    def _net_features(self, route: NetRoute) -> List[Feature]:
        colored = {
            vertex: color
            for vertex, color in route.vertex_colors.items()
            if vertex in route.vertices
        }
        if not colored:
            return []
        dsu = DisjointSet(colored)
        for a, b in route.edges:
            if a.layer != b.layer:
                continue
            color_a = colored.get(a)
            color_b = colored.get(b)
            if color_a is None or color_b is None:
                continue
            if color_a == color_b:
                dsu.union(a, b)
        groups: Dict[GridPoint, Set[GridPoint]] = defaultdict(set)
        for vertex in colored:
            groups[dsu.find(vertex)].add(vertex)
        features = []
        for members in groups.values():
            anchor = next(iter(members))
            features.append(
                Feature(
                    net_name=route.net_name,
                    layer=anchor.layer,
                    color=colored[anchor],
                    vertices=frozenset(members),
                )
            )
        return features

    # ------------------------------------------------------------------

    def check(self, solution: RoutingSolution) -> ConflictReport:
        """Return the conflict report of *solution*.

        Conflicts counted:

        * two features of different nets, same layer, same mask, closer than
          ``Dcolor`` (the layer's color spacing),
        * two features of different nets, same layer, closer than the hard
          minimum spacing regardless of mask,
        * a feature against a pre-colored obstacle under the same rules.

        Vertices that were routed but never received a mask are reported in
        :attr:`ConflictReport.uncolored_vertices` -- an incompletely colored
        solution should never look conflict-free for free.
        """
        report = ConflictReport()
        features = self.extract_features(solution)
        report.uncolored_vertices = self._count_uncolored(solution)

        index_by_layer: Dict[int, SpatialIndex] = defaultdict(
            lambda: SpatialIndex(bucket_size=max(self.grid.pitch * 8, 16))
        )
        feature_rects: Dict[int, List[Tuple[Rect, GridPoint]]] = {}
        for feature_id, feature in enumerate(features):
            rects = []
            for vertex in feature.vertices:
                rect = self.grid.vertex_rect(vertex)
                rects.append((rect, vertex))
                index_by_layer[feature.layer].insert(rect, feature_id)
            feature_rects[feature_id] = rects

        seen_pairs: Set[Tuple[int, int]] = set()
        for feature_id, feature in enumerate(features):
            dcolor = self.rules.color_spacing_on(feature.layer)
            reach = max(dcolor, self.rules.min_spacing)
            for rect, vertex in feature_rects[feature_id]:
                for _other_rect, other_id in index_by_layer[feature.layer].within(rect, reach):
                    if other_id == feature_id:
                        continue
                    other = features[other_id]
                    if other.net_name == feature.net_name:
                        continue
                    pair = (min(feature_id, other_id), max(feature_id, other_id))
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    conflict = self._classify_pair(feature, other, vertex, dcolor)
                    if conflict is not None:
                        report.conflicts.append(conflict)
        report.conflicts.extend(self._obstacle_conflicts(features))
        return report

    def count(self, solution: RoutingSolution) -> int:
        """Return only the conflict count of *solution*."""
        return self.check(solution).conflict_count

    # ------------------------------------------------------------------

    def _classify_pair(
        self,
        feature: Feature,
        other: Feature,
        location: GridPoint,
        dcolor: int,
    ) -> Optional[ColorConflict]:
        distance = self._feature_distance(feature, other)
        if distance < self.rules.min_spacing:
            return ColorConflict(
                net_a=feature.net_name,
                net_b=other.net_name,
                layer=feature.layer,
                color=feature.color,
                location=location,
                kind="min-spacing",
            )
        if feature.color == other.color and distance < dcolor:
            return ColorConflict(
                net_a=feature.net_name,
                net_b=other.net_name,
                layer=feature.layer,
                color=feature.color,
                location=location,
                kind="same-mask",
            )
        return None

    def _feature_distance(self, feature: Feature, other: Feature) -> int:
        # Every vertex rect is the same wire-width square centred on a
        # uniform track lattice, so the L-infinity rect gap reduces to
        # ``max(0, chebyshev(col, row) * pitch - wire_width)`` -- the gap is
        # monotone in the per-axis track distance, making the minimum over
        # vertex pairs the gap of the minimum Chebyshev distance.  Pure
        # integer arithmetic; no Rect/Interval objects on this hot path.
        if not feature.vertices or not other.vertices:
            return 1 << 30
        pitch = self.grid.pitch
        extent = 2 * max(self.rules.wire_width // 2, 0)
        others = other.vertices
        best = None
        for vertex in feature.vertices:
            col, row = vertex.col, vertex.row
            for other_vertex in others:
                dcol = col - other_vertex.col
                if dcol < 0:
                    dcol = -dcol
                drow = row - other_vertex.row
                if drow < 0:
                    drow = -drow
                chebyshev = dcol if dcol > drow else drow
                if best is None or chebyshev < best:
                    best = chebyshev
                    if best * pitch <= extent:
                        return 0
        distance = best * pitch - extent
        return distance if distance > 0 else 0

    def _obstacle_conflicts(self, features: Iterable[Feature]) -> List[ColorConflict]:
        conflicts: List[ColorConflict] = []
        obstacles = self.design.colored_obstacles()
        if not obstacles:
            return conflicts
        for feature in features:
            dcolor = self.rules.color_spacing_on(feature.layer)
            for obstacle in obstacles:
                if obstacle.layer != feature.layer or obstacle.color != feature.color:
                    continue
                hit = None
                for vertex in feature.vertices:
                    rect = self.grid.vertex_rect(vertex)
                    if rect.distance_to(obstacle.rect) < dcolor:
                        hit = vertex
                        break
                if hit is not None:
                    conflicts.append(
                        ColorConflict(
                            net_a=feature.net_name,
                            net_b=f"__fixed__{obstacle.name or 'obstacle'}",
                            layer=feature.layer,
                            color=feature.color,
                            location=hit,
                            kind="same-mask",
                        )
                    )
        return conflicts

    def _count_uncolored(self, solution: RoutingSolution) -> int:
        uncolored = 0
        for route in solution.routes.values():
            if not route.routed:
                continue
            for vertex in route.vertices:
                if vertex not in route.vertex_colors:
                    layer = self.design.tech.layers[vertex.layer]
                    if layer.tpl:
                        uncolored += 1
        return uncolored
