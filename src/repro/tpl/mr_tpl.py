"""The Mr.TPL router: the complete flow of paper Fig. 2.

The router combines the substrates of this repository:

1. build the routing grid (and optionally GR guides),
2. route nets sequentially; every net is grown as a tree with
   **color-state searching** (Algorithm 2, :mod:`repro.tpl.search`) and the
   verSet/segSet **backtrace** (Algorithm 3, :mod:`repro.tpl.backtrace`),
   coloring the routed vertices as it goes,
3. detect color conflicts over the whole layout,
4. if conflicts remain and the iteration budget allows, rip up the nets
   involved, bump the history cost at the conflict locations, and reroute.

The output is a colored :class:`~repro.grid.RoutingSolution` that the shared
evaluation code scores exactly like the baselines' outputs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.campaign import CampaignState
from repro.check import IncrementalConflictChecker
from repro.design import Design, Net
from repro.dr.cost import CostModel
from repro.geometry import GridPoint
from repro.gr import GlobalRouter, GuideSet
from repro.grid import NetRoute, RoutingGrid, RoutingSolution
from repro.profiling import PhaseTimes
from repro.sched import GridSink, make_batch_executor
from repro.tpl.backtrace import Backtracer, apply_colored_path
from repro.tpl.color_state import ColorState
from repro.tpl.conflict import ConflictChecker, ConflictReport
from repro.tpl.refine import ColorRefiner
from repro.tpl.search import ColorStateSearch
from repro.utils import Timer, get_logger

_LOG = get_logger("tpl.mr_tpl")


class MrTPLRouter:
    """Triple-patterning-aware multi-pin net detailed router (Mr.TPL).

    The ``parallelism`` / ``batch_size`` / ``batch_backend`` knobs switch
    the rip-up loop onto the :mod:`repro.sched` disjoint-batch executor;
    the default keeps the plain sequential loop.  ``batch_backend="auto"``
    or the ``autotune`` knob (``REPRO_AUTOTUNE=probe|full``) hands the
    choice to the self-tuning scheduler (:mod:`repro.sched.autotune`).
    """

    name = "mr-tpl"

    def __init__(
        self,
        design: Design,
        grid: Optional[RoutingGrid] = None,
        guides: Optional[GuideSet] = None,
        use_global_router: bool = True,
        max_iterations: Optional[int] = None,
        refine_colors: bool = False,
        engine: str = "flat",
        parallelism: int = 1,
        batch_size: Optional[int] = None,
        batch_backend: str = "serial",
        batch_policy: str = "prefix",
        min_fork_batch: Optional[int] = None,
        batch_margin: Optional[int] = None,
        autotune: Optional[str] = None,
    ) -> None:
        self.design = design
        self.grid = grid if grid is not None else RoutingGrid(design)
        if guides is None and use_global_router:
            guides = GlobalRouter(design).route()
        self.guides = guides
        self.cost_model = CostModel(self.grid, guides)
        self._engine_kind = engine
        if engine == "flat":
            self.search_engine = ColorStateSearch(self.grid, self.cost_model)
        elif engine == "legacy":
            from repro.search.legacy import LegacyColorStateSearch

            self.search_engine = LegacyColorStateSearch(self.grid, self.cost_model)
        else:
            raise ValueError(f"unknown search engine {engine!r}; expected 'flat' or 'legacy'")
        self.backtracer = Backtracer(self.grid, self.cost_model)
        # Full re-scan checker: the frozen reference oracle (final evaluation,
        # differential tests).  The rip-up loop consumes the incremental one.
        self.conflict_checker = ConflictChecker(design, self.grid)
        self.incremental_conflicts = IncrementalConflictChecker(design, self.grid)
        self.refine_colors = refine_colors
        self.max_iterations = (
            max_iterations
            if max_iterations is not None
            else design.tech.rules.max_ripup_iterations
        )
        self.batch_executor = make_batch_executor(
            self,
            parallelism,
            batch_size,
            batch_backend,
            batch_policy,
            min_fork_batch=min_fork_batch,
            margin_cells=batch_margin,
            autotune=autotune,
        )
        # Per-phase wall-clock record: shared with the executor's stats when
        # one is engaged, so campaign merges and bench JSON see one record.
        self.phases = (
            self.batch_executor.stats.phases
            if self.batch_executor is not None
            else PhaseTimes()
        )

    # ------------------------------------------------------------------
    # Full flow (Fig. 2, left column)
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        campaign: Optional[CampaignState] = None,
        on_iteration: Optional[Callable[[CampaignState], None]] = None,
    ) -> RoutingSolution:
        """Route and color every net, then negotiate color conflicts.

        *campaign* makes the rip-up loop resumable (see
        :class:`~repro.campaign.CampaignState`): the loop position **and**
        the keep-the-best-iteration tracking live there, so a checkpointed
        campaign resumed in another process converges on the same solution
        as the uninterrupted run.  *on_iteration* fires after initial
        routing (iteration 0) and after every completed rip-up round.
        """
        timer = Timer()
        timer.start()
        if campaign is None:
            campaign = CampaignState()
        if campaign.started:
            solution = campaign.solution
        else:
            solution = RoutingSolution(design_name=self.design.name, router_name=self.name)
            campaign.solution = solution
            self._route_many(self.schedule_nets(), solution)
            if on_iteration is not None:
                on_iteration(campaign)

        iterations = campaign.iteration
        for iteration in range(campaign.iteration, self.max_iterations):
            check_started = perf_counter()
            report = self.incremental_conflicts.check(solution)
            self.phases.add("check", perf_counter() - check_started)
            offenders = report.nets_involved()
            offenders.update(route.net_name for route in solution.failed_nets())
            defects = (len(solution.failed_nets()), report.conflict_count)
            if campaign.best_defects is None or defects < campaign.best_defects:
                campaign.best_defects = defects
                campaign.best_routes = dict(solution.routes)
            if not offenders:
                break
            iterations = iteration + 1
            _LOG.info(
                "iteration %d: %d conflicts, ripping up %d nets",
                iterations,
                report.conflict_count,
                len(offenders),
            )
            # PathFinder-style negotiation: fade stale congestion evidence
            # before this iteration's rip-up adds fresh history.
            self.grid.decay_history(self.grid.rules.history_decay)
            self._rip_up_and_update_history(offenders, report, solution)
            self._route_many(
                [self.design.net_by_name(name) for name in sorted(offenders)], solution
            )
            campaign.iteration = iterations
            if on_iteration is not None:
                on_iteration(campaign)

        # Rip-up and reroute can oscillate on hard instances; keep the best
        # iteration rather than blindly returning the last one.
        check_started = perf_counter()
        final_report = self.incremental_conflicts.check(solution)
        self.phases.add("check", perf_counter() - check_started)
        final_defects = (len(solution.failed_nets()), final_report.conflict_count)
        if (
            campaign.best_defects is not None
            and campaign.best_defects < final_defects
            and campaign.best_routes is not None
        ):
            solution.routes = campaign.best_routes
        # Surface the executor's supervision counters on the campaign
        # before declaring it done (checkpointed or not).
        campaign.update_executor_stats(self.batch_executor)
        campaign.done = True

        if self.refine_colors:
            ColorRefiner(
                self.design, self.grid, conflict_checker=self.incremental_conflicts
            ).refine(solution)

        for route in solution.routes.values():
            route.recount_stitches()
        solution.iterations = iterations
        solution.runtime_seconds = timer.stop()
        if self.batch_executor is not None:
            self.batch_executor.close()  # release worker threads between runs
        return solution

    def schedule_nets(self) -> List[Net]:
        """Return the routing order (small, pin-heavy nets first)."""
        return sorted(
            self.design.routable_nets(),
            key=lambda net: (net.half_perimeter_wirelength(), -net.num_pins, net.name),
        )

    def _route_many(self, nets: List[Net], solution: RoutingSolution) -> None:
        """Route *nets* in order -- batched when an executor is configured."""
        if self.batch_executor is not None:
            self.batch_executor.route_nets(nets, solution)
        else:
            search_started = perf_counter()
            for net in nets:
                solution.add_route(self.route_net(net))
            self.phases.add("search", perf_counter() - search_started)

    def make_search_engine(self) -> Optional[ColorStateSearch]:
        """Return a fresh flat color-state engine over this router's grid.

        The batch executor creates one per worker so concurrent searches
        never share label buffers.  ``None`` for the legacy engine, which
        the speculative backends do not support.
        """
        if self._engine_kind != "flat":
            return None
        return ColorStateSearch(self.grid, self.cost_model)

    def worker_spec(self) -> Tuple[type, Dict[str, object]]:
        """Return ``(router_cls, kwargs)`` rebuilding this router in a worker.

        Used by the snapshot-bootstrapped pool workers, which construct
        their own router over a grid rebuilt from the journal's fold
        snapshot instead of inheriting the parent's through fork.
        """
        return type(self), {
            "guides": self.guides,
            "use_global_router": False,
            "max_iterations": self.max_iterations,
            "refine_colors": self.refine_colors,
            "engine": self._engine_kind,
        }

    # ------------------------------------------------------------------
    # Single-net routing (Fig. 2 centre and right columns, Algorithm 1)
    # ------------------------------------------------------------------

    def route_net(self, net: Net) -> NetRoute:
        """Route one multi-pin net with color-state searching.

        Computes the route and commits it to the grid immediately
        (:meth:`compute_route` with the default :class:`GridSink`).
        """
        return self.compute_route(net)

    def compute_route(
        self, net: Net, engine: Optional[object] = None, sink: Optional[object] = None
    ) -> NetRoute:
        """Route one net (paper Algorithm 1) through *engine*, sending grid
        commits to *sink*.

        Follows Algorithm 1: seed the queue with the vertices covered by the
        first pin at color state ``111``, repeatedly search until an
        unreached pin is found, backtrace to color the path, and keep the
        colored path vertices as sources for the next search until every pin
        is routed.  With a :class:`~repro.sched.commit.RecordingSink` the
        grid stays untouched (colors/occupancy logged for deferred replay);
        the searches still see exact costs because the net's own deferred
        pressure contribution cancels out of its color costs.
        """
        if engine is None:
            engine = self.search_engine
        if sink is None:
            sink = GridSink(self.grid, net.name)
        route = NetRoute(net_name=net.name)
        pin_groups = [self.grid.pin_access_vertices(pin) for pin in net.pins]
        if any(not group for group in pin_groups):
            route.routed = False
            route.failure_reason = "pin without reachable access vertex"
            return route

        tree_colors: Dict[GridPoint, int] = {}
        tree_vertices: Set[GridPoint] = set(pin_groups[0])
        route.vertices.update(tree_vertices)
        unreached = list(range(1, len(pin_groups)))

        while unreached:
            sources = self._source_states(tree_vertices, tree_colors)
            targets: Dict[GridPoint, int] = {}
            for index in unreached:
                for vertex in pin_groups[index]:
                    if vertex not in tree_vertices:
                        targets.setdefault(vertex, index)
            if not targets:
                # Remaining pins are already covered by the routed tree.
                unreached.clear()
                break
            search = engine.search(sources, set(targets), net.name)
            if not search.found:
                route.routed = False
                route.failure_reason = "color-state search exhausted without reaching a pin"
                break
            colored_path = self.backtracer.backtrace(search, net.name, tree_colors)
            apply_colored_path(colored_path, route, sink)
            tree_colors.update(colored_path.colors())

            reached_pin = targets[search.reached]
            unreached.remove(reached_pin)
            tree_vertices.update(colored_path.vertices)
            tree_vertices.update(pin_groups[reached_pin])
            route.vertices.update(pin_groups[reached_pin])
            for vertex in pin_groups[reached_pin]:
                sink.occupy(vertex)

        if route.routed:
            for vertex in tree_vertices:
                sink.occupy(vertex)
            route.recount_stitches()
        return route

    # ------------------------------------------------------------------
    # Rip-up & history update (Fig. 2 "Rip Up & Update History Cost")
    # ------------------------------------------------------------------

    def _rip_up_and_update_history(
        self,
        offenders: Set[str],
        report: ConflictReport,
        solution: RoutingSolution,
    ) -> None:
        for location in report.conflict_locations():
            self.grid.add_history(location, 1.0)
        for net_name in offenders:
            self.grid.release_net(net_name)
            route = solution.routes.get(net_name)
            if route is not None:
                for vertex in route.vertices:
                    self.grid.add_history(vertex, 0.25)
            solution.routes.pop(net_name, None)

    # ------------------------------------------------------------------

    def _source_states(
        self,
        tree_vertices: Set[GridPoint],
        tree_colors: Dict[GridPoint, int],
    ) -> Dict[GridPoint, ColorState]:
        """Return search sources: tree vertices with their committed color states.

        Fresh (pin-only) vertices start fully flexible at ``111``; vertices
        that already carry routed metal of this net are constrained to the
        committed mask so that attaching a different mask is charged as a
        stitch by the search.
        """
        sources: Dict[GridPoint, ColorState] = {}
        for vertex in tree_vertices:
            color = tree_colors.get(vertex)
            sources[vertex] = (
                ColorState.single(color) if color is not None else ColorState.all()
            )
        return sources

    # ------------------------------------------------------------------

    def conflict_report(self, solution: RoutingSolution) -> ConflictReport:
        """Return the conflict report of *solution* on this router's grid.

        Served from the incremental tallies (route-object identity detects
        snapshot restores and external edits); the full-scan
        :attr:`conflict_checker` remains available as the reference oracle.
        """
        return self.incremental_conflicts.check(solution)
