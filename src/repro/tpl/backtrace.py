"""Backtrace with verSet / segSet color merging (paper Algorithm 3).

After color-state searching reaches a pin, the path is walked backwards from
the destination vertex to the routed tree (the vertices with cost zero).
Along the walk the per-vertex color states are merged:

* a **verSet** (Definition 2) groups consecutive path vertices that share a
  color state,
* a **segSet** (Definition 3) groups verSets that can still share one mask;
  two adjacent vertices fall into different segSets only when a stitch is
  introduced between them.

When the walk ends, each segSet picks its final single mask (the cheapest
one against the surrounding already-colored metal) and the chosen colors are
committed to the route and the grid.  Layer changes (vias) always terminate
a segSet but never count as stitches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dr.cost import CostModel
from repro.geometry import GridPoint
from repro.grid import NetRoute, RoutingGrid
from repro.tpl.color_state import ALL_COLORS, ColorState
from repro.tpl.search import ColorSearchResult


@dataclass
class PathSegmentSet:
    """A segSet: a run of path vertices that will receive one common mask."""

    color_state: ColorState
    vertices: List[GridPoint] = field(default_factory=list)
    final_color: Optional[int] = None

    def add_vertex(self, vertex: GridPoint, state: ColorState) -> bool:
        """Try to absorb *vertex* with color state *state*.

        Returns ``True`` when the vertex joins this segSet (the states share a
        mask); the segSet's state narrows to the common masks, mirroring
        Algorithm 3 lines 11-15.  Returns ``False`` when a stitch is needed.
        """
        common = self.color_state.intersection(state)
        if common.is_empty:
            return False
        self.color_state = common
        self.vertices.append(vertex)
        return True

    @property
    def first(self) -> GridPoint:
        """Return the first vertex added (closest to the destination pin)."""
        return self.vertices[0]

    @property
    def last(self) -> GridPoint:
        """Return the last vertex added (closest to the routed tree)."""
        return self.vertices[-1]


@dataclass
class ColoredPath:
    """The outcome of backtracing one search: colored vertices plus stitches."""

    net_name: str
    vertices: List[GridPoint]
    segments: List[PathSegmentSet]
    stitches: List[Tuple[GridPoint, GridPoint]]

    def color_of(self, vertex: GridPoint) -> Optional[int]:
        """Return the final mask of *vertex* on this path, if assigned."""
        for segment in self.segments:
            if segment.final_color is not None and vertex in segment.vertices:
                return segment.final_color
        return None

    def colors(self) -> Dict[GridPoint, int]:
        """Return the final mask of every path vertex."""
        result: Dict[GridPoint, int] = {}
        for segment in self.segments:
            if segment.final_color is None:
                continue
            for vertex in segment.vertices:
                result[vertex] = segment.final_color
        return result

    @property
    def stitch_count(self) -> int:
        """Return the number of stitches introduced along this path."""
        return len(self.stitches)


class Backtracer:
    """Implements Algorithm 3 on top of a :class:`ColorSearchResult`."""

    def __init__(self, grid: RoutingGrid, cost_model: CostModel) -> None:
        self.grid = grid
        self.cost_model = cost_model

    def backtrace(
        self,
        search: ColorSearchResult,
        net_name: str,
        tree_colors: Optional[Dict[GridPoint, int]] = None,
    ) -> ColoredPath:
        """Walk from the reached pin back to the tree and color the path.

        Parameters
        ----------
        search:
            A successful color-state search.
        net_name:
            The net being routed.
        tree_colors:
            Final masks of vertices already committed for this net (the
            routed tree).  The path's last vertex joins the tree; when the
            join vertex already has a mask the first/last segSet is
            constrained to it so a disagreement is surfaced as a stitch
            rather than silently overwritten.
        """
        if not search.found:
            raise ValueError("backtrace requires a successful search")
        tree_colors = tree_colors or {}
        path = search.path_to_source()

        segments: List[PathSegmentSet] = []
        stitches: List[Tuple[GridPoint, GridPoint]] = []

        def state_of(vertex: GridPoint) -> ColorState:
            committed = tree_colors.get(vertex)
            if committed is not None:
                return ColorState.single(committed)
            return search.color_state_of(vertex)

        current = PathSegmentSet(color_state=state_of(path[0]), vertices=[path[0]])
        segments.append(current)
        for previous, vertex in zip(path, path[1:]):
            same_layer = previous.layer == vertex.layer
            if same_layer and current.add_vertex(vertex, state_of(vertex)):
                continue
            if same_layer:
                # No common mask: Algorithm 3's "else" branch -- a stitch
                # separates the two segment sets.
                stitches.append((previous, vertex))
            current = PathSegmentSet(color_state=state_of(vertex), vertices=[vertex])
            segments.append(current)

        self._assign_final_colors(segments, net_name, tree_colors)
        # A stitch is only real if the two sides ended up on different masks;
        # two segSets split by a via are not stitches, and segSets that happen
        # to choose the same mask merge back seamlessly.
        confirmed = [
            (a, b)
            for (a, b) in stitches
            if self._final_color_at(segments, a) != self._final_color_at(segments, b)
        ]
        return ColoredPath(
            net_name=net_name,
            vertices=path,
            segments=segments,
            stitches=confirmed,
        )

    # ------------------------------------------------------------------

    def _assign_final_colors(
        self,
        segments: Sequence[PathSegmentSet],
        net_name: str,
        tree_colors: Dict[GridPoint, int],
    ) -> None:
        """Collapse every segSet to one mask.

        The mask is chosen to (a) honour any already-committed tree vertex in
        the segSet, (b) minimise the summed color-conflict cost of the
        segSet's vertices against the surrounding colored metal, and
        (c) match the neighbouring segSet's mask when costs tie, which avoids
        gratuitous stitches.
        """
        previous_color: Optional[int] = None
        for segment in segments:
            committed = [
                tree_colors[v] for v in segment.vertices if v in tree_colors
            ]
            if committed:
                segment.final_color = committed[0]
                previous_color = segment.final_color
                continue
            penalties = [0.0, 0.0, 0.0]
            for vertex in segment.vertices:
                vertex_costs = self.grid.color_costs(vertex, net_name)
                for color in ALL_COLORS:
                    penalties[color] += vertex_costs[color]
            candidates = segment.color_state.colors() or list(ALL_COLORS)
            best = min(
                candidates,
                key=lambda color: (
                    penalties[color],
                    0 if color == previous_color else 1,
                    color,
                ),
            )
            segment.final_color = best
            previous_color = best

    @staticmethod
    def _final_color_at(
        segments: Sequence[PathSegmentSet], vertex: GridPoint
    ) -> Optional[int]:
        for segment in segments:
            if vertex in segment.vertices:
                return segment.final_color
        return None


def apply_colored_path(
    path: ColoredPath,
    route: NetRoute,
    sink: "object",
) -> None:
    """Write a backtraced path into the net's route and a commit *sink*.

    The route gains the path edges, the final vertex colors, and the
    confirmed stitches; the sink receives the color and occupancy commits
    in the exact order the grid would -- a
    :class:`~repro.sched.commit.GridSink` applies them immediately (the
    sequential loop), a :class:`~repro.sched.commit.RecordingSink` logs
    them for deferred replay (the speculative batch backends).
    """
    ordered = path.vertices
    route.add_path(ordered)
    for vertex, color in path.colors().items():
        route.set_color(vertex, color)
        sink.set_color(vertex, color)
    for vertex in ordered:
        sink.occupy(vertex)
    for a, b in path.stitches:
        route.add_stitch(a, b)


def commit_colored_path(
    path: ColoredPath,
    route: NetRoute,
    grid: RoutingGrid,
) -> None:
    """Write a backtraced path into the net's route and the shared grid.

    Immediate-commit convenience over :func:`apply_colored_path`, kept for
    callers holding a grid rather than a sink.
    """
    from repro.sched.commit import GridSink

    apply_colored_path(path, route, GridSink(grid, route.net_name))
