"""The 3-bit color state of paper Table I and its set algebra.

A color state is "the preparatory assignment of different colors to the
routing segments on the same metal layer" (paper Definition 1).  It is a set
of masks a wire segment may still legally take; during color-state searching
a segment can keep several candidates open and only the backtrace collapses
it to one mask.

Encoding (Table I): bit 2 = red (mask 1), bit 1 = green (mask 2),
bit 0 = blue (mask 3), so ``100`` is "only red", ``111`` is "all colors",
``000`` is "no color is allowed" -- a dead state signalling an unavoidable
conflict on that segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

#: Mask indices.  ``RED`` is mask 1 in the paper's figures, ``GREEN`` mask 2,
#: ``BLUE`` mask 3.
RED = 0
GREEN = 1
BLUE = 2

#: Human-readable mask names indexed by color.
MASK_NAMES: Tuple[str, str, str] = ("red", "green", "blue")

#: All colors, in deterministic preference order used for tie-breaking.
ALL_COLORS: Tuple[int, int, int] = (RED, GREEN, BLUE)


def _bit_of(color: int) -> int:
    """Return the Table I bit mask of *color* (red=0b100, green=0b010, blue=0b001)."""
    if color not in (RED, GREEN, BLUE):
        raise ValueError(f"invalid TPL mask color {color}")
    return 1 << (2 - color)


@dataclass(frozen=True, order=True)
class ColorState:
    """An immutable set of candidate masks encoded as a 3-bit integer."""

    bits: int = 0b111

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= 0b111:
            raise ValueError(f"color state bits must be in [0, 7], got {self.bits}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def all(cls) -> "ColorState":
        """Return the ``111`` state: every mask allowed."""
        return cls(0b111)

    @classmethod
    def none(cls) -> "ColorState":
        """Return the ``000`` state: no mask allowed (dead / conflict state)."""
        return cls(0b000)

    @classmethod
    def of(cls, *colors: int) -> "ColorState":
        """Return the state allowing exactly the given colors."""
        bits = 0
        for color in colors:
            bits |= _bit_of(color)
        return cls(bits)

    @classmethod
    def single(cls, color: int) -> "ColorState":
        """Return the state allowing only *color*."""
        return cls(_bit_of(color))

    @classmethod
    def from_colors(cls, colors: Iterable[int]) -> "ColorState":
        """Return the state allowing every color in *colors*."""
        return cls.of(*colors)

    @classmethod
    def from_string(cls, encoded: str) -> "ColorState":
        """Parse a Table I binary string such as ``"101"``."""
        if len(encoded) != 3 or any(ch not in "01" for ch in encoded):
            raise ValueError(f"color state string must be 3 binary digits, got {encoded!r}")
        return cls(int(encoded, 2))

    # -- queries ---------------------------------------------------------------

    def allows(self, color: int) -> bool:
        """Return ``True`` when *color* is among the candidates."""
        return bool(self.bits & _bit_of(color))

    def colors(self) -> List[int]:
        """Return the allowed colors in ``RED, GREEN, BLUE`` order."""
        return [color for color in ALL_COLORS if self.allows(color)]

    def __iter__(self) -> Iterator[int]:
        return iter(self.colors())

    def __len__(self) -> int:
        return bin(self.bits).count("1")

    def __bool__(self) -> bool:
        return self.bits != 0

    @property
    def count(self) -> int:
        """Return the number of allowed colors."""
        return len(self)

    @property
    def is_empty(self) -> bool:
        """Return ``True`` for the dead ``000`` state."""
        return self.bits == 0

    @property
    def is_single(self) -> bool:
        """Return ``True`` when exactly one mask remains."""
        return self.count == 1

    @property
    def is_full(self) -> bool:
        """Return ``True`` for the unconstrained ``111`` state."""
        return self.bits == 0b111

    def single_color(self) -> int:
        """Return the only allowed color (raises unless :attr:`is_single`)."""
        colors = self.colors()
        if len(colors) != 1:
            raise ValueError(f"color state {self} does not hold exactly one color")
        return colors[0]

    # -- algebra ----------------------------------------------------------------

    def intersection(self, other: "ColorState") -> "ColorState":
        """Return the masks allowed by both states (the verSet merge of Alg. 3)."""
        return ColorState(self.bits & other.bits)

    def union(self, other: "ColorState") -> "ColorState":
        """Return the masks allowed by either state."""
        return ColorState(self.bits | other.bits)

    def complement(self) -> "ColorState":
        """Return the masks *not* allowed by this state."""
        return ColorState(~self.bits & 0b111)

    def without(self, color: int) -> "ColorState":
        """Return this state with *color* removed."""
        return ColorState(self.bits & ~_bit_of(color))

    def with_color(self, color: int) -> "ColorState":
        """Return this state with *color* added."""
        return ColorState(self.bits | _bit_of(color))

    def has_common(self, other: "ColorState") -> bool:
        """Return ``True`` when the two states share at least one mask.

        This is the "has common color" test of Algorithm 3 line 7: adjacent
        vertices sharing a color can stay in the same segment set, otherwise a
        stitch is required between them.
        """
        return bool(self.bits & other.bits)

    def preferred_color(self, penalties: Optional[Sequence[float]] = None) -> int:
        """Return the cheapest allowed color.

        *penalties* gives a cost per color (e.g. conflict pressure around a
        segment); ties and the no-penalty case fall back to the deterministic
        RED < GREEN < BLUE order.  Raises on the empty state.
        """
        colors = self.colors()
        if not colors:
            raise ValueError("cannot pick a color from the empty color state")
        if penalties is None:
            return colors[0]
        return min(colors, key=lambda color: (penalties[color], color))

    # -- presentation --------------------------------------------------------------

    def encode(self) -> str:
        """Return the Table I 3-digit binary encoding, e.g. ``"101"``."""
        return format(self.bits, "03b")

    def describe(self) -> str:
        """Return the Table I description string for this state."""
        if self.is_empty:
            return "none color is allowed"
        names = [MASK_NAMES[color] for color in self.colors()]
        if len(names) == 1:
            return f"only {names[0]} is allowed"
        if len(names) == 2:
            return f"{names[0]} and {names[1]} are allowed"
        return "all colors are allowed"

    def __str__(self) -> str:
        return self.encode()
