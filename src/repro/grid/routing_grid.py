"""The 3-D routing grid graph.

Vertices live at ``(layer, col, row)`` where *col*/*row* index a uniform
track lattice covering the die.  Edges connect planar neighbours on the same
layer (preferred-direction moves are cheap, wrong-way moves are penalised)
and vertically adjacent layers through vias.

The grid also stores the mutable routing state shared between nets:

* hard blockages (obstacles, macro obstructions),
* per-vertex net occupancy (who currently owns the metal at a vertex),
* per-vertex mask colors of already routed-and-colored metal,
* pre-colored fixed shapes (colored obstacles) that constrain the TPL masks,
* history cost accumulated by the rip-up-and-reroute loop.

All routers (the plain detailed router, the Mr.TPL color-state router, and
the DAC-2012 baseline) operate on this one structure so their comparisons
run on identical inputs.

Flat vertex indexing
--------------------

The grid's native addressing scheme is the **flat index**: every vertex maps
to ``index = (layer * num_cols + col) * num_rows + row`` (see
:meth:`RoutingGrid.index_of` / :meth:`RoutingGrid.vertex_of`).  All mutable
per-vertex state lives in dense ``array``/``bytearray`` buffers indexed by
that integer, so the search engines' hot path is O(1) array reads with no
:class:`~repro.geometry.GridPoint` allocation and no dict hashing.  A
precomputed neighbour table (:meth:`RoutingGrid.neighbor_table`) stores, for
every vertex, its six neighbour indices in :data:`ALL_DIRECTIONS` order
(``-1`` for out-of-bounds).  The legacy ``GridPoint``-based API is preserved
on top as thin shims converting at the boundary.

Two deliberately sparse side tables remain dicts: the rare multi-owner
occupancy case (a short, negotiated away by rip-up & reroute) and the
per-net color-pressure overlay (non-zero only near a net's own metal).

The mutation choke point
------------------------

Every mutation of searchable state flows through **one** method,
:meth:`RoutingGrid.apply_op`, as a :mod:`repro.journal` op tuple.  The
public mutators (``occupy``/``release_net``/``set_vertex_color``/
``add_history``/``decay_history``/``block_*``/``reset_routing_state``) are
thin wrappers that build the op; ``apply_op`` dispatches it to the private
``_apply_*`` handler, records it in the attached
:class:`~repro.journal.MutationJournal` (if any), and taps the delta
listeners of :mod:`repro.check`.  Replaying a journal onto a fresh grid
over the same design therefore reproduces every buffer bit-identically --
the property the persistent worker pool and checkpoint/resume rest on.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.accel import get_numpy
from repro.design import Design
from repro.geometry import GridPoint, Point, Rect, SpatialIndex
from repro.journal import (
    MutationJournal,
    OP_BLOCK_RECT,
    OP_BLOCK_VERTEX,
    OP_COLOR,
    OP_DECAY,
    OP_HISTORY,
    OP_INTERN,
    OP_OCCUPY,
    OP_RELEASE,
    OP_RESET,
    Op,
)
from repro.tech import DesignRules, TechStack


class Direction(Enum):
    """Search directions from a grid vertex (paper Alg. 2: ``{F,B,R,L,U,D}``)."""

    EAST = (0, 1, 0)    # +col
    WEST = (0, -1, 0)   # -col
    NORTH = (0, 0, 1)   # +row
    SOUTH = (0, 0, -1)  # -row
    UP = (1, 0, 0)      # +layer (via)
    DOWN = (-1, 0, 0)   # -layer (via)

    @property
    def delta(self) -> Tuple[int, int, int]:
        """Return ``(dlayer, dcol, drow)``."""
        return self.value

    @property
    def is_via(self) -> bool:
        """Return ``True`` for layer-changing moves."""
        return self in (Direction.UP, Direction.DOWN)

    @property
    def is_horizontal(self) -> bool:
        """Return ``True`` for moves along the x axis."""
        return self in (Direction.EAST, Direction.WEST)

    @property
    def is_vertical(self) -> bool:
        """Return ``True`` for moves along the y axis."""
        return self in (Direction.NORTH, Direction.SOUTH)

    @property
    def opposite(self) -> "Direction":
        """Return the reverse direction."""
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
}

#: Planar directions only (no vias); the stitch rule of Algorithm 2 applies
#: to these, because a via between layers is never a stitch.
PLANAR_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)

#: All six search directions.  The neighbour-table direction slots follow
#: this order, so ``Direction`` and small-int direction indices interconvert
#: through :data:`DIRECTION_INDEX` / :data:`INDEX_DIRECTION`.
ALL_DIRECTIONS: Tuple[Direction, ...] = PLANAR_DIRECTIONS + (Direction.UP, Direction.DOWN)

#: Number of neighbour slots per vertex in the flat neighbour table.
NUM_DIRECTIONS = 6

#: ``Direction`` -> neighbour-table slot (0..5).
DIRECTION_INDEX: Dict[Direction, int] = {d: i for i, d in enumerate(ALL_DIRECTIONS)}

#: Neighbour-table slot (0..5) -> ``Direction``.
INDEX_DIRECTION: Tuple[Direction, ...] = ALL_DIRECTIONS

#: Slots >= this index are via (layer-changing) moves.
FIRST_VIA_DIRECTION = 4


@dataclass(frozen=True)
class OffsetArrays:
    """Flat-buffer twin of an :meth:`RoutingGrid.interaction_offsets` table.

    The tuple-of-tuples table drives the pure-Python loops; the three
    parallel ``array('q')`` buffers are what the vectorised / native check
    kernels consume directly (zero-copy ``frombuffer`` / ``Py_buffer``).
    Frozen and cached on the grid so every consumer shares one copy.
    """

    offsets: Tuple[Tuple[int, int, int], ...]
    dcols: array
    drows: array
    deltas: array

    def __len__(self) -> int:
        return len(self.offsets)


@dataclass(frozen=True)
class ColoredShape:
    """A piece of colored metal registered on the grid for TPL interactions."""

    net_name: str
    color: int
    rect: Rect
    layer: int


class RoutingGrid:
    """Mutable routing grid over a :class:`~repro.design.Design`.

    Parameters
    ----------
    design:
        The design whose die area, obstacles and pins seed the grid.
    pitch:
        Track pitch in DBU; a single pitch shared by all layers keeps vertex
        columns/rows aligned vertically so vias land on track crossings.
    """

    def __init__(self, design: Design, pitch: Optional[int] = None) -> None:
        self.design = design
        self.tech: TechStack = design.tech
        self.rules: DesignRules = design.tech.rules
        self.pitch = pitch if pitch is not None else self.tech.layers[0].pitch
        if self.pitch <= 0:
            raise ValueError("track pitch must be positive")

        die = design.die_area
        self.origin = Point(die.xlo, die.ylo)
        self.num_layers = self.tech.num_layers
        self.num_cols = max(2, die.width // self.pitch + 1)
        self.num_rows = max(2, die.height // self.pitch + 1)
        #: Vertices per layer plane (``num_cols * num_rows``).
        self.plane_size = self.num_cols * self.num_rows
        num_vertices = self.num_layers * self.plane_size

        # --- Flat per-vertex state buffers (indexed by the flat index) ---
        # Hard blockages: 1 byte per vertex.
        self._blocked_buf = bytearray(num_vertices)
        # Single-owner occupancy: 0 = free, >0 = net id, -1 = multi-owner
        # (owners in the `_multi_owners` side table).
        self._owner_buf = array("i", [0]) * num_vertices
        # Final mask color of routed metal: 0 = uncolored, else color + 1.
        self._color_buf = bytearray(num_vertices)
        # History cost from rip-up & reroute negotiation.
        self._history_buf = array("d", [0.0]) * num_vertices
        # Incremental color pressure, 3 doubles per vertex: for every vertex,
        # how much conflict cost each mask would currently incur there
        # (aggregated over all colored metal within Dcolor).
        self._pressure_buf = array("d", [0.0, 0.0, 0.0]) * num_vertices

        # --- Sparse side tables ---
        # Net-name interning: ids start at 1 (0 means "free" in _owner_buf).
        self._net_ids: Dict[str, int] = {}
        self._net_names: List[str] = [""]
        # Rare multi-owner (short) case: index -> set of net ids.
        self._multi_owners: Dict[int, Set[int]] = {}
        # Reverse occupancy index so release_net is O(|net|), not O(|grid|).
        self._net_occupied: Dict[int, Set[int]] = {}
        # Indices with (potentially) non-zero history, for O(touched) decay.
        self._history_touched: Set[int] = set()
        # Per-net pressure overlay: net id -> {index: [r, g, b]}.  Nested so
        # a search can grab one net's whole overlay up front (the vectorised
        # per-search pressure snapshot enumerates it), while the hot-path
        # lookup stays one int-keyed dict get on the inner map.  Allows
        # excluding a net's own contribution when it is the one being routed.
        self._net_pressure: Dict[int, Dict[int, List[float]]] = {}
        # Per-net colored vertices: net id -> {index: color}.
        self._net_colored_vertices: Dict[int, Dict[int, int]] = {}
        # Interaction offsets precomputed per radius (pressure, checkers),
        # frozen to tuples so no caller can corrupt the shared cache.
        self._interaction_offsets_cache: Dict[int, Tuple[Tuple[int, int, int], ...]] = {}
        # Flat-buffer twins of the offset tables (repro.check kernels),
        # keyed by (radius, include_center).
        self._offset_arrays_cache: Dict[Tuple[int, bool], "OffsetArrays"] = {}
        # Per-layer canonical reach offsets (max(Dcolor, min_spacing)) so
        # the incremental checkers and the scheduler share one table.
        self._layer_offsets_cache: Dict[int, Tuple[Tuple[int, int, int], ...]] = {}
        # Per-radius block half-width when the offsets form a full square
        # (they do for the L-infinity spacing predicate); lets the numpy
        # pressure kernel use strided-slice adds instead of offset loops.
        self._block_reach_cache: Dict[int, Optional[int]] = {}
        # Cached numpy view over the live pressure buffer, invalidated when
        # the buffer object is replaced (reset_routing_state).
        self._pressure_np_view: Optional[Tuple[object, object]] = None
        # Lazily built flat-index -> GridPoint table (geometry is immutable).
        self._vertex_table: Optional[Tuple[GridPoint, ...]] = None

        # Precomputed neighbour table, built lazily on first use (grids are
        # also constructed by code that never searches them).
        self._neighbor_table: Optional[array] = None

        # Monotone counter bumped on every mutation of searchable state
        # (occupancy, colors, pressure, history, blockages, resets).  Cost
        # snapshots key their caches on it: as long as the epoch is
        # unchanged, a previously built per-net snapshot is still exact.
        self._mutation_epoch = 0

        # Attached mutation journal (None = not recording).  When set,
        # apply_op appends every applied op, so the journal is a complete,
        # replayable event log of this grid's post-attach mutations.
        self._journal: Optional[MutationJournal] = None

        # Delta listeners (repro.check.DirtyRegionTracker): notified of
        # per-net occupancy / color commits and releases so incremental
        # checkers can re-validate only the changed neighbourhood.  Bound
        # hook methods are cached per event at subscribe time, so the hot
        # paths pay one truthiness test plus direct calls -- no per-event
        # attribute lookup.
        self._delta_listeners: List[object] = []
        self._occupy_hooks: List = []
        self._release_hooks: List = []
        self._color_hooks: List = []
        self._reset_hooks: List = []

        # Colored metal shapes (routed wires and pre-colored obstacles) for
        # color-distance queries, one spatial index per layer.
        self._colored_shapes: List[SpatialIndex[ColoredShape]] = [
            SpatialIndex(bucket_size=max(self.pitch * 8, 16)) for _ in range(self.num_layers)
        ]
        # Blockage shapes per layer for spacing-aware cost queries.
        self._blockage_shapes: List[SpatialIndex[str]] = [
            SpatialIndex(bucket_size=max(self.pitch * 8, 16)) for _ in range(self.num_layers)
        ]

        self._apply_design_blockages()
        self._register_fixed_colors()

    # ------------------------------------------------------------------
    # Flat vertex indexing
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Return the total vertex count."""
        return self.num_layers * self.plane_size

    @property
    def mutation_epoch(self) -> int:
        """Return the monotone mutation counter over searchable grid state.

        Bumped by every occupancy/color/history/blockage mutation and by
        :meth:`reset_routing_state`.  Consumers (per-search cost snapshots,
        the batch executor) may reuse any state derived from the grid for
        as long as the epoch is unchanged.
        """
        return self._mutation_epoch

    def index_of(self, vertex: GridPoint) -> int:
        """Return the flat index of an **in-bounds** *vertex*.

        The mapping is ``(layer * num_cols + col) * num_rows + row``; callers
        holding possibly out-of-bounds vertices must check :meth:`in_bounds`
        first (the GridPoint compatibility shims do).
        """
        return (vertex.layer * self.num_cols + vertex.col) * self.num_rows + vertex.row

    def vertex_of(self, index: int) -> GridPoint:
        """Return the :class:`GridPoint` addressed by flat *index*."""
        layer, rem = divmod(index, self.plane_size)
        col, row = divmod(rem, self.num_rows)
        return GridPoint(layer, col, row)

    def in_bounds(self, vertex: GridPoint) -> bool:
        """Return ``True`` when *vertex* lies inside the grid."""
        return (
            0 <= vertex.layer < self.num_layers
            and 0 <= vertex.col < self.num_cols
            and 0 <= vertex.row < self.num_rows
        )

    def vertex_table(self) -> Tuple[GridPoint, ...]:
        """Return every :class:`GridPoint` indexed by flat index, cached.

        The geometry never changes after construction, so hit-processing
        loops (the incremental checkers translate thousands of flat kernel
        hits back to vertices per refresh) index this table instead of
        paying a :meth:`vertex_of` divmod + allocation per hit.
        """
        table = self._vertex_table
        if table is None:
            vertex_of = self.vertex_of
            table = tuple(vertex_of(index) for index in range(self.num_vertices))
            self._vertex_table = table
        return table

    def neighbor_table(self) -> array:
        """Return the precomputed flat neighbour table.

        Entry ``index * 6 + d`` holds the neighbour index of vertex *index*
        in direction ``ALL_DIRECTIONS[d]``, or ``-1`` when that move leaves
        the grid.  Built once, lazily, in O(6 V).
        """
        if self._neighbor_table is None:
            self._neighbor_table = self._build_neighbor_table()
        return self._neighbor_table

    def _build_neighbor_table(self) -> array:
        layers, cols, rows = self.num_layers, self.num_cols, self.num_rows
        plane = self.plane_size
        table = [-1] * (NUM_DIRECTIONS * self.num_vertices)
        index = 0
        for layer in range(layers):
            up_ok = layer + 1 < layers
            down_ok = layer > 0
            for col in range(cols):
                east_ok = col + 1 < cols
                west_ok = col > 0
                for row in range(rows):
                    base = NUM_DIRECTIONS * index
                    if east_ok:
                        table[base] = index + rows
                    if west_ok:
                        table[base + 1] = index - rows
                    if row + 1 < rows:
                        table[base + 2] = index + 1
                    if row > 0:
                        table[base + 3] = index - 1
                    if up_ok:
                        table[base + 4] = index + plane
                    if down_ok:
                        table[base + 5] = index - plane
                    index += 1
        return array("i", table)

    # ------------------------------------------------------------------
    # Delta listeners (incremental checking hooks)
    # ------------------------------------------------------------------

    def add_delta_listener(self, listener: object) -> None:
        """Subscribe *listener* to per-net occupancy/color delta events.

        A listener may implement any subset of ``on_occupy(net_id, index)``,
        ``on_release(net_id, indices)``, ``on_color(net_id, index, color)``
        and ``on_reset()``; missing hooks are skipped.  Listeners must not
        mutate the grid from inside a callback.
        """
        if listener not in self._delta_listeners:
            self._delta_listeners.append(listener)
            self._rebuild_delta_hooks()

    def remove_delta_listener(self, listener: object) -> None:
        """Unsubscribe *listener*; unknown listeners are ignored."""
        try:
            self._delta_listeners.remove(listener)
        except ValueError:
            return
        self._rebuild_delta_hooks()

    def _rebuild_delta_hooks(self) -> None:
        self._occupy_hooks = self._bound_hooks("on_occupy")
        self._release_hooks = self._bound_hooks("on_release")
        self._color_hooks = self._bound_hooks("on_color")
        self._reset_hooks = self._bound_hooks("on_reset")

    def _bound_hooks(self, hook: str) -> List:
        return [
            callback
            for listener in self._delta_listeners
            for callback in (getattr(listener, hook, None),)
            if callback is not None
        ]

    # ------------------------------------------------------------------
    # Mutation choke point (journal ops)
    # ------------------------------------------------------------------

    @property
    def journal(self) -> Optional[MutationJournal]:
        """Return the attached mutation journal, or ``None``."""
        return self._journal

    def attach_journal(
        self, journal: Optional[MutationJournal] = None
    ) -> MutationJournal:
        """Attach (creating if needed) a journal recording every future op.

        The journal captures only post-attach mutations; a replica must
        start from the state the grid had at attach time (for an attach
        right after construction: a fresh grid over the same design).
        Re-attaching while a different journal is active raises -- two
        concurrent journals would each hold an incomplete stream.
        """
        if journal is None:
            journal = MutationJournal()
        if self._journal is not None and self._journal is not journal:
            raise RuntimeError("grid already has a different journal attached")
        self._journal = journal
        return journal

    def detach_journal(self) -> Optional[MutationJournal]:
        """Stop recording and return the previously attached journal."""
        journal = self._journal
        self._journal = None
        return journal

    def apply_op(self, op: Op):
        """Apply one :mod:`repro.journal` op -- THE mutation choke point.

        Every grid mutation flows through here, whether issued by a public
        mutator, replayed from a commit log (:mod:`repro.sched.commit`), or
        replayed from a journal (:func:`repro.journal.replay_ops`).  The op
        is dispatched to its ``_apply_*`` handler, recorded in the attached
        journal, and then tapped to the delta listeners of
        :mod:`repro.check` -- so journal replicas and incremental checkers
        observe the exact same event stream.  Returns the handler's result
        (e.g. the new net id for ``intern`` ops).
        """
        kind = op[0]
        handler = _OP_HANDLERS.get(kind)
        if handler is None:
            raise ValueError(f"unknown journal op {op!r}")
        result = handler(self, op)
        if self._journal is not None:
            self._journal.record(op)
        # Delta-listener tap: the live consumers of the op stream.
        if kind == OP_OCCUPY:
            if self._occupy_hooks:
                for callback in self._occupy_hooks:
                    callback(op[1], op[2])
        elif kind == OP_COLOR:
            if self._color_hooks:
                for callback in self._color_hooks:
                    callback(op[1], op[2], op[3])
        elif kind == OP_RELEASE:
            if self._release_hooks and result[1]:
                for callback in self._release_hooks:
                    callback(op[1], result[1])
        elif kind == OP_RESET:
            for callback in self._reset_hooks:
                callback()
        return result

    # ------------------------------------------------------------------
    # Net-name interning
    # ------------------------------------------------------------------

    def net_id(self, net_name: str) -> int:
        """Return (creating if needed) the interned id of *net_name* (>= 1).

        First-time interning is journalled (an ``intern`` op) because the
        occupancy buffer stores interned ids: a bit-identical replay must
        assign ids in the exact order the live grid did.
        """
        net_id = self._net_ids.get(net_name)
        if net_id is None:
            net_id = self.apply_op((OP_INTERN, net_name))
        return net_id

    def _apply_intern(self, op: Op) -> int:
        net_name = op[1]
        net_id = self._net_ids.get(net_name)
        if net_id is None:
            net_id = len(self._net_names)
            self._net_ids[net_name] = net_id
            self._net_names.append(net_name)
        return net_id

    def net_id_if_known(self, net_name: str) -> int:
        """Return the interned id of *net_name*, or ``0`` when never seen."""
        return self._net_ids.get(net_name, 0)

    def net_name_of(self, net_id: int) -> str:
        """Return the net name of interned id *net_id*."""
        return self._net_names[net_id]

    # ------------------------------------------------------------------
    # Geometry mapping
    # ------------------------------------------------------------------

    def physical_point(self, vertex: GridPoint) -> Point:
        """Return the DBU coordinate of *vertex*."""
        return Point(
            self.origin.x + vertex.col * self.pitch,
            self.origin.y + vertex.row * self.pitch,
        )

    def vertex_rect(self, vertex: GridPoint) -> Rect:
        """Return the metal rectangle a wire through *vertex* occupies."""
        half = max(self.rules.wire_width // 2, 0)
        point = self.physical_point(vertex)
        return Rect(point.x - half, point.y - half, point.x + half, point.y + half)

    def nearest_vertex(self, layer: int, point: Point) -> GridPoint:
        """Return the grid vertex on *layer* closest to *point* (clamped)."""
        col = round((point.x - self.origin.x) / self.pitch)
        row = round((point.y - self.origin.y) / self.pitch)
        col = min(max(col, 0), self.num_cols - 1)
        row = min(max(row, 0), self.num_rows - 1)
        return GridPoint(layer, col, row)

    def vertices_covering(self, layer: int, rect: Rect) -> List[GridPoint]:
        """Return the vertices on *layer* whose track crossing lies inside *rect*."""
        col_lo = max(0, -(-(rect.xlo - self.origin.x) // self.pitch))
        col_hi = min(self.num_cols - 1, (rect.xhi - self.origin.x) // self.pitch)
        row_lo = max(0, -(-(rect.ylo - self.origin.y) // self.pitch))
        row_hi = min(self.num_rows - 1, (rect.yhi - self.origin.y) // self.pitch)
        vertices: List[GridPoint] = []
        for col in range(col_lo, col_hi + 1):
            for row in range(row_lo, row_hi + 1):
                vertices.append(GridPoint(layer, col, row))
        return vertices

    def pin_access_vertices(self, pin: "object") -> List[GridPoint]:
        """Return unblocked grid vertices covered by *pin*'s shapes.

        If a pin shape covers no track crossing (possible for tiny off-grid
        pins), the nearest vertex to the shape centre is used instead so
        every pin stays reachable.
        """
        vertices: List[GridPoint] = []
        for shape in pin.shapes:
            covered = self.vertices_covering(shape.layer, shape.rect)
            if not covered:
                covered = [self.nearest_vertex(shape.layer, shape.rect.center)]
            vertices.extend(v for v in covered if not self.is_blocked(v))
        if not vertices:
            # Every covered vertex is blocked; fall back to the raw cover so
            # the router can at least report the failure meaningfully.
            for shape in pin.shapes:
                covered = self.vertices_covering(shape.layer, shape.rect)
                if not covered:
                    covered = [self.nearest_vertex(shape.layer, shape.rect.center)]
                vertices.extend(covered)
        # Deterministic order helps reproducibility.
        return sorted(set(vertices))

    def all_vertices(self) -> Iterator[GridPoint]:
        """Iterate over every vertex of the grid (layer-major order)."""
        for layer in range(self.num_layers):
            for col in range(self.num_cols):
                for row in range(self.num_rows):
                    yield GridPoint(layer, col, row)

    # ------------------------------------------------------------------
    # Neighbourhood and base edge costs
    # ------------------------------------------------------------------

    def neighbor(self, vertex: GridPoint, direction: Direction) -> Optional[GridPoint]:
        """Return the vertex adjacent to *vertex* in *direction*, or ``None``."""
        dlayer, dcol, drow = direction.delta
        candidate = GridPoint(vertex.layer + dlayer, vertex.col + dcol, vertex.row + drow)
        if not self.in_bounds(candidate):
            return None
        return candidate

    def neighbors(self, vertex: GridPoint) -> Iterator[Tuple[Direction, GridPoint]]:
        """Yield ``(direction, neighbor)`` pairs for all in-bounds neighbours."""
        for direction in ALL_DIRECTIONS:
            nbr = self.neighbor(vertex, direction)
            if nbr is not None:
                yield direction, nbr

    def base_edge_cost(self, vertex: GridPoint, direction: Direction) -> float:
        """Return the traditional routing cost of moving from *vertex* in *direction*.

        This is the ``Cost_trad`` term of the paper's Eq. (1): unit wirelength
        for preferred-direction moves, a wrong-way penalty for off-direction
        moves, and the via cost for layer changes.  History and occupancy
        penalties are added separately because they depend on the destination
        vertex state at query time.
        """
        if direction.is_via:
            return self.rules.via_cost
        layer = self.tech.layers[vertex.layer]
        preferred = (
            layer.is_horizontal and direction.is_horizontal
            or layer.is_vertical and direction.is_vertical
        )
        return 1.0 if preferred else self.rules.wrong_way_penalty

    def congestion_cost(self, vertex: GridPoint, net_name: str) -> float:
        """Return history + occupancy cost of placing *net_name* metal at *vertex*."""
        if not self.in_bounds(vertex):
            return 0.0
        return self.congestion_cost_index(
            self.index_of(vertex), self.net_id_if_known(net_name)
        )

    def congestion_cost_index(self, index: int, net_id: int) -> float:
        """Index/net-id variant of :meth:`congestion_cost` (hot path)."""
        cost = self.rules.history_weight * self._history_buf[index]
        owner = self._owner_buf[index]
        if owner != 0 and owner != net_id:
            # Either a different single owner, or the multi-owner sentinel
            # (at least two distinct nets, so at least one is foreign).
            cost += self.rules.occupancy_penalty
        return cost

    # ------------------------------------------------------------------
    # Blockages
    # ------------------------------------------------------------------

    def block_vertex(self, vertex: GridPoint) -> None:
        """Mark a single vertex as unusable."""
        if self.in_bounds(vertex):
            self.apply_op((OP_BLOCK_VERTEX, self.index_of(vertex)))
        else:
            # Out-of-bounds blocks mutate nothing journal-worthy, but the
            # epoch bump is preserved for cache-invalidation parity.
            self._mutation_epoch += 1

    def _apply_block_vertex(self, op: Op) -> None:
        self._mutation_epoch += 1
        self._blocked_buf[op[1]] = 1

    def block_rect(self, layer: int, rect: Rect, name: str = "blockage") -> int:
        """Block every vertex covered by *rect* on *layer*; return the count."""
        return self.apply_op(
            (OP_BLOCK_RECT, layer, rect.xlo, rect.ylo, rect.xhi, rect.yhi, name)
        )

    def _apply_block_rect(self, op: Op) -> int:
        _kind, layer, xlo, ylo, xhi, yhi, name = op
        rect = Rect(xlo, ylo, xhi, yhi)
        self._mutation_epoch += 1
        vertices = self.vertices_covering(layer, rect)
        for vertex in vertices:
            self._blocked_buf[self.index_of(vertex)] = 1
        self._blockage_shapes[layer].insert(rect, name)
        return len(vertices)

    def is_blocked(self, vertex: GridPoint) -> bool:
        """Return ``True`` when *vertex* is covered by a hard blockage."""
        return self.in_bounds(vertex) and bool(self._blocked_buf[self.index_of(vertex)])

    def is_blocked_index(self, index: int) -> bool:
        """Index variant of :meth:`is_blocked`."""
        return bool(self._blocked_buf[index])

    def blocked_buffer(self) -> bytearray:
        """Return the live blockage buffer (read-only use by search engines)."""
        return self._blocked_buf

    def blocked_vertices(self) -> Set[GridPoint]:
        """Return a copy of the blocked vertex set."""
        return {
            self.vertex_of(index)
            for index, flag in enumerate(self._blocked_buf)
            if flag
        }

    def _apply_design_blockages(self) -> None:
        for shape in self.design.blockage_shapes():
            if 0 <= shape.layer < self.num_layers:
                self.block_rect(shape.layer, shape.rect)

    def _register_fixed_colors(self) -> None:
        for obstacle in self.design.colored_obstacles():
            if 0 <= obstacle.layer < self.num_layers:
                net_name = f"__fixed__{obstacle.name or id(obstacle)}"
                shape = ColoredShape(
                    net_name=net_name,
                    color=obstacle.color,
                    rect=obstacle.rect,
                    layer=obstacle.layer,
                )
                self._colored_shapes[obstacle.layer].insert(obstacle.rect, shape)
                self._add_rect_pressure(obstacle.layer, obstacle.rect, net_name, obstacle.color)

    # ------------------------------------------------------------------
    # Incremental color pressure
    # ------------------------------------------------------------------

    def interaction_radius(self, net: "object" = None, layer: Optional[int] = None) -> int:
        """Return the canonical interaction radius in DBU.

        Two pieces of metal interact -- through color pressure, the
        conflict checkers, or the dirty-region expansion -- when their gap
        is strictly below ``max(Dcolor, min_spacing)``.  With *layer* given
        the layer's own ``Dcolor`` override applies; otherwise the maximum
        over all layers is returned, which is the sound radius for a whole
        *net*: routes may use any layer, so a per-net radius can never be
        narrower than the widest layer rule -- the *net* argument therefore
        only documents intent at the call site and does not change the
        value.  This is the one helper the incremental checkers and the
        batch scheduler share.
        """
        if layer is not None:
            return max(self.rules.color_spacing_on(layer), self.rules.min_spacing)
        return max(
            max(self.rules.color_spacing_on(index), self.rules.min_spacing)
            for index in range(self.num_layers)
        )

    def interaction_reach_cells(self, radius: int) -> int:
        """Return the grid-cell reach of interactions at *radius* DBU.

        The number of track cells a vertex's metal can interact across:
        metal rectangles extend ``wire_width // 2`` beyond the track
        crossing on both sides, so the cell reach is
        ``ceil((radius + wire_width) / pitch)`` (with a floor of one cell).
        :meth:`interaction_offsets` enumerates exactly the offsets within
        this reach; the batch scheduler expands net windows by it.
        """
        half = max(self.rules.wire_width // 2, 0)
        return max(1, -(-(radius + 2 * half) // self.pitch))

    def interaction_offsets(self, radius: int) -> Tuple[Tuple[int, int, int], ...]:
        """Return planar ``(dcol, drow, flat_delta)`` offsets interacting at *radius*.

        Two same-layer vertices interact when the spacing between their metal
        rectangles (:meth:`Rect.distance_to`, the L-infinity gap) is strictly
        below *radius* -- the predicate shared by color-pressure updates, the
        spacing/conflict checkers and the dirty-region expansion of
        :mod:`repro.check`.  ``(0, 0, 0)`` is included; callers that must
        skip the vertex itself filter it out.  The flat delta
        (``dcol * num_rows + drow``) spares the consumers a re-encode.
        Precomputed once per radius and frozen to a tuple of tuples: the
        cache is shared between every consumer, so it must be immutable.
        """
        cached = self._interaction_offsets_cache.get(radius)
        if cached is not None:
            return cached
        half = max(self.rules.wire_width // 2, 0)
        reach = self.interaction_reach_cells(radius)
        offsets: List[Tuple[int, int, int]] = []
        base = Rect(-half, -half, half, half)
        for dcol in range(-reach, reach + 1):
            for drow in range(-reach, reach + 1):
                other = Rect(
                    dcol * self.pitch - half,
                    drow * self.pitch - half,
                    dcol * self.pitch + half,
                    drow * self.pitch + half,
                )
                if base.distance_to(other) < radius:
                    offsets.append((dcol, drow, dcol * self.num_rows + drow))
        frozen = tuple(offsets)
        self._interaction_offsets_cache[radius] = frozen
        return frozen

    def interaction_offset_arrays(self, radius: int, include_center: bool = True) -> OffsetArrays:
        """Return the :class:`OffsetArrays` twin of :meth:`interaction_offsets`.

        With ``include_center=False`` the ``(0, 0, 0)`` self-offset is
        dropped (the spacing checker's view: exact overlap is a short, not a
        spacing violation).  Cached per ``(radius, include_center)`` and
        frozen, so the incremental checkers, the dirty-region expansion and
        the check kernels all share one table per radius instead of each
        deriving their own.
        """
        key = (radius, include_center)
        cached = self._offset_arrays_cache.get(key)
        if cached is not None:
            return cached
        offsets = self.interaction_offsets(radius)
        if not include_center:
            offsets = tuple(offset for offset in offsets if offset != (0, 0, 0))
        arrays = OffsetArrays(
            offsets=offsets,
            dcols=array("q", [dcol for dcol, _drow, _delta in offsets]),
            drows=array("q", [drow for _dcol, drow, _delta in offsets]),
            deltas=array("q", [delta for _dcol, _drow, delta in offsets]),
        )
        self._offset_arrays_cache[key] = arrays
        return arrays

    def layer_interaction_offsets(self, layer: int) -> Tuple[Tuple[int, int, int], ...]:
        """Return the canonical reach offsets of *layer* (cached per layer).

        The reach is :meth:`interaction_radius` of the layer
        (``max(Dcolor, min_spacing)``) -- the table the incremental conflict
        checker scans with and the batch scheduler's window expansion is
        derived from.  Delegates to :meth:`interaction_offsets`, so the
        per-radius cache deduplicates layers sharing one ``Dcolor``.
        """
        cached = self._layer_offsets_cache.get(layer)
        if cached is None:
            cached = self.interaction_offsets(self.interaction_radius(layer=layer))
            self._layer_offsets_cache[layer] = cached
        return cached

    def layer_interaction_offset_arrays(self, layer: int) -> OffsetArrays:
        """Return the :class:`OffsetArrays` twin of :meth:`layer_interaction_offsets`."""
        return self.interaction_offset_arrays(self.interaction_radius(layer=layer))

    def _pressure_offsets(self, layer: int) -> Tuple[Tuple[int, int, int], ...]:
        """Return the offsets interacting at *layer*'s color spacing ``Dcolor``."""
        return self.interaction_offsets(self.rules.color_spacing_on(layer))

    def _interaction_block_reach(self, radius: int) -> Optional[int]:
        """Return the half-width R when the *radius* offsets form a full
        ``(2R+1) x (2R+1)`` square, else ``None``.

        The L-infinity spacing predicate is separable per axis, so the
        interacting offsets always form a square block in practice; the
        numpy pressure kernel relies on that to replace the offset loop
        with one strided-slice add, and this validation keeps the fallback
        loop authoritative should the predicate ever change shape.
        """
        if radius in self._block_reach_cache:
            return self._block_reach_cache[radius]
        offsets = self.interaction_offsets(radius)
        reach = max(dcol for dcol, _drow, _delta in offsets)
        square = {
            (dcol, drow)
            for dcol in range(-reach, reach + 1)
            for drow in range(-reach, reach + 1)
        }
        value: Optional[int] = reach
        if {(dcol, drow) for dcol, drow, _delta in offsets} != square:
            value = None
        self._block_reach_cache[radius] = value
        return value

    def _pressure_view(self, np: object) -> object:
        """Return the cached 4-D numpy view ``[layer, col, row, mask]`` over
        the live pressure buffer, rebuilt when the buffer is replaced."""
        cached = self._pressure_np_view
        if cached is not None and cached[0] is self._pressure_buf:
            return cached[1]
        view = np.frombuffer(self._pressure_buf).reshape(
            self.num_layers, self.num_cols, self.num_rows, 3
        )
        self._pressure_np_view = (self._pressure_buf, view)
        return view

    def _net_overlay(self, net_id: int) -> Dict[int, List[float]]:
        """Return (creating if needed) the mutable overlay map of *net_id*."""
        overlay = self._net_pressure.get(net_id)
        if overlay is None:
            overlay = {}
            self._net_pressure[net_id] = overlay
        return overlay

    def _add_vertex_pressure_index(
        self, index: int, net_id: int, color: int, sign: float
    ) -> None:
        """Add (or remove, with ``sign=-1``) the pressure of one colored vertex.

        The shared pressure map is updated with a numpy strided-slice add
        over the ``Dcolor`` block when acceleration is on; the pure-Python
        offset loop below is the fallback and the differential oracle (both
        perform one identical IEEE add per in-bounds block vertex, so the
        resulting maps are bit-identical).
        """
        layer, rem = divmod(index, self.plane_size)
        if not self.tech.layers[layer].tpl:
            return
        col, row = divmod(rem, self.num_rows)
        cols, rows = self.num_cols, self.num_rows
        amount = sign * self.rules.conflict_cost
        overlay = self._net_overlay(net_id)
        np = get_numpy()
        reach = (
            self._interaction_block_reach(self.rules.color_spacing_on(layer))
            if np is not None
            else None
        )
        if reach is not None:
            col_lo = col - reach if col >= reach else 0
            col_hi = min(col + reach, cols - 1)
            row_lo = row - reach if row >= reach else 0
            row_hi = min(row + reach, rows - 1)
            view = self._pressure_view(np)
            view[layer, col_lo : col_hi + 1, row_lo : row_hi + 1, color] += amount
            # The per-net overlay is a sparse dict; update it per block
            # vertex (the block is small: (2R+1)^2 entries at most).
            for target_col in range(col_lo, col_hi + 1):
                base = (layer * cols + target_col) * rows
                for target in range(base + row_lo, base + row_hi + 1):
                    own = overlay.get(target)
                    if own is None:
                        own = [0.0, 0.0, 0.0]
                        overlay[target] = own
                    own[color] += amount
            return
        pressure = self._pressure_buf
        for dcol, drow, delta in self._pressure_offsets(layer):
            target_col = col + dcol
            target_row = row + drow
            if not (0 <= target_col < cols and 0 <= target_row < rows):
                continue
            target = index + delta
            pressure[3 * target + color] += amount
            own = overlay.get(target)
            if own is None:
                own = [0.0, 0.0, 0.0]
                overlay[target] = own
            own[color] += amount

    def _add_rect_pressure(self, layer: int, rect: Rect, net_name: str, color: int) -> None:
        """Spread the pressure of a colored rectangle (fixed obstacle) on *layer*."""
        if not (0 <= color <= 2) or not self.tech.layers[layer].tpl:
            return
        overlay = self._net_overlay(self.net_id(net_name))
        dcolor = self.rules.color_spacing_on(layer)
        region = rect.expanded(dcolor + self.pitch)
        for vertex in self.vertices_covering(layer, region):
            if self.vertex_rect(vertex).distance_to(rect) < dcolor:
                index = self.index_of(vertex)
                self._pressure_buf[3 * index + color] += self.rules.conflict_cost
                own = overlay.setdefault(index, [0.0, 0.0, 0.0])
                own[color] += self.rules.conflict_cost

    # ------------------------------------------------------------------
    # Occupancy (routed metal ownership)
    # ------------------------------------------------------------------

    def occupy(self, vertex: GridPoint, net_name: str) -> None:
        """Record that *net_name* has metal at *vertex* (out-of-bounds ignored)."""
        if self.in_bounds(vertex):
            self.occupy_index(self.index_of(vertex), self.net_id(net_name))

    def occupy_index(self, index: int, net_id: int) -> None:
        """Index/net-id variant of :meth:`occupy`."""
        self.apply_op((OP_OCCUPY, net_id, index))

    def _apply_occupy(self, op: Op) -> None:
        _kind, net_id, index = op
        self._mutation_epoch += 1
        owner = self._owner_buf[index]
        if owner == 0:
            self._owner_buf[index] = net_id
        elif owner == net_id:
            pass
        elif owner == -1:
            self._multi_owners[index].add(net_id)
        else:
            self._multi_owners[index] = {owner, net_id}
            self._owner_buf[index] = -1
        occupied = self._net_occupied.get(net_id)
        if occupied is None:
            occupied = set()
            self._net_occupied[net_id] = occupied
        occupied.add(index)

    def release_net(self, net_name: str) -> int:
        """Remove all occupancy, colors and colored shapes of *net_name*.

        Returns the number of vertices released.  Used by rip-up & reroute.
        O(|net's metal|) thanks to the per-net reverse occupancy index.
        """
        net_id = self.net_id_if_known(net_name)
        if net_id == 0:
            return 0
        return self.apply_op((OP_RELEASE, net_id))[0]

    def _apply_release(self, op: Op) -> Tuple[int, Optional[Set[int]]]:
        """Release one net; return ``(released_count, delta_or_None)``.

        The delta (every vertex the net occupied or colored) is what the
        release hooks receive; it is built only when listeners exist --
        :meth:`apply_op` fires them from the returned value.
        """
        net_id = op[1]
        net_name = self._net_names[net_id]
        released = 0
        self._mutation_epoch += 1
        occupied_indices = sorted(self._net_occupied.pop(net_id, ()))
        for index in occupied_indices:
            owner = self._owner_buf[index]
            if owner == net_id:
                self._owner_buf[index] = 0
            elif owner == -1:
                owners = self._multi_owners[index]
                owners.discard(net_id)
                if len(owners) == 1:
                    self._owner_buf[index] = owners.pop()
                    del self._multi_owners[index]
            else:
                continue
            released += 1
            self._color_buf[index] = 0
        colored_vertices = self._net_colored_vertices.pop(net_id, {})
        for index, color in colored_vertices.items():
            self._add_vertex_pressure_index(index, net_id, color, sign=-1.0)
        for layer_index in range(self.num_layers):
            spatial = self._colored_shapes[layer_index]
            stale = [item for _rect, item in spatial.items() if item.net_name == net_name]
            for item in stale:
                spatial.remove_item(item)
        delta: Optional[Set[int]] = None
        if self._release_hooks and (occupied_indices or colored_vertices):
            # The per-net reverse index makes the released delta O(|net|).
            delta = set(occupied_indices) | set(colored_vertices)
        return released, delta

    def occupants(self, vertex: GridPoint) -> Set[str]:
        """Return the set of net names with metal at *vertex*."""
        if not self.in_bounds(vertex):
            return set()
        owner = self._owner_buf[self.index_of(vertex)]
        if owner == 0:
            return set()
        if owner == -1:
            ids = self._multi_owners[self.index_of(vertex)]
            return {self._net_names[net_id] for net_id in ids}
        return {self._net_names[owner]}

    def is_occupied_by_other(self, vertex: GridPoint, net_name: str) -> bool:
        """Return ``True`` when a different net already has metal at *vertex*."""
        if not self.in_bounds(vertex):
            return False
        return self.is_occupied_by_other_index(
            self.index_of(vertex), self.net_id_if_known(net_name)
        )

    def is_occupied_by_other_index(self, index: int, net_id: int) -> bool:
        """Index/net-id variant of :meth:`is_occupied_by_other`."""
        owner = self._owner_buf[index]
        # A multi-owner vertex holds >= 2 distinct nets, so some owner is
        # always foreign; a single owner is foreign unless it is net_id.
        return owner != 0 and owner != net_id

    def owner_buffer(self) -> array:
        """Return the live occupancy-owner buffer (read-only use by engines).

        ``0`` = free, ``> 0`` = single owner net id, ``-1`` = multi-owner
        (consult :meth:`occupants` for the names).
        """
        return self._owner_buf

    def occupied_vertices(self) -> Dict[GridPoint, Set[str]]:
        """Return a copy of the occupancy map."""
        result: Dict[GridPoint, Set[str]] = {}
        for index, owner in enumerate(self._owner_buf):
            if owner == 0:
                continue
            if owner == -1:
                names = {self._net_names[i] for i in self._multi_owners[index]}
            else:
                names = {self._net_names[owner]}
            result[self.vertex_of(index)] = names
        return result

    # ------------------------------------------------------------------
    # Colors (TPL masks) on routed metal
    # ------------------------------------------------------------------

    def set_vertex_color(self, vertex: GridPoint, net_name: str, color: int) -> None:
        """Color the routed metal of *net_name* at *vertex* with mask *color*.

        Re-coloring the same vertex for the same net is idempotent (same
        color) or replaces the previous contribution (different color), so
        the incremental pressure bookkeeping never double-counts.
        """
        if not 0 <= color <= 2:
            raise ValueError(f"TPL mask color must be 0, 1 or 2, got {color}")
        if not self.in_bounds(vertex):
            return
        self.apply_op((OP_COLOR, self.net_id(net_name), self.index_of(vertex), color))

    def _apply_color(self, op: Op) -> None:
        _kind, net_id, index, color = op
        net_name = self._net_names[net_id]
        vertex = self.vertex_of(index)
        self._mutation_epoch += 1
        registered = self._net_colored_vertices.get(net_id)
        if registered is None:
            registered = {}
            self._net_colored_vertices[net_id] = registered
        previous = registered.get(index)
        if previous == color:
            self._color_buf[index] = color + 1
            return
        if previous is not None:
            self._add_vertex_pressure_index(index, net_id, previous, sign=-1.0)
            del registered[index]
            # Purge the old-mask shape, or color-distance queries would keep
            # seeing phantom metal of the previous mask at this vertex.
            self._colored_shapes[vertex.layer].remove_item(
                ColoredShape(
                    net_name=net_name,
                    color=previous,
                    rect=self.vertex_rect(vertex),
                    layer=vertex.layer,
                )
            )
        self._color_buf[index] = color + 1
        shape = ColoredShape(
            net_name=net_name,
            color=color,
            rect=self.vertex_rect(vertex),
            layer=vertex.layer,
        )
        self._colored_shapes[vertex.layer].insert(shape.rect, shape)
        registered[index] = color
        self._add_vertex_pressure_index(index, net_id, color, sign=1.0)

    def vertex_color(self, vertex: GridPoint) -> Optional[int]:
        """Return the mask color of routed metal at *vertex*, if any."""
        if not self.in_bounds(vertex):
            return None
        stored = self._color_buf[self.index_of(vertex)]
        return None if stored == 0 else stored - 1

    def vertex_color_index(self, index: int) -> Optional[int]:
        """Index variant of :meth:`vertex_color`."""
        stored = self._color_buf[index]
        return None if stored == 0 else stored - 1

    def colored_shapes_near(
        self, layer: int, rect: Rect, distance: int
    ) -> Iterator[Tuple[Rect, ColoredShape]]:
        """Yield colored shapes on *layer* closer than *distance* to *rect*."""
        if not 0 <= layer < self.num_layers:
            return
        yield from self._colored_shapes[layer].within(rect, distance)

    def color_cost(self, vertex: GridPoint, net_name: str, color: int) -> float:
        """Return the TPL color cost of putting *color* metal of *net_name* at *vertex*.

        This is the ``Cost_color`` term of Eq. (1): each already-colored piece
        of metal of a *different* net on the same layer within ``Dcolor`` and
        sharing the candidate mask contributes one conflict penalty.  Metal of
        the same net never conflicts (it will be electrically connected).
        """
        return self.color_costs(vertex, net_name)[color]

    def color_costs(self, vertex: GridPoint, net_name: str) -> List[float]:
        """Return the color cost for each of the three masks at *vertex*.

        The value is served from the incrementally maintained color-pressure
        buffer (updated on :meth:`set_vertex_color` / :meth:`release_net`),
        with the querying net's own contribution subtracted out.
        """
        if not self.in_bounds(vertex):
            return [0.0, 0.0, 0.0]
        return self.color_costs_index(
            self.index_of(vertex), self.net_id_if_known(net_name)
        )

    def color_costs_index(self, index: int, net_id: int) -> List[float]:
        """Index/net-id variant of :meth:`color_costs` (hot path)."""
        base = 3 * index
        pressure = self._pressure_buf
        overlay = self._net_pressure.get(net_id)
        own = overlay.get(index) if overlay else None
        if own is None:
            return [pressure[base], pressure[base + 1], pressure[base + 2]]
        return [
            max(pressure[base] - own[0], 0.0),
            max(pressure[base + 1] - own[1], 0.0),
            max(pressure[base + 2] - own[2], 0.0),
        ]

    def pressure_buffer(self) -> array:
        """Return the live color-pressure buffer (3 doubles per vertex)."""
        return self._pressure_buf

    def net_pressure_overlay(self, net_id: int) -> Dict[int, List[float]]:
        """Return *net_id*'s pressure overlay map (``index -> [r, g, b]``).

        Read-only use by search engines (the per-search color-pressure
        snapshot enumerates it); maintained by :meth:`set_vertex_color` /
        :meth:`release_net`.  Returns an empty map for nets without one.
        """
        return self._net_pressure.get(net_id) or {}

    # ------------------------------------------------------------------
    # History cost (negotiated congestion)
    # ------------------------------------------------------------------

    def add_history(self, vertex: GridPoint, amount: float = 1.0) -> None:
        """Increase the history cost at *vertex* (rip-up & reroute feedback)."""
        if self.in_bounds(vertex):
            self.add_history_index(self.index_of(vertex), amount)

    def add_history_index(self, index: int, amount: float = 1.0) -> None:
        """Index variant of :meth:`add_history`."""
        self.apply_op((OP_HISTORY, index, amount))

    def _apply_history(self, op: Op) -> None:
        _kind, index, amount = op
        self._mutation_epoch += 1
        self._history_buf[index] += amount
        self._history_touched.add(index)

    def history(self, vertex: GridPoint) -> float:
        """Return the accumulated history cost at *vertex*."""
        if not self.in_bounds(vertex):
            return 0.0
        return self._history_buf[self.index_of(vertex)]

    def history_buffer(self) -> array:
        """Return the live history buffer (read-only use by search engines)."""
        return self._history_buf

    def decay_history(self, factor: Optional[float] = None) -> None:
        """Multiply every history entry by *factor* (PathFinder-style decay).

        When *factor* is ``None`` the :attr:`DesignRules.history_decay`
        factor applies -- the value the rip-up-and-reroute loops pass.
        The journalled op carries the resolved factor, so replay does not
        depend on the rules object.
        """
        if factor is None:
            factor = self.rules.history_decay
        self.apply_op((OP_DECAY, factor))

    def _apply_decay(self, op: Op) -> None:
        factor = op[1]
        self._mutation_epoch += 1
        history = self._history_buf
        dead: List[int] = []
        for index in self._history_touched:
            value = history[index] * factor
            if value < 1e-9:
                history[index] = 0.0
                dead.append(index)
            else:
                history[index] = value
        self._history_touched.difference_update(dead)

    # ------------------------------------------------------------------
    # Bulk state management
    # ------------------------------------------------------------------

    def reset_routing_state(self) -> None:
        """Drop all routing results (occupancy, colors, history) but keep blockages."""
        self.apply_op((OP_RESET,))

    def _apply_reset(self, op: Op) -> None:
        self._mutation_epoch += 1
        num_vertices = self.num_vertices
        self._owner_buf = array("i", [0]) * num_vertices
        self._color_buf = bytearray(num_vertices)
        self._history_buf = array("d", [0.0]) * num_vertices
        self._pressure_buf = array("d", [0.0, 0.0, 0.0]) * num_vertices
        self._pressure_np_view = None
        self._multi_owners.clear()
        self._net_occupied.clear()
        self._history_touched.clear()
        self._net_pressure.clear()
        self._net_colored_vertices.clear()
        for layer_index in range(self.num_layers):
            spatial = self._colored_shapes[layer_index]
            fixed = [
                (rect, item)
                for rect, item in spatial.items()
                if item.net_name.startswith("__fixed__")
            ]
            spatial.clear()
            for rect, item in fixed:
                spatial.insert(rect, item)
        # Re-seed the pressure of the fixed, pre-colored obstacles.
        for obstacle in self.design.colored_obstacles():
            if 0 <= obstacle.layer < self.num_layers:
                self._add_rect_pressure(
                    obstacle.layer,
                    obstacle.rect,
                    f"__fixed__{obstacle.name or id(obstacle)}",
                    obstacle.color,
                )

    # ------------------------------------------------------------------
    # Dense state snapshots (checkpoint v2 / worker bootstrap)
    # ------------------------------------------------------------------

    #: Schema tag of :meth:`snapshot_state` documents.
    SNAPSHOT_FORMAT = "repro-grid-snapshot-v1"

    def snapshot_state(self) -> Dict[str, object]:
        """Export the complete mutable grid state as a flat document.

        The document is JSON- and pickle-clean (dense buffers as base64
        strings, sparse side tables as sorted pair lists) and, fed back
        through :meth:`restore_state` on a fresh grid over the same design,
        reproduces every buffer and side table **bit-identically** --
        including the exact IEEE-754 pressure/history doubles, which travel
        as raw bytes rather than decimal round-trips.  This is the
        checkpoint-v2 alternative to replaying a whole campaign journal:
        O(grid) instead of O(campaign ops).
        """
        colored_shapes: List[list] = []
        for layer in range(self.num_layers):
            colored_shapes.append([
                [item.net_name, item.color, rect.xlo, rect.ylo, rect.xhi, rect.yhi]
                for rect, item in self._colored_shapes[layer].items()
            ])
        blockage_shapes: List[list] = []
        for layer in range(self.num_layers):
            blockage_shapes.append([
                [rect.xlo, rect.ylo, rect.xhi, rect.yhi, name]
                for rect, name in self._blockage_shapes[layer].items()
            ])
        from base64 import b64encode

        def encode(buffer) -> str:
            raw = buffer if isinstance(buffer, (bytes, bytearray)) else buffer.tobytes()
            return b64encode(bytes(raw)).decode("ascii")

        return {
            "format": self.SNAPSHOT_FORMAT,
            "design_name": self.design.name,
            "dims": [self.num_layers, self.num_cols, self.num_rows],
            "pitch": self.pitch,
            "epoch": self._mutation_epoch,
            "blocked": encode(self._blocked_buf),
            "owner": encode(self._owner_buf),
            "color": encode(self._color_buf),
            "history": encode(self._history_buf),
            "pressure": encode(self._pressure_buf),
            "net_names": list(self._net_names[1:]),
            "multi_owners": [
                [index, sorted(owners)]
                for index, owners in sorted(self._multi_owners.items())
            ],
            "net_occupied": [
                [net_id, sorted(indices)]
                for net_id, indices in sorted(self._net_occupied.items())
            ],
            "history_touched": sorted(self._history_touched),
            "net_pressure": [
                [net_id, [[index, list(rgb)] for index, rgb in sorted(overlay.items())]]
                for net_id, overlay in sorted(self._net_pressure.items())
            ],
            "net_colored": [
                [net_id, [[index, color] for index, color in sorted(registered.items())]]
                for net_id, registered in sorted(self._net_colored_vertices.items())
            ],
            "colored_shapes": colored_shapes,
            "blockage_shapes": blockage_shapes,
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Overwrite this grid's mutable state with a :meth:`snapshot_state` doc.

        The grid must be built over the same design geometry (dimensions and
        pitch are validated) and must not have a journal attached -- a bulk
        restore is a bootstrap, not a journalled mutation, and recording it
        as none would silently desynchronise any replica of that journal.
        Restoring fires the delta listeners' ``on_reset`` hooks so attached
        incremental checkers drop their now-stale tallies.
        """
        if snapshot.get("format") != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"not a {self.SNAPSHOT_FORMAT} document "
                f"(format={snapshot.get('format')!r})"
            )
        if self._journal is not None:
            raise RuntimeError(
                "cannot restore_state while a journal is attached; "
                "detach it first and re-attach (or attach the checkpoint "
                "journal) afterwards"
            )
        dims = list(snapshot["dims"])
        if dims != [self.num_layers, self.num_cols, self.num_rows]:
            raise ValueError(
                f"snapshot dimensions {dims} do not match this grid "
                f"{[self.num_layers, self.num_cols, self.num_rows]}"
            )
        if snapshot["pitch"] != self.pitch:
            raise ValueError(
                f"snapshot pitch {snapshot['pitch']} does not match {self.pitch}"
            )
        from base64 import b64decode

        num_vertices = self.num_vertices
        blocked = bytearray(b64decode(snapshot["blocked"]))
        owner = array("i")
        owner.frombytes(b64decode(snapshot["owner"]))
        color = bytearray(b64decode(snapshot["color"]))
        history = array("d")
        history.frombytes(b64decode(snapshot["history"]))
        pressure = array("d")
        pressure.frombytes(b64decode(snapshot["pressure"]))
        if (
            len(blocked) != num_vertices
            or len(owner) != num_vertices
            or len(color) != num_vertices
            or len(history) != num_vertices
            or len(pressure) != 3 * num_vertices
        ):
            raise ValueError("snapshot buffer sizes do not match this grid")
        self._blocked_buf = blocked
        self._owner_buf = owner
        self._color_buf = color
        self._history_buf = history
        self._pressure_buf = pressure
        self._pressure_np_view = None
        self._net_names = [""] + [str(name) for name in snapshot["net_names"]]
        self._net_ids = {name: i for i, name in enumerate(self._net_names) if i}
        self._multi_owners = {
            int(index): set(owners) for index, owners in snapshot["multi_owners"]
        }
        self._net_occupied = {
            int(net_id): set(indices) for net_id, indices in snapshot["net_occupied"]
        }
        self._history_touched = set(snapshot["history_touched"])
        self._net_pressure = {
            int(net_id): {int(index): list(rgb) for index, rgb in overlay}
            for net_id, overlay in snapshot["net_pressure"]
        }
        self._net_colored_vertices = {
            int(net_id): {int(index): color for index, color in registered}
            for net_id, registered in snapshot["net_colored"]
        }
        for layer in range(self.num_layers):
            spatial = self._colored_shapes[layer]
            spatial.clear()
            for net_name, shape_color, xlo, ylo, xhi, yhi in snapshot["colored_shapes"][layer]:
                rect = Rect(xlo, ylo, xhi, yhi)
                spatial.insert(
                    rect,
                    ColoredShape(
                        net_name=net_name, color=shape_color, rect=rect, layer=layer
                    ),
                )
            blockages = self._blockage_shapes[layer]
            blockages.clear()
            for xlo, ylo, xhi, yhi, name in snapshot["blockage_shapes"][layer]:
                blockages.insert(Rect(xlo, ylo, xhi, yhi), name)
        self._mutation_epoch = snapshot["epoch"]
        for callback in self._reset_hooks:
            callback()

    def snapshot_statistics(self) -> Dict[str, int]:
        """Return grid occupancy statistics (used by reports and tests)."""
        history = self._history_buf
        return {
            "vertices": self.num_vertices,
            "blocked": sum(self._blocked_buf),
            "occupied": sum(1 for owner in self._owner_buf if owner != 0),
            "colored": sum(1 for stored in self._color_buf if stored),
            "history_entries": sum(
                1 for index in self._history_touched if history[index] != 0.0
            ),
        }


#: Op kind -> unbound ``RoutingGrid`` handler; the dispatch table of
#: :meth:`RoutingGrid.apply_op`.  Module-level (not per-instance) so the
#: choke point pays one dict get per op and forked replicas share it.
_OP_HANDLERS = {
    OP_INTERN: RoutingGrid._apply_intern,
    OP_OCCUPY: RoutingGrid._apply_occupy,
    OP_RELEASE: RoutingGrid._apply_release,
    OP_COLOR: RoutingGrid._apply_color,
    OP_HISTORY: RoutingGrid._apply_history,
    OP_DECAY: RoutingGrid._apply_decay,
    OP_BLOCK_VERTEX: RoutingGrid._apply_block_vertex,
    OP_BLOCK_RECT: RoutingGrid._apply_block_rect,
    OP_RESET: RoutingGrid._apply_reset,
}
