"""The 3-D routing grid graph.

Vertices live at ``(layer, col, row)`` where *col*/*row* index a uniform
track lattice covering the die.  Edges connect planar neighbours on the same
layer (preferred-direction moves are cheap, wrong-way moves are penalised)
and vertically adjacent layers through vias.

The grid also stores the mutable routing state shared between nets:

* hard blockages (obstacles, macro obstructions),
* per-vertex net occupancy (who currently owns the metal at a vertex),
* per-vertex mask colors of already routed-and-colored metal,
* pre-colored fixed shapes (colored obstacles) that constrain the TPL masks,
* history cost accumulated by the rip-up-and-reroute loop.

All routers (the plain detailed router, the Mr.TPL color-state router, and
the DAC-2012 baseline) operate on this one structure so their comparisons
run on identical inputs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.design import Design
from repro.geometry import GridPoint, Point, Rect, SpatialIndex
from repro.tech import DesignRules, TechStack


class Direction(Enum):
    """Search directions from a grid vertex (paper Alg. 2: ``{F,B,R,L,U,D}``)."""

    EAST = (0, 1, 0)    # +col
    WEST = (0, -1, 0)   # -col
    NORTH = (0, 0, 1)   # +row
    SOUTH = (0, 0, -1)  # -row
    UP = (1, 0, 0)      # +layer (via)
    DOWN = (-1, 0, 0)   # -layer (via)

    @property
    def delta(self) -> Tuple[int, int, int]:
        """Return ``(dlayer, dcol, drow)``."""
        return self.value

    @property
    def is_via(self) -> bool:
        """Return ``True`` for layer-changing moves."""
        return self in (Direction.UP, Direction.DOWN)

    @property
    def is_horizontal(self) -> bool:
        """Return ``True`` for moves along the x axis."""
        return self in (Direction.EAST, Direction.WEST)

    @property
    def is_vertical(self) -> bool:
        """Return ``True`` for moves along the y axis."""
        return self in (Direction.NORTH, Direction.SOUTH)

    @property
    def opposite(self) -> "Direction":
        """Return the reverse direction."""
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
}

#: Planar directions only (no vias); the stitch rule of Algorithm 2 applies
#: to these, because a via between layers is never a stitch.
PLANAR_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)

#: All six search directions.
ALL_DIRECTIONS: Tuple[Direction, ...] = PLANAR_DIRECTIONS + (Direction.UP, Direction.DOWN)


@dataclass(frozen=True)
class ColoredShape:
    """A piece of colored metal registered on the grid for TPL interactions."""

    net_name: str
    color: int
    rect: Rect
    layer: int


class RoutingGrid:
    """Mutable routing grid over a :class:`~repro.design.Design`.

    Parameters
    ----------
    design:
        The design whose die area, obstacles and pins seed the grid.
    pitch:
        Track pitch in DBU; a single pitch shared by all layers keeps vertex
        columns/rows aligned vertically so vias land on track crossings.
    """

    def __init__(self, design: Design, pitch: Optional[int] = None) -> None:
        self.design = design
        self.tech: TechStack = design.tech
        self.rules: DesignRules = design.tech.rules
        self.pitch = pitch if pitch is not None else self.tech.layers[0].pitch
        if self.pitch <= 0:
            raise ValueError("track pitch must be positive")

        die = design.die_area
        self.origin = Point(die.xlo, die.ylo)
        self.num_layers = self.tech.num_layers
        self.num_cols = max(2, die.width // self.pitch + 1)
        self.num_rows = max(2, die.height // self.pitch + 1)

        # Hard blockages per vertex.
        self._blocked: Set[GridPoint] = set()
        # Net occupancy: vertex -> set of net names whose metal covers it.
        self._occupancy: Dict[GridPoint, Set[str]] = defaultdict(set)
        # Final mask color of routed metal: (vertex) -> color in {0,1,2}.
        self._vertex_color: Dict[GridPoint, int] = {}
        # History cost from rip-up & reroute negotiation.
        self._history: Dict[GridPoint, float] = defaultdict(float)
        # Colored metal shapes (routed wires and pre-colored obstacles) for
        # color-distance queries, one spatial index per layer.
        self._colored_shapes: List[SpatialIndex[ColoredShape]] = [
            SpatialIndex(bucket_size=max(self.pitch * 8, 16)) for _ in range(self.num_layers)
        ]
        # Blockage shapes per layer for spacing-aware cost queries.
        self._blockage_shapes: List[SpatialIndex[str]] = [
            SpatialIndex(bucket_size=max(self.pitch * 8, 16)) for _ in range(self.num_layers)
        ]
        # Incremental color pressure: for every vertex, how much conflict cost
        # each mask would currently incur there (aggregated over all colored
        # metal within Dcolor).  A per-net overlay allows excluding a net's own
        # contribution when it is the one being routed.  This replaces
        # repeated spatial queries on the router's hottest path.
        self._color_pressure: Dict[GridPoint, List[float]] = {}
        self._net_pressure: Dict[Tuple[str, GridPoint], List[float]] = {}
        self._net_colored_vertices: Dict[str, List[Tuple[GridPoint, int]]] = defaultdict(list)
        self._pressure_offsets_cache: Dict[int, List[Tuple[int, int]]] = {}

        self._apply_design_blockages()
        self._register_fixed_colors()

    # ------------------------------------------------------------------
    # Geometry mapping
    # ------------------------------------------------------------------

    def in_bounds(self, vertex: GridPoint) -> bool:
        """Return ``True`` when *vertex* lies inside the grid."""
        return (
            0 <= vertex.layer < self.num_layers
            and 0 <= vertex.col < self.num_cols
            and 0 <= vertex.row < self.num_rows
        )

    def physical_point(self, vertex: GridPoint) -> Point:
        """Return the DBU coordinate of *vertex*."""
        return Point(
            self.origin.x + vertex.col * self.pitch,
            self.origin.y + vertex.row * self.pitch,
        )

    def vertex_rect(self, vertex: GridPoint) -> Rect:
        """Return the metal rectangle a wire through *vertex* occupies."""
        half = max(self.rules.wire_width // 2, 0)
        point = self.physical_point(vertex)
        return Rect(point.x - half, point.y - half, point.x + half, point.y + half)

    def nearest_vertex(self, layer: int, point: Point) -> GridPoint:
        """Return the grid vertex on *layer* closest to *point* (clamped)."""
        col = round((point.x - self.origin.x) / self.pitch)
        row = round((point.y - self.origin.y) / self.pitch)
        col = min(max(col, 0), self.num_cols - 1)
        row = min(max(row, 0), self.num_rows - 1)
        return GridPoint(layer, col, row)

    def vertices_covering(self, layer: int, rect: Rect) -> List[GridPoint]:
        """Return the vertices on *layer* whose track crossing lies inside *rect*."""
        col_lo = max(0, -(-(rect.xlo - self.origin.x) // self.pitch))
        col_hi = min(self.num_cols - 1, (rect.xhi - self.origin.x) // self.pitch)
        row_lo = max(0, -(-(rect.ylo - self.origin.y) // self.pitch))
        row_hi = min(self.num_rows - 1, (rect.yhi - self.origin.y) // self.pitch)
        vertices: List[GridPoint] = []
        for col in range(col_lo, col_hi + 1):
            for row in range(row_lo, row_hi + 1):
                vertices.append(GridPoint(layer, col, row))
        return vertices

    def pin_access_vertices(self, pin: "object") -> List[GridPoint]:
        """Return unblocked grid vertices covered by *pin*'s shapes.

        If a pin shape covers no track crossing (possible for tiny off-grid
        pins), the nearest vertex to the shape centre is used instead so
        every pin stays reachable.
        """
        vertices: List[GridPoint] = []
        for shape in pin.shapes:
            covered = self.vertices_covering(shape.layer, shape.rect)
            if not covered:
                covered = [self.nearest_vertex(shape.layer, shape.rect.center)]
            vertices.extend(v for v in covered if not self.is_blocked(v))
        if not vertices:
            # Every covered vertex is blocked; fall back to the raw cover so
            # the router can at least report the failure meaningfully.
            for shape in pin.shapes:
                covered = self.vertices_covering(shape.layer, shape.rect)
                if not covered:
                    covered = [self.nearest_vertex(shape.layer, shape.rect.center)]
                vertices.extend(covered)
        # Deterministic order helps reproducibility.
        return sorted(set(vertices))

    def all_vertices(self) -> Iterator[GridPoint]:
        """Iterate over every vertex of the grid (layer-major order)."""
        for layer in range(self.num_layers):
            for col in range(self.num_cols):
                for row in range(self.num_rows):
                    yield GridPoint(layer, col, row)

    @property
    def num_vertices(self) -> int:
        """Return the total vertex count."""
        return self.num_layers * self.num_cols * self.num_rows

    # ------------------------------------------------------------------
    # Neighbourhood and base edge costs
    # ------------------------------------------------------------------

    def neighbor(self, vertex: GridPoint, direction: Direction) -> Optional[GridPoint]:
        """Return the vertex adjacent to *vertex* in *direction*, or ``None``."""
        dlayer, dcol, drow = direction.delta
        candidate = GridPoint(vertex.layer + dlayer, vertex.col + dcol, vertex.row + drow)
        if not self.in_bounds(candidate):
            return None
        return candidate

    def neighbors(self, vertex: GridPoint) -> Iterator[Tuple[Direction, GridPoint]]:
        """Yield ``(direction, neighbor)`` pairs for all in-bounds neighbours."""
        for direction in ALL_DIRECTIONS:
            nbr = self.neighbor(vertex, direction)
            if nbr is not None:
                yield direction, nbr

    def base_edge_cost(self, vertex: GridPoint, direction: Direction) -> float:
        """Return the traditional routing cost of moving from *vertex* in *direction*.

        This is the ``Cost_trad`` term of the paper's Eq. (1): unit wirelength
        for preferred-direction moves, a wrong-way penalty for off-direction
        moves, and the via cost for layer changes.  History and occupancy
        penalties are added separately because they depend on the destination
        vertex state at query time.
        """
        if direction.is_via:
            return self.rules.via_cost
        layer = self.tech.layers[vertex.layer]
        preferred = (
            layer.is_horizontal and direction.is_horizontal
            or layer.is_vertical and direction.is_vertical
        )
        return 1.0 if preferred else self.rules.wrong_way_penalty

    def congestion_cost(self, vertex: GridPoint, net_name: str) -> float:
        """Return history + occupancy cost of placing *net_name* metal at *vertex*."""
        cost = self.rules.history_weight * self._history.get(vertex, 0.0)
        owners = self._occupancy.get(vertex)
        if owners and any(owner != net_name for owner in owners):
            cost += self.rules.occupancy_penalty
        return cost

    # ------------------------------------------------------------------
    # Blockages
    # ------------------------------------------------------------------

    def block_vertex(self, vertex: GridPoint) -> None:
        """Mark a single vertex as unusable."""
        self._blocked.add(vertex)

    def block_rect(self, layer: int, rect: Rect, name: str = "blockage") -> int:
        """Block every vertex covered by *rect* on *layer*; return the count."""
        vertices = self.vertices_covering(layer, rect)
        for vertex in vertices:
            self._blocked.add(vertex)
        self._blockage_shapes[layer].insert(rect, name)
        return len(vertices)

    def is_blocked(self, vertex: GridPoint) -> bool:
        """Return ``True`` when *vertex* is covered by a hard blockage."""
        return vertex in self._blocked

    def blocked_vertices(self) -> Set[GridPoint]:
        """Return a copy of the blocked vertex set."""
        return set(self._blocked)

    def _apply_design_blockages(self) -> None:
        for shape in self.design.blockage_shapes():
            if 0 <= shape.layer < self.num_layers:
                self.block_rect(shape.layer, shape.rect)

    def _register_fixed_colors(self) -> None:
        for obstacle in self.design.colored_obstacles():
            if 0 <= obstacle.layer < self.num_layers:
                net_name = f"__fixed__{obstacle.name or id(obstacle)}"
                shape = ColoredShape(
                    net_name=net_name,
                    color=obstacle.color,
                    rect=obstacle.rect,
                    layer=obstacle.layer,
                )
                self._colored_shapes[obstacle.layer].insert(obstacle.rect, shape)
                self._add_rect_pressure(obstacle.layer, obstacle.rect, net_name, obstacle.color)

    # ------------------------------------------------------------------
    # Incremental color pressure
    # ------------------------------------------------------------------

    def _pressure_offsets(self, layer: int) -> List[Tuple[int, int]]:
        """Return the ``(dcol, drow)`` offsets whose vertices interact at Dcolor.

        Two vertices interact when the spacing between their metal rectangles
        is below the layer's color spacing; the offsets are precomputed once
        per layer so color-pressure updates are O(neighbourhood).
        """
        cached = self._pressure_offsets_cache.get(layer)
        if cached is not None:
            return cached
        dcolor = self.rules.color_spacing_on(layer)
        half = max(self.rules.wire_width // 2, 0)
        reach = max(1, -(-(dcolor + 2 * half) // self.pitch))
        offsets: List[Tuple[int, int]] = []
        base = Rect(-half, -half, half, half)
        for dcol in range(-reach, reach + 1):
            for drow in range(-reach, reach + 1):
                other = Rect(
                    dcol * self.pitch - half,
                    drow * self.pitch - half,
                    dcol * self.pitch + half,
                    drow * self.pitch + half,
                )
                if base.distance_to(other) < dcolor:
                    offsets.append((dcol, drow))
        self._pressure_offsets_cache[layer] = offsets
        return offsets

    def _add_vertex_pressure(
        self, vertex: GridPoint, net_name: str, color: int, sign: float
    ) -> None:
        """Add (or remove, with ``sign=-1``) the pressure of one colored vertex."""
        if not self.tech.layers[vertex.layer].tpl:
            return
        amount = sign * self.rules.conflict_cost
        for dcol, drow in self._pressure_offsets(vertex.layer):
            col = vertex.col + dcol
            row = vertex.row + drow
            if not (0 <= col < self.num_cols and 0 <= row < self.num_rows):
                continue
            target = GridPoint(vertex.layer, col, row)
            aggregate = self._color_pressure.get(target)
            if aggregate is None:
                aggregate = [0.0, 0.0, 0.0]
                self._color_pressure[target] = aggregate
            aggregate[color] += amount
            key = (net_name, target)
            own = self._net_pressure.get(key)
            if own is None:
                own = [0.0, 0.0, 0.0]
                self._net_pressure[key] = own
            own[color] += amount

    def _add_rect_pressure(self, layer: int, rect: Rect, net_name: str, color: int) -> None:
        """Spread the pressure of a colored rectangle (fixed obstacle) on *layer*."""
        if not (0 <= color <= 2) or not self.tech.layers[layer].tpl:
            return
        dcolor = self.rules.color_spacing_on(layer)
        region = rect.expanded(dcolor + self.pitch)
        for vertex in self.vertices_covering(layer, region):
            if self.vertex_rect(vertex).distance_to(rect) < dcolor:
                aggregate = self._color_pressure.setdefault(vertex, [0.0, 0.0, 0.0])
                aggregate[color] += self.rules.conflict_cost
                own = self._net_pressure.setdefault((net_name, vertex), [0.0, 0.0, 0.0])
                own[color] += self.rules.conflict_cost

    # ------------------------------------------------------------------
    # Occupancy (routed metal ownership)
    # ------------------------------------------------------------------

    def occupy(self, vertex: GridPoint, net_name: str) -> None:
        """Record that *net_name* has metal at *vertex*."""
        self._occupancy[vertex].add(net_name)

    def release_net(self, net_name: str) -> int:
        """Remove all occupancy, colors and colored shapes of *net_name*.

        Returns the number of vertices released.  Used by rip-up & reroute.
        """
        released = 0
        for vertex, owners in list(self._occupancy.items()):
            if net_name in owners:
                owners.discard(net_name)
                released += 1
                if not owners:
                    del self._occupancy[vertex]
                self._vertex_color.pop(vertex, None)
        for vertex, color in self._net_colored_vertices.pop(net_name, []):
            self._add_vertex_pressure(vertex, net_name, color, sign=-1.0)
        for layer_index in range(self.num_layers):
            index = self._colored_shapes[layer_index]
            stale = [item for _rect, item in index.items() if item.net_name == net_name]
            for item in stale:
                index.remove_item(item)
        return released

    def occupants(self, vertex: GridPoint) -> Set[str]:
        """Return the set of net names with metal at *vertex*."""
        return set(self._occupancy.get(vertex, ()))

    def is_occupied_by_other(self, vertex: GridPoint, net_name: str) -> bool:
        """Return ``True`` when a different net already has metal at *vertex*."""
        owners = self._occupancy.get(vertex)
        return bool(owners) and any(owner != net_name for owner in owners)

    def occupied_vertices(self) -> Dict[GridPoint, Set[str]]:
        """Return a copy of the occupancy map."""
        return {vertex: set(owners) for vertex, owners in self._occupancy.items()}

    # ------------------------------------------------------------------
    # Colors (TPL masks) on routed metal
    # ------------------------------------------------------------------

    def set_vertex_color(self, vertex: GridPoint, net_name: str, color: int) -> None:
        """Color the routed metal of *net_name* at *vertex* with mask *color*.

        Re-coloring the same vertex for the same net is idempotent (same
        color) or replaces the previous contribution (different color), so
        the incremental pressure bookkeeping never double-counts.
        """
        if not 0 <= color <= 2:
            raise ValueError(f"TPL mask color must be 0, 1 or 2, got {color}")
        registered = dict(self._net_colored_vertices.get(net_name, ()))
        previous = registered.get(vertex)
        if previous == color:
            self._vertex_color[vertex] = color
            return
        if previous is not None:
            self._add_vertex_pressure(vertex, net_name, previous, sign=-1.0)
            self._net_colored_vertices[net_name] = [
                (v, c) for v, c in self._net_colored_vertices[net_name] if v != vertex
            ]
        self._vertex_color[vertex] = color
        shape = ColoredShape(
            net_name=net_name,
            color=color,
            rect=self.vertex_rect(vertex),
            layer=vertex.layer,
        )
        self._colored_shapes[vertex.layer].insert(shape.rect, shape)
        self._net_colored_vertices[net_name].append((vertex, color))
        self._add_vertex_pressure(vertex, net_name, color, sign=1.0)

    def vertex_color(self, vertex: GridPoint) -> Optional[int]:
        """Return the mask color of routed metal at *vertex*, if any."""
        return self._vertex_color.get(vertex)

    def colored_shapes_near(
        self, layer: int, rect: Rect, distance: int
    ) -> Iterator[Tuple[Rect, ColoredShape]]:
        """Yield colored shapes on *layer* closer than *distance* to *rect*."""
        if not 0 <= layer < self.num_layers:
            return
        yield from self._colored_shapes[layer].within(rect, distance)

    def color_cost(self, vertex: GridPoint, net_name: str, color: int) -> float:
        """Return the TPL color cost of putting *color* metal of *net_name* at *vertex*.

        This is the ``Cost_color`` term of Eq. (1): each already-colored piece
        of metal of a *different* net on the same layer within ``Dcolor`` and
        sharing the candidate mask contributes one conflict penalty.  Metal of
        the same net never conflicts (it will be electrically connected).
        """
        return self.color_costs(vertex, net_name)[color]

    def color_costs(self, vertex: GridPoint, net_name: str) -> List[float]:
        """Return the color cost for each of the three masks at *vertex*.

        The value is served from the incrementally maintained color-pressure
        map (updated on :meth:`set_vertex_color` / :meth:`release_net`), with
        the querying net's own contribution subtracted out.
        """
        aggregate = self._color_pressure.get(vertex)
        if aggregate is None:
            return [0.0, 0.0, 0.0]
        own = self._net_pressure.get((net_name, vertex))
        if own is None:
            return list(aggregate)
        return [max(aggregate[i] - own[i], 0.0) for i in range(3)]

    # ------------------------------------------------------------------
    # History cost (negotiated congestion)
    # ------------------------------------------------------------------

    def add_history(self, vertex: GridPoint, amount: float = 1.0) -> None:
        """Increase the history cost at *vertex* (rip-up & reroute feedback)."""
        self._history[vertex] += amount

    def history(self, vertex: GridPoint) -> float:
        """Return the accumulated history cost at *vertex*."""
        return self._history.get(vertex, 0.0)

    def decay_history(self, factor: float = 0.9) -> None:
        """Multiply every history entry by *factor* (PathFinder-style decay)."""
        for vertex in list(self._history):
            self._history[vertex] *= factor
            if self._history[vertex] < 1e-9:
                del self._history[vertex]

    # ------------------------------------------------------------------
    # Bulk state management
    # ------------------------------------------------------------------

    def reset_routing_state(self) -> None:
        """Drop all routing results (occupancy, colors, history) but keep blockages."""
        self._occupancy.clear()
        self._vertex_color.clear()
        self._history.clear()
        self._color_pressure.clear()
        self._net_pressure.clear()
        self._net_colored_vertices.clear()
        for layer_index in range(self.num_layers):
            index = self._colored_shapes[layer_index]
            fixed = [
                (rect, item)
                for rect, item in index.items()
                if item.net_name.startswith("__fixed__")
            ]
            index.clear()
            for rect, item in fixed:
                index.insert(rect, item)
        # Re-seed the pressure of the fixed, pre-colored obstacles.
        for obstacle in self.design.colored_obstacles():
            if 0 <= obstacle.layer < self.num_layers:
                self._add_rect_pressure(
                    obstacle.layer,
                    obstacle.rect,
                    f"__fixed__{obstacle.name or id(obstacle)}",
                    obstacle.color,
                )

    def snapshot_statistics(self) -> Dict[str, int]:
        """Return grid occupancy statistics (used by reports and tests)."""
        return {
            "vertices": self.num_vertices,
            "blocked": len(self._blocked),
            "occupied": len(self._occupancy),
            "colored": len(self._vertex_color),
            "history_entries": len(self._history),
        }
