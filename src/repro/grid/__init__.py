"""Routing grid: the 3-D track graph shared by every router in this repo.

The grid models the layout as ``layers x columns x rows`` of vertices at
track crossings (paper Section IV-B: "We model it as an undirected graph
G = (V, E)").  It tracks blockages, per-net occupancy, colored metal for the
TPL interactions, and the history cost used by negotiation-based rip-up and
reroute.  A coarser GCell grid supports the global router that produces the
routing guides Mr.TPL uses to bound its color-cost region.
"""

from repro.grid.routing_grid import (
    ALL_DIRECTIONS,
    DIRECTION_INDEX,
    FIRST_VIA_DIRECTION,
    INDEX_DIRECTION,
    NUM_DIRECTIONS,
    Direction,
    PLANAR_DIRECTIONS,
    RoutingGrid,
)
from repro.grid.route import NetRoute, RoutingSolution, Stitch
from repro.grid.gcell import GCellGrid

__all__ = [
    "Direction",
    "RoutingGrid",
    "PLANAR_DIRECTIONS",
    "ALL_DIRECTIONS",
    "DIRECTION_INDEX",
    "INDEX_DIRECTION",
    "NUM_DIRECTIONS",
    "FIRST_VIA_DIRECTION",
    "NetRoute",
    "RoutingSolution",
    "Stitch",
    "GCellGrid",
]
