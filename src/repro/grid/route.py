"""Routing results: per-net routed trees, colors, stitches, and solutions.

Every router in the repository (plain detailed router, Mr.TPL, DAC-2012
baseline) emits the same result structures so the evaluation code and the
benchmark harnesses can score them uniformly.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.geometry import GridPoint, Point, Segment
from repro.utils import DisjointSet

#: Process-global monotone revision source for :class:`NetRoute`.  Every
#: constructed (or unpickled) route gets the next value, so two distinct
#: route objects can never share a revision -- unlike ``id()``, which the
#: allocator happily reuses once the old object is collected.
_route_revisions = itertools.count(1)


@dataclass(frozen=True)
class Stitch:
    """A mask change between two electrically connected, adjacent vertices.

    Stitches are legal but undesirable: the paper's objective minimises the
    weighted sum of conflicts and stitches because stitches reduce yield.
    """

    net_name: str
    a: GridPoint
    b: GridPoint

    def __post_init__(self) -> None:
        # Canonical ordering so the same physical stitch hashes identically.
        if self.b < self.a:
            a, b = self.b, self.a
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "b", b)


@dataclass
class NetRoute:
    """The routed tree of a single net.

    Attributes
    ----------
    net_name:
        Name of the routed net.
    vertices:
        All grid vertices covered by the net's metal (including pin access
        vertices that anchor the tree).
    edges:
        Adjacent vertex pairs used by the route; together with ``vertices``
        they describe the routed tree (or forest while routing is partial).
    vertex_colors:
        Final mask assignment per vertex (0=red/mask1, 1=green/mask2,
        2=blue/mask3).  Vertices without an entry are uncolored, which the
        evaluator reports as defects rather than silently accepting.
    stitches:
        The mask changes introduced inside this net.
    revision:
        Process-unique monotone stamp assigned at construction.  The
        incremental checkers detect route-object replacement (rip-up &
        reroute, snapshot restore) by comparing it -- identity (``id()``)
        is unusable because CPython reuses addresses of collected routes.
        Excluded from equality; re-stamped on unpickle so a route shipped
        across a process boundary always reads as replaced (a conservative
        extra rescan, never a missed one).
    """

    net_name: str
    vertices: Set[GridPoint] = field(default_factory=set)
    edges: Set[Tuple[GridPoint, GridPoint]] = field(default_factory=set)
    vertex_colors: Dict[GridPoint, int] = field(default_factory=dict)
    stitches: Set[Stitch] = field(default_factory=set)
    routed: bool = True
    failure_reason: str = ""
    revision: int = field(
        default_factory=lambda: next(_route_revisions), compare=False, repr=False
    )

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.__dict__["revision"] = next(_route_revisions)

    # -- construction -------------------------------------------------------

    def add_edge(self, a: GridPoint, b: GridPoint) -> None:
        """Add an edge (and its endpoints) to the route."""
        if a == b:
            self.vertices.add(a)
            return
        key = (a, b) if a < b else (b, a)
        self.edges.add(key)
        self.vertices.add(a)
        self.vertices.add(b)

    def add_path(self, path: List[GridPoint]) -> None:
        """Add a vertex path (consecutive vertices become edges)."""
        if not path:
            return
        self.vertices.add(path[0])
        for a, b in zip(path, path[1:]):
            self.add_edge(a, b)

    def set_color(self, vertex: GridPoint, color: int) -> None:
        """Assign the final mask *color* to *vertex*."""
        if not 0 <= color <= 2:
            raise ValueError(f"invalid mask color {color}")
        self.vertices.add(vertex)
        self.vertex_colors[vertex] = color

    def add_stitch(self, a: GridPoint, b: GridPoint) -> None:
        """Record a stitch between two adjacent vertices of this net."""
        self.stitches.add(Stitch(self.net_name, a, b))

    # -- derived queries ------------------------------------------------------

    def wirelength(self) -> int:
        """Return the routed wirelength in grid units (planar edges only)."""
        return sum(1 for a, b in self.edges if a.layer == b.layer)

    def via_count(self) -> int:
        """Return the number of vias (layer-changing edges)."""
        return sum(1 for a, b in self.edges if a.layer != b.layer)

    def stitch_count(self) -> int:
        """Return the number of stitches recorded for this net."""
        return len(self.stitches)

    def is_connected(self) -> bool:
        """Return ``True`` when the routed metal forms a single component."""
        if not self.vertices:
            return False
        if not self.edges:
            return len(self.vertices) == 1
        dsu = DisjointSet(self.vertices)
        for a, b in self.edges:
            dsu.union(a, b)
        roots = {dsu.find(v) for v in self.vertices}
        return len(roots) == 1

    def connects_all(self, pin_vertex_groups: List[List[GridPoint]]) -> bool:
        """Return ``True`` when every pin group touches the same routed component.

        ``pin_vertex_groups`` holds, per pin, the access vertices of that pin;
        a pin is reached when at least one of its access vertices belongs to
        the route.
        """
        if not pin_vertex_groups:
            return True
        dsu = DisjointSet(self.vertices)
        for a, b in self.edges:
            dsu.union(a, b)
        anchors: List[GridPoint] = []
        for group in pin_vertex_groups:
            touched = [v for v in group if v in self.vertices]
            if not touched:
                return False
            anchors.append(touched[0])
            for vertex in touched[1:]:
                # A pin's own access vertices are electrically the same metal.
                dsu.union(touched[0], vertex)
        first = dsu.find(anchors[0])
        return all(dsu.find(anchor) == first for anchor in anchors[1:])

    def adjacency(self) -> Dict[GridPoint, List[GridPoint]]:
        """Return the adjacency map of the routed tree."""
        adj: Dict[GridPoint, List[GridPoint]] = defaultdict(list)
        for a, b in self.edges:
            adj[a].append(b)
            adj[b].append(a)
        return dict(adj)

    def recount_stitches(self) -> int:
        """Recompute stitches from the final vertex colors.

        A stitch exists on every same-layer edge whose endpoints carry
        different masks.  The recomputed set replaces the recorded one (the
        recorded set may be stale after rip-up & reroute).
        """
        stitches: Set[Stitch] = set()
        for a, b in self.edges:
            if a.layer != b.layer:
                continue
            color_a = self.vertex_colors.get(a)
            color_b = self.vertex_colors.get(b)
            if color_a is None or color_b is None:
                continue
            if color_a != color_b:
                stitches.add(Stitch(self.net_name, a, b))
        self.stitches = stitches
        return len(stitches)

    def segments(self, grid: "object") -> List[Segment]:
        """Decompose the route into maximal straight wire segments.

        *grid* must provide ``physical_point(vertex)`` and the design rules
        (``rules.wire_width``); passing the :class:`RoutingGrid` keeps this
        module free of a circular import.
        """
        width = grid.rules.wire_width
        segments: List[Segment] = []
        horizontal_runs: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        vertical_runs: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for a, b in self.edges:
            if a.layer != b.layer:
                continue
            if a.row == b.row:
                horizontal_runs[(a.layer, a.row)].extend([a.col, b.col])
            else:
                vertical_runs[(a.layer, a.col)].extend([a.row, b.row])
        for (layer, row), cols in horizontal_runs.items():
            for lo, hi in _merge_runs(sorted(set(cols)), self._edge_lookup(layer, row, True)):
                p0 = grid.physical_point(GridPoint(layer, lo, row))
                p1 = grid.physical_point(GridPoint(layer, hi, row))
                segments.append(Segment(layer, p0, p1, width))
        for (layer, col), rows in vertical_runs.items():
            for lo, hi in _merge_runs(sorted(set(rows)), self._edge_lookup(layer, col, False)):
                p0 = grid.physical_point(GridPoint(layer, col, lo))
                p1 = grid.physical_point(GridPoint(layer, col, hi))
                segments.append(Segment(layer, p0, p1, width))
        return segments

    def _edge_lookup(self, layer: int, fixed: int, horizontal: bool):
        edge_set = set()
        for a, b in self.edges:
            if a.layer != layer or b.layer != layer:
                continue
            if horizontal and a.row == fixed and b.row == fixed:
                edge_set.add((min(a.col, b.col), max(a.col, b.col)))
            elif not horizontal and a.col == fixed and b.col == fixed:
                edge_set.add((min(a.row, b.row), max(a.row, b.row)))

        def connected(lo: int, hi: int) -> bool:
            return (lo, hi) in edge_set

        return connected


def _merge_runs(indices: List[int], connected) -> Iterator[Tuple[int, int]]:
    """Merge sorted track indices into maximal runs of consecutive connected steps."""
    if not indices:
        return
    start = prev = indices[0]
    for value in indices[1:]:
        if value == prev + 1 and connected(prev, value):
            prev = value
            continue
        yield start, prev
        start = prev = value
    yield start, prev


@dataclass
class RoutingSolution:
    """The routed result for a whole design."""

    design_name: str
    routes: Dict[str, NetRoute] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    iterations: int = 0
    router_name: str = ""

    def add_route(self, route: NetRoute) -> None:
        """Insert or replace the route of ``route.net_name``."""
        self.routes[route.net_name] = route

    def route_of(self, net_name: str) -> NetRoute:
        """Return the route of *net_name* (raises ``KeyError`` if missing)."""
        return self.routes[net_name]

    def routed_nets(self) -> List[NetRoute]:
        """Return routes that completed successfully."""
        return [route for route in self.routes.values() if route.routed]

    def failed_nets(self) -> List[NetRoute]:
        """Return routes that failed (unrouted or partially routed)."""
        return [route for route in self.routes.values() if not route.routed]

    def total_wirelength(self) -> int:
        """Return the summed wirelength over all nets in grid units."""
        return sum(route.wirelength() for route in self.routes.values())

    def total_vias(self) -> int:
        """Return the summed via count over all nets."""
        return sum(route.via_count() for route in self.routes.values())

    def total_stitches(self) -> int:
        """Return the summed stitch count over all nets."""
        return sum(route.stitch_count() for route in self.routes.values())

    def colored_vertex_fraction(self) -> float:
        """Return the fraction of routed vertices that carry a final mask."""
        total = sum(len(route.vertices) for route in self.routes.values())
        if total == 0:
            return 1.0
        colored = sum(len(route.vertex_colors) for route in self.routes.values())
        return colored / total

    def vertex_ownership(self) -> Dict[GridPoint, Set[str]]:
        """Return, per vertex, the set of nets whose routes cover it."""
        ownership: Dict[GridPoint, Set[str]] = defaultdict(set)
        for route in self.routes.values():
            for vertex in route.vertices:
                ownership[vertex].add(route.net_name)
        return dict(ownership)
